"""Command-line interface: ``python -m repro <command>`` (or the ``repro``
console script).

Four subcommands cover the train/serve lifecycle introduced by
:mod:`repro.persistence` and :mod:`repro.serving`:

* ``train``    — fit a framework on a built-in (synthetic-analogue) dataset
  and persist it as an artifact bundle;
* ``encode``   — load an artifact and encode a dataset or a feature file,
  writing the hidden features to disk;
* ``evaluate`` — load an artifact, encode a labelled dataset, cluster the
  features and print every external metric; or, with ``--grid``, run a full
  dataset x algorithm experiment grid through :class:`ExperimentRunner`
  (optionally fanned out over ``--n-jobs`` worker processes, or distributed
  over ``--workers`` — loopback subprocesses or remote standby workers);
* ``worker``   — execute grid cells for a distributed coordinator
  (``--connect HOST:PORT``), or stand by for one (``--listen PORT``);
* ``serve``    — load one or more artifact bundles into an
  :class:`~repro.serving.EncodingService` and serve them over JSON/HTTP
  (``/encode``, ``/models``, ``/stats``, ``/healthz``) with concurrent
  requests fused into shared matmuls by a
  :class:`~repro.serving.BatchFuser`;
* ``info``     — inspect an artifact bundle's manifest;
* ``bench``    — run the tracked performance benchmarks and write
  ``BENCH_training.json``.

Examples
--------
::

    python -m repro train --suite uci --dataset IR --model sls_rbm \
        --n-hidden 16 --epochs 5 --out artifacts/ir
    python -m repro encode --artifact artifacts/ir --suite uci --dataset IR \
        --output features.npy
    python -m repro evaluate --artifact artifacts/ir --suite uci --dataset IR
    python -m repro evaluate --grid --suite uci --dataset IR,BCW \
        --algorithms "DP,K-means,K-means+slsRBM" --repeats 3 --n-jobs 4
    python -m repro evaluate --grid --suite uci --dataset IR \
        --algorithms "DP,K-means" --workers 2
    python -m repro worker --connect 127.0.0.1:9000
    python -m repro serve --artifact ir=artifacts/ir --port 8000
    python -m repro info --artifact artifacts/ir
    python -m repro bench --smoke --out BENCH_training.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

import numpy as np

from repro import registry
from repro.exceptions import ReproError, ValidationError

__all__ = ["main", "build_parser"]

#: Model choices come from the component registry, so a newly registered
#: encoder appears in the CLI without touching this module.
_MODEL_CHOICES = registry.available("model")
#: Paper preprocessing per model kind (Section V.B), used for --preprocessing auto.
_AUTO_PREPROCESSING = {
    "sls_grbm": "standardize",
    "grbm": "standardize",
    "sls_rbm": "median_binarize",
    "rbm": "median_binarize",
}


# ------------------------------------------------------------------ datasets
def _add_dataset_arguments(parser: argparse.ArgumentParser, *, required: bool) -> None:
    group = parser.add_argument_group("dataset selection")
    group.add_argument(
        "--suite",
        choices=("uci", "msra"),
        default="uci",
        help="built-in dataset suite (synthetic analogues; default: uci)",
    )
    group.add_argument(
        "--dataset",
        required=required,
        help="dataset abbreviation within the suite (e.g. IR, BCW; BO, WA)",
    )
    group.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="size multiplier applied to the dataset shape (default: 1.0)",
    )
    group.add_argument(
        "--data-seed",
        type=int,
        default=0,
        help="seed of the synthetic dataset generator (default: 0)",
    )


def _load_dataset(args: argparse.Namespace):
    from repro.datasets import load_msra_mm_dataset, load_uci_dataset

    loader = load_uci_dataset if args.suite == "uci" else load_msra_mm_dataset
    return loader(args.dataset, scale=args.scale, random_state=args.data_seed)


def _load_input_matrix(path: str) -> np.ndarray:
    path = Path(path)
    if path.suffix == ".npy":
        return np.load(path)
    return np.loadtxt(path, delimiter="," if path.suffix == ".csv" else None)


def _save_output_matrix(path: str, features: np.ndarray) -> None:
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    if path.suffix == ".npy":
        np.save(path, features)
    else:
        np.savetxt(path, features, delimiter="," if path.suffix == ".csv" else " ")


# ------------------------------------------------------------------ commands
def _read_spec(value: str) -> dict:
    """Parse a registry spec given inline as JSON or as an ``@file`` path."""
    if value.startswith("@"):
        try:
            text = Path(value[1:]).read_text(encoding="utf-8")
        except OSError as exc:
            raise ValidationError(f"cannot read --spec file {value[1:]!r}: {exc}") from exc
    else:
        text = value
    try:
        spec = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"--spec is not valid JSON: {exc}") from exc
    if not isinstance(spec, dict):
        raise ValidationError("--spec must be a JSON object with a 'type' entry")
    return spec


def _framework_spec(args: argparse.Namespace, n_clusters: int) -> dict:
    """Registry spec assembled from the train subcommand's flags."""
    preprocessing = (
        # Paper preprocessing for the four paper models; any newly registered
        # model defaults to standardisation until it declares its own.
        _AUTO_PREPROCESSING.get(args.model, "standardize")
        if args.preprocessing == "auto"
        else args.preprocessing
    )
    config = {
        "model": args.model,
        "n_hidden": args.n_hidden,
        "eta": args.eta,
        "learning_rate": args.learning_rate,
        "n_epochs": args.epochs,
        "batch_size": args.batch_size,
        "preprocessing": preprocessing,
        "supervision_preprocessing": "standardize"
        if preprocessing == "median_binarize"
        else None,
        "dtype": args.dtype,
        "random_state": args.seed,
    }
    return {
        "kind": "framework",
        "type": "framework",
        "params": {"config": config, "n_clusters": n_clusters},
    }


def _cmd_train(args: argparse.Namespace) -> int:
    from repro.core.framework import SelfLearningEncodingFramework
    from repro.persistence import save_framework

    dataset = _load_dataset(args)
    spec = (
        _read_spec(args.spec)
        if args.spec is not None
        else _framework_spec(args, dataset.n_classes)
    )
    framework = registry.build(spec, kind="framework")
    if not isinstance(framework, SelfLearningEncodingFramework):
        raise ValidationError(
            f"--spec built a {type(framework).__name__}; train expects a framework"
        )
    config = framework.config
    framework.fit(dataset.data)
    bundle = save_framework(framework, args.out)

    history = framework.model_.training_history_
    print(f"trained {config.model} on {args.suite}:{dataset.abbreviation} "
          f"({dataset.n_samples} x {dataset.n_features}, {dataset.n_classes} classes)")
    print(f"epochs run: {history.n_epochs_run}, "
          f"final reconstruction error: {history.final_reconstruction_error:.6f}")
    if framework.supervision_ is not None:
        summary = framework.supervision_.summary()
        print(f"supervision: {summary['n_clusters']} local clusters, "
              f"coverage {summary['coverage']:.2f}")
    print(f"artifact written to {bundle}")
    return 0


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.serving import EncodingService

    if (args.input is None) == (args.dataset is None):
        raise ValidationError("encode needs exactly one of --input or --dataset")
    data = (
        _load_input_matrix(args.input)
        if args.input is not None
        else _load_dataset(args).data
    )

    service = EncodingService(max_batch_size=args.batch_size)
    service.load("model", args.artifact)
    features = service.encode("model", data)
    stats = service.stats("model")

    print(f"encoded {features.shape[0]} x {data.shape[1]} -> "
          f"{features.shape[0]} x {features.shape[1]} features "
          f"in {stats['last_latency_seconds'] * 1e3:.1f} ms "
          f"({stats['n_batches']} micro-batches)")
    if args.output is not None:
        _save_output_matrix(args.output, features)
        print(f"features written to {args.output}")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    if args.grid:
        return _cmd_evaluate_grid(args)
    if args.artifact is None:
        raise ValidationError("evaluate needs --artifact (or --grid for a grid run)")
    from repro.metrics.report import evaluate_clustering
    from repro.persistence import load_framework

    dataset = _load_dataset(args)
    framework = load_framework(args.artifact)
    features = framework.transform(dataset.data)
    clusterer = registry.build_clusterer(
        args.clusterer, dataset.n_classes, random_state=args.seed
    )
    labels = clusterer.fit_predict(features)
    report = evaluate_clustering(dataset.labels, labels)

    print(f"{args.clusterer} on {framework.config.model} features of "
          f"{args.suite}:{dataset.abbreviation}")
    for metric, value in report.as_dict().items():
        print(f"  {metric:<14} {value:.4f}")
    return 0


def _cmd_evaluate_grid(args: argparse.Namespace) -> int:
    """Run a dataset x algorithm grid with the (optionally parallel) runner."""
    from repro.datasets import load_msra_mm_dataset, load_uci_dataset
    from repro.datasets.base import DatasetSuite
    from repro.experiments.grids import (
        DATASETS_I_ALGORITHMS,
        DATASETS_II_ALGORITHMS,
    )
    from repro.experiments.reporting import format_table
    from repro.experiments.runner import ExperimentRunner

    loader = load_uci_dataset if args.suite == "uci" else load_msra_mm_dataset
    abbreviations = [item.strip() for item in args.dataset.split(",") if item.strip()]
    if not abbreviations:
        raise ValidationError("--dataset must name at least one dataset")
    datasets = [
        loader(abbr, scale=args.scale, random_state=args.data_seed)
        for abbr in abbreviations
    ]
    suite = DatasetSuite(f"{args.suite}-grid", datasets)

    if args.algorithms:
        algorithms = tuple(
            item.strip() for item in args.algorithms.split(",") if item.strip()
        )
    else:
        algorithms = (
            DATASETS_II_ALGORITHMS if args.suite == "uci" else DATASETS_I_ALGORITHMS
        )

    runner = ExperimentRunner(
        algorithms,
        n_repeats=args.repeats,
        n_hidden=args.n_hidden,
        n_epochs=args.epochs,
        batch_size=args.batch_size,
        random_state=args.seed,
        n_jobs=args.n_jobs,
        workers=_parse_workers(args.workers),
        lease_timeout=args.lease_timeout,
        journal=args.journal,
        resume=args.resume,
        max_cell_retries=args.max_cell_retries,
        secret=args.secret,
    )
    table = runner.run_suite(suite)
    print(format_table(table, args.metric, title=f"{suite.name}: {args.metric}"))
    distribution = (
        f"workers={args.workers}, re-queued cells: {runner.n_requeued_cells}, "
        f"duplicate results: {runner.n_duplicate_results}, "
        f"retried cells: {runner.n_retried_cells}"
        if runner.workers is not None
        else f"n_jobs={args.n_jobs}"
    )
    print(
        f"cells: {len(datasets)} datasets x {len(algorithms)} algorithms x "
        f"{args.repeats} repeats, {distribution}, "
        f"supervision cache hits: {runner.n_supervision_hits}"
    )
    if runner.workers is not None and runner.n_journal_replayed:
        print(f"journal: {runner.n_journal_replayed} cell(s) replayed from "
              f"{args.journal} (crash resume)")
    if runner.quarantined_workers:
        print(f"quarantined workers: {', '.join(runner.quarantined_workers)}")
    if args.table_out is not None:
        out = Path(args.table_out)
        if out.parent != Path(""):
            out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(
            json.dumps(table.to_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"table written to {out}")
    return 0


def _parse_workers(value: str | None):
    """``--workers`` flag: a count ("4") or comma-separated host:port list."""
    if value is None:
        return None
    value = value.strip()
    if value.isdigit():
        return int(value)
    addresses = [item.strip() for item in value.split(",") if item.strip()]
    if not addresses:
        raise ValidationError("--workers must be a count or host:port list")
    return addresses


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed.worker import main as worker_main

    argv = []
    if args.connect is not None:
        argv += ["--connect", args.connect]
    if args.listen is not None:
        argv += ["--listen", str(args.listen)]
    argv += ["--host", args.host, "--poll-interval", str(args.poll_interval)]
    if args.worker_id is not None:
        argv += ["--worker-id", args.worker_id]
    if args.secret is not None:
        argv += ["--secret", args.secret]
    if args.verbose:
        argv.append("--verbose")
    return worker_main(argv)


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        format_summary,
        run_training_benchmarks,
        write_benchmark_report,
    )

    payload = run_training_benchmarks(smoke=args.smoke, n_jobs=args.n_jobs)
    out = write_benchmark_report(payload, args.out)
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_summary(payload))
    print(f"benchmark report written to {out}")
    return 0


def _parse_artifact_mappings(values: list[str]) -> dict[str, str]:
    """``name=path`` pairs from repeated ``--artifact`` flags."""
    mappings: dict[str, str] = {}
    for value in values:
        name, separator, path = value.partition("=")
        if not separator or not name or not path:
            raise ValidationError(
                f"--artifact expects NAME=PATH, got {value!r}"
            )
        if name in mappings:
            raise ValidationError(f"model name {name!r} given twice")
        mappings[name] = path
    return mappings


def _shard_worker_args(args: argparse.Namespace) -> list[str]:
    """Serving knobs forwarded verbatim to every shard worker subprocess."""
    forwarded = [
        "--batch-size", str(args.batch_size),
        "--cache-entries", str(args.cache_entries),
        "--max-batch-rows", str(args.max_batch_rows),
        "--max-wait-ms", str(args.max_wait_ms),
    ]
    if args.dtype:
        forwarded.extend(["--dtype", args.dtype])
    if args.no_fusion:
        forwarded.append("--no-fusion")
    return forwarded


def _build_serving_stack(args: argparse.Namespace):
    """(service, fuser, server) assembled from the serve subcommand's flags.

    Exposed separately from :func:`_cmd_serve` so tests and embedding code
    can build the exact CLI-configured stack without running
    ``serve_forever``.  With ``--shard-workers`` the models live in worker
    subprocesses, so ``service`` and ``fuser`` are ``None`` — route
    everything through ``server.gateway``.
    """
    from repro.serving import BatchFuser, EncodingService
    from repro.serving.async_http import build_async_server
    from repro.serving.http import ServingGateway, build_server
    from repro.serving.shard import ShardPool

    use_async = getattr(args, "use_async", False)
    shard_workers = getattr(args, "shard_workers", None)
    mappings = _parse_artifact_mappings(args.artifact)

    service = fuser = gateway = None
    if shard_workers:
        pool = ShardPool(
            mappings,
            shard_workers,
            secret=args.secret,
            extra_worker_args=_shard_worker_args(args),
            verbose=args.verbose,
        )
        try:
            gateway = ServingGateway(
                pool,
                max_in_flight=args.max_in_flight,
                retry_after=args.retry_after,
            )
        except BaseException:  # pragma: no cover - construction race only
            pool.close()
            raise
    else:
        service = EncodingService(
            max_batch_size=args.batch_size,
            cache_entries=args.cache_entries,
            dtype=args.dtype,
        )
        for name, path in mappings.items():
            framework = service.load(name, path)
            spec = getattr(framework, "spec", None)
            if args.verbose and spec:  # pragma: no cover - cosmetic
                print(f"loaded {name}: {json.dumps(spec, sort_keys=True)}")
        if not args.no_fusion:
            fuser = BatchFuser(
                service,
                max_batch_rows=args.max_batch_rows,
                max_wait_ms=args.max_wait_ms,
            )

    builder = build_async_server if use_async else build_server
    build_kwargs = dict(
        host=args.host,
        port=args.port,
        secret=args.secret,
        verbose=args.verbose,
    )
    if use_async:
        build_kwargs["executor_threads"] = args.executor_threads
    try:
        if gateway is not None:
            server = builder(gateway=gateway, **build_kwargs)
        else:
            server = builder(
                service,
                fuser=fuser,
                max_in_flight=args.max_in_flight,
                retry_after=args.retry_after,
                **build_kwargs,
            )
    except BaseException:
        if gateway is not None:  # pragma: no cover - bind failures only
            gateway.close()
        raise
    return service, fuser, server


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serving.async_http import AsyncEncodingServer

    service, fuser, server = _build_serving_stack(args)
    is_async = isinstance(server, AsyncEncodingServer)
    if is_async:
        server.start()
    host, port = server.server_address[:2]
    shard_workers = getattr(args, "shard_workers", None)
    if fuser is not None:
        fusion = (
            f"fusion: max_batch_rows={fuser.max_batch_rows}, "
            f"max_wait_ms={fuser.max_wait_ms}"
        )
    elif shard_workers:
        fusion = f"fusion: per-shard, {shard_workers} shard worker(s)"
    else:
        fusion = "fusion: disabled"
    names = service.model_names if service is not None else server.gateway.model_names
    print(f"serving {len(names)} model(s) {names} "
          f"on http://{host}:{port} ({fusion})", flush=True)
    if is_async:
        print(f"front end: async selector loop "
              f"(executor_threads={args.executor_threads})", flush=True)
    print("routes: POST /encode, GET /models, GET /stats, GET /healthz",
          flush=True)

    # SIGTERM (the orchestrator's stop signal) drains exactly like Ctrl-C:
    # in-flight requests finish their responses, the fuser flushes its
    # lanes (shard workers shut down) on close, and the process exits 0.
    def _terminate(signum, frame):  # noqa: ARG001 - signal signature
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        if is_async:
            # Graceful sequence: stop accepting, drain, close the backend.
            server.shutdown()
            server.server_close()
        else:
            # serve_forever has already exited; release the socket, then
            # close the backend (fuser flush / shard-pool teardown).
            server.server_close()
            server.gateway.close()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.persistence import read_manifest

    manifest = read_manifest(args.artifact)
    if args.json:
        print(json.dumps(manifest, indent=2, sort_keys=True))
        return 0
    print(f"kind:           {manifest.get('kind')}")
    print(f"schema version: {manifest.get('schema_version')}")
    print(f"repro version:  {manifest.get('repro_version')}")
    model = manifest.get("model") or {}
    if model:
        config = model.get("config", {})
        print(f"model:          {model.get('class')} ({model.get('model_kind')}), "
              f"n_hidden={config.get('n_hidden')}")
        history = model.get("history")
        if history:
            errors = history.get("reconstruction_errors", [])
            final = f"{errors[-1]:.6f}" if errors else "n/a"
            print(f"training:       {history.get('n_epochs_run')} epochs, "
                  f"final reconstruction error {final}")
    framework = manifest.get("framework") or {}
    if framework:
        config = framework.get("config", {})
        print(f"framework:      model={config.get('model')}, "
              f"preprocessing={config.get('preprocessing')}, "
              f"n_clusters={framework.get('n_clusters')}")
    spec = manifest.get("spec")
    if spec:
        print(f"spec:           {json.dumps(spec, sort_keys=True)}")
    supervision = model.get("supervision")
    if supervision:
        print(f"supervision:    {supervision.get('n_samples')} samples, "
              f"metadata={supervision.get('metadata')}")
    return 0


# -------------------------------------------------------------------- parser
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Train, persist, serve and evaluate slsRBM/slsGRBM encoders.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    train = subparsers.add_parser(
        "train", help="fit a framework on a built-in dataset and save an artifact"
    )
    _add_dataset_arguments(train, required=True)
    train.add_argument("--model", choices=_MODEL_CHOICES, default="sls_rbm")
    train.add_argument("--n-hidden", type=int, default=64)
    train.add_argument("--eta", type=float, default=0.5)
    train.add_argument("--learning-rate", type=float, default=1e-3)
    train.add_argument("--epochs", type=int, default=30)
    train.add_argument("--batch-size", type=int, default=64)
    train.add_argument(
        "--preprocessing",
        choices=("auto", "standardize", "minmax", "median_binarize", "none"),
        default="auto",
        help="'auto' picks the paper's preprocessing for the model",
    )
    train.add_argument(
        "--dtype",
        choices=("float64", "float32"),
        default="float64",
        help="model compute/storage precision (float32 halves memory traffic)",
    )
    train.add_argument("--seed", type=int, default=0, help="training seed")
    train.add_argument(
        "--spec",
        help="registry spec of the framework as inline JSON or @file; "
             "overrides the individual model flags "
             '(e.g. \'{"type": "framework", "params": {...}}\')',
    )
    train.add_argument("--out", required=True, help="artifact bundle directory")
    train.set_defaults(func=_cmd_train)

    encode = subparsers.add_parser(
        "encode", help="encode a dataset or feature file with a saved artifact"
    )
    encode.add_argument("--artifact", required=True)
    encode.add_argument("--input", help="input matrix (.npy, .csv or whitespace text)")
    _add_dataset_arguments(encode, required=False)
    encode.add_argument("--output", help="where to write the features (.npy/.csv/text)")
    encode.add_argument("--batch-size", type=int, default=4096,
                        help="serving micro-batch size")
    encode.set_defaults(func=_cmd_encode)

    evaluate = subparsers.add_parser(
        "evaluate", help="cluster the encoded features and print every metric"
    )
    evaluate.add_argument("--artifact",
                          help="artifact bundle (single-artifact mode)")
    _add_dataset_arguments(evaluate, required=True)
    evaluate.add_argument("--clusterer", default="kmeans",
                          help="downstream clusterer (default: kmeans)")
    evaluate.add_argument("--seed", type=int, default=0,
                          help="downstream clusterer / grid base seed")
    grid = evaluate.add_argument_group("grid mode")
    grid.add_argument("--grid", action="store_true",
                      help="run a dataset x algorithm experiment grid instead "
                           "of a single artifact; --dataset accepts a "
                           "comma-separated list")
    grid.add_argument("--algorithms",
                      help="comma-separated algorithm cells (default: the "
                           "full paper grid of the suite)")
    grid.add_argument("--repeats", type=int, default=1,
                      help="repeats per stochastic cell (default: 1)")
    grid.add_argument("--n-jobs", type=int, default=1,
                      help="worker processes for the grid cells; results are "
                           "bit-identical to --n-jobs 1 (default: 1)")
    grid.add_argument("--workers",
                      help="distribute the grid: a count (auto-spawned "
                           "loopback worker subprocesses) or a comma-"
                           "separated host:port list of standby workers "
                           "(repro worker --listen); results stay "
                           "bit-identical to the sequential run")
    grid.add_argument("--lease-timeout", type=float, default=30.0,
                      help="seconds a distributed worker may go silent "
                           "before its cells are re-queued (default: 30)")
    grid.add_argument("--journal", metavar="PATH",
                      help="distributed mode: append-only JSONL write-ahead "
                           "journal; every accepted cell result is fsync'd "
                           "there before it is acknowledged")
    grid.add_argument("--resume", action="store_true",
                      help="replay --journal from a crashed run of the same "
                           "grid and execute only the remaining cells")
    grid.add_argument("--max-cell-retries", type=int, default=2,
                      help="transient cell-failure retries before the grid "
                           "aborts (0 = strict fail-fast; default: 2)")
    grid.add_argument("--secret", default=os.environ.get("REPRO_SECRET"),
                      help="shared secret for coordinator/worker auth "
                           "(default: the REPRO_SECRET environment variable)")
    grid.add_argument("--table-out", metavar="PATH",
                      help="also write the merged grid table as JSON "
                           "(exact float round-trip; stable across resumes)")
    grid.add_argument("--n-hidden", type=int, default=64)
    grid.add_argument("--epochs", type=int, default=30)
    grid.add_argument("--batch-size", type=int, default=64)
    grid.add_argument("--metric", default="accuracy",
                      choices=("accuracy", "purity", "rand", "adjusted_rand",
                               "fmi", "nmi"),
                      help="metric printed for the grid table")
    evaluate.set_defaults(func=_cmd_evaluate)

    serve = subparsers.add_parser(
        "serve", help="serve artifact bundles over JSON/HTTP with batch fusion"
    )
    serve.add_argument(
        "--artifact",
        action="append",
        required=True,
        metavar="NAME=PATH",
        help="artifact bundle to serve under NAME (repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8000,
                       help="TCP port (0 picks an ephemeral one; default: 8000)")
    serve.add_argument("--batch-size", type=int, default=4096,
                       help="serving micro-batch size (rows per matmul chunk)")
    serve.add_argument("--cache-entries", type=int, default=64,
                       help="LRU feature cache capacity (0 disables)")
    serve.add_argument("--dtype", choices=("float64", "float32"), default=None,
                       help="serving precision (default: each model's "
                            "training dtype)")
    fusion = serve.add_argument_group("batch fusion")
    fusion.add_argument("--no-fusion", action="store_true",
                        help="encode each request individually instead of "
                             "fusing concurrent ones")
    fusion.add_argument("--max-batch-rows", type=int, default=4096,
                        help="rows that trigger an immediate fused flush")
    fusion.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="max milliseconds a request may wait to be "
                             "coalesced (0 flushes immediately)")
    overload = serve.add_argument_group("overload protection")
    overload.add_argument("--max-in-flight", type=int, default=None,
                          help="admission bound: concurrent /encode requests "
                               "beyond this are answered 503 + Retry-After "
                               "(default: unbounded)")
    overload.add_argument("--retry-after", type=float, default=1.0,
                          help="seconds advertised in the Retry-After header "
                               "of shed requests (default: 1)")
    scale = serve.add_argument_group("scale-out")
    scale.add_argument("--async", dest="use_async", action="store_true",
                       help="serve on a single asyncio selector loop instead "
                            "of one thread per connection (same routes and "
                            "semantics; hundreds of concurrent keep-alive "
                            "connections per process)")
    scale.add_argument("--executor-threads", type=int, default=32,
                       help="worker threads running encode dispatch under "
                            "--async (default: 32)")
    scale.add_argument("--shard-workers", type=int, default=None, metavar="N",
                       help="partition the models across N worker "
                            "subprocesses via consistent hashing; dead "
                            "workers are respawned with their artifacts "
                            "re-loaded (default: serve in-process)")
    serve.add_argument("--secret", default=os.environ.get("REPRO_SECRET"),
                       help="require this X-Repro-Secret header on every "
                            "route except /healthz (default: the "
                            "REPRO_SECRET environment variable)")
    serve.add_argument("--verbose", action="store_true",
                       help="log one line per HTTP request")
    serve.set_defaults(func=_cmd_serve)

    worker = subparsers.add_parser(
        "worker", help="execute experiment grid cells for a coordinator"
    )
    worker_mode = worker.add_mutually_exclusive_group(required=True)
    worker_mode.add_argument("--connect", metavar="HOST:PORT",
                             help="pull cells from this coordinator, exit "
                                  "when the grid is done")
    worker_mode.add_argument("--listen", type=int, metavar="PORT",
                             help="standby mode: wait for a runner to POST "
                                  "/join (0 picks an ephemeral port)")
    worker.add_argument("--host", default="127.0.0.1",
                        help="bind address in standby mode")
    worker.add_argument("--worker-id", default=None,
                        help="stable worker identity "
                             "(default: host-pid-random)")
    worker.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between lease polls when idle")
    worker.add_argument("--secret", default=os.environ.get("REPRO_SECRET"),
                        help="shared secret for coordinator auth (default: "
                             "the REPRO_SECRET environment variable)")
    worker.add_argument("--verbose", action="store_true",
                        help="log one line per cell")
    worker.set_defaults(func=_cmd_worker)

    info = subparsers.add_parser("info", help="print an artifact's manifest summary")
    info.add_argument("--artifact", required=True)
    info.add_argument("--json", action="store_true",
                      help="dump the raw manifest as JSON")
    info.set_defaults(func=_cmd_info)

    bench = subparsers.add_parser(
        "bench", help="run the tracked perf benchmarks, write BENCH_training.json"
    )
    bench.add_argument("--smoke", action="store_true",
                       help="small sizes so every section finishes in seconds")
    bench.add_argument("--out", default="BENCH_training.json",
                       help="output JSON path (default: BENCH_training.json)")
    bench.add_argument("--n-jobs", type=int, default=4,
                       help="worker processes for the runner-scaling section")
    bench.add_argument("--json", action="store_true",
                       help="also dump the full payload as JSON to stdout")
    bench.set_defaults(func=_cmd_bench)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
