"""Versioned artifact store for trained models and frameworks.

A trained :class:`~repro.core.framework.SelfLearningEncodingFramework` (or a
bare RBM variant) is persisted as a *bundle*: a directory holding a JSON
manifest (schema version, configuration, training history, supervision
metadata, array checksum) next to an ``arrays.npz`` file with every fitted
parameter.  Loading rebuilds the exact estimator — inference is
bitwise-identical to the in-memory original — and fails loudly with
:class:`~repro.exceptions.ArtifactCorruptedError` /
:class:`~repro.exceptions.SchemaVersionError` on tampered or incompatible
bundles.
"""

from repro.persistence.artifacts import (
    ARRAYS_NAME,
    MANIFEST_NAME,
    READABLE_SCHEMA_VERSIONS,
    SCHEMA_VERSION,
    load_framework,
    load_model,
    load_supervision,
    read_manifest,
    save_framework,
    save_model,
    save_supervision,
)

__all__ = [
    "ARRAYS_NAME",
    "MANIFEST_NAME",
    "SCHEMA_VERSION",
    "READABLE_SCHEMA_VERSIONS",
    "save_model",
    "load_model",
    "save_framework",
    "load_framework",
    "save_supervision",
    "load_supervision",
    "read_manifest",
]
