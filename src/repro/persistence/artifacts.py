"""Reading and writing model/framework artifact bundles.

Bundle layout (one directory per artifact)::

    <path>/
        manifest.json   # schema version, kind, spec, history, checksum
        arrays.npz      # every fitted ndarray (weights, biases, velocities,
                        # supervision state)

The manifest carries a ``schema_version`` so future layout changes can be
detected (:class:`~repro.exceptions.SchemaVersionError`) and a SHA-256
checksum of ``arrays.npz`` so silent corruption is caught on load
(:class:`~repro.exceptions.ArtifactCorruptedError`).

Schema history
--------------
* **v1** — per-kind construction info (``model.config`` +
  ``framework.config``) interpreted by hand-rolled loaders.
* **v2** — adds a top-level ``"spec"``: the :mod:`repro.registry` component
  spec of the saved estimator, so loading is ``registry.build(spec)`` +
  state restore, and the same spec format is shared with configs and
  experiment grids.  v1 bundles remain loadable.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

import repro
from repro import registry
from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.exceptions import (
    ArtifactCorruptedError,
    PersistenceError,
    SchemaVersionError,
    ValidationError,
)
from repro.rbm.base import BaseRBM
from repro.rbm.grbm import GaussianRBM
from repro.rbm.rbm import BernoulliRBM
from repro.rbm.sls_grbm import SlsGRBM
from repro.rbm.sls_rbm import SlsRBM
from repro.supervision.local_supervision import LocalSupervision

__all__ = [
    "SCHEMA_VERSION",
    "READABLE_SCHEMA_VERSIONS",
    "MANIFEST_NAME",
    "ARRAYS_NAME",
    "MODEL_CLASSES",
    "save_model",
    "load_model",
    "save_framework",
    "load_framework",
    "save_supervision",
    "load_supervision",
    "read_manifest",
]

#: Bump on any backwards-incompatible change to the bundle layout.
#: v2 added the registry ``"spec"`` entry (2026-07); v1 bundles still load.
SCHEMA_VERSION = 2

#: Schema versions this build can load.
READABLE_SCHEMA_VERSIONS = (1, 2)

MANIFEST_NAME = "manifest.json"
ARRAYS_NAME = "arrays.npz"
_FORMAT = "repro-artifact"

#: model_kind -> concrete class; kept for the v1 loading path and for
#: backwards-compatible imports (the registry is the authoritative mapping).
MODEL_CLASSES: dict[str, type[BaseRBM]] = {
    BernoulliRBM.model_kind: BernoulliRBM,
    GaussianRBM.model_kind: GaussianRBM,
    SlsRBM.model_kind: SlsRBM,
    SlsGRBM.model_kind: SlsGRBM,
}


# ---------------------------------------------------------------- primitives
def _sha256(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _write_bundle(path: Path, kind: str, payload: dict, arrays: dict) -> Path:
    path = Path(path)
    if path.exists() and not path.is_dir():
        raise PersistenceError(f"artifact path {path} exists and is not a directory")
    path.mkdir(parents=True, exist_ok=True)

    arrays_path = path / ARRAYS_NAME
    with open(arrays_path, "wb") as handle:
        np.savez(handle, **arrays)

    manifest = {
        "format": _FORMAT,
        "schema_version": SCHEMA_VERSION,
        "repro_version": repro.__version__,
        "kind": kind,
        "arrays": {"file": ARRAYS_NAME, "sha256": _sha256(arrays_path)},
        **payload,
    }
    manifest_path = path / MANIFEST_NAME
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_manifest(path) -> dict:
    """Parse and validate the manifest of a bundle at ``path``.

    Raises
    ------
    PersistenceError
        If the bundle directory or manifest file is missing.
    ArtifactCorruptedError
        If the manifest is not valid JSON or not a repro artifact.
    SchemaVersionError
        If the bundle was written with an incompatible schema version.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    if not manifest_path.is_file():
        raise PersistenceError(f"no artifact manifest at {manifest_path}")
    try:
        with open(manifest_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ArtifactCorruptedError(
            f"manifest {manifest_path} is unreadable: {exc}"
        ) from exc
    if not isinstance(manifest, dict) or manifest.get("format") != _FORMAT:
        raise ArtifactCorruptedError(
            f"{manifest_path} is not a repro artifact manifest"
        )
    version = manifest.get("schema_version")
    if version not in READABLE_SCHEMA_VERSIONS:
        raise SchemaVersionError(
            f"artifact {path} has schema version {version!r}; this build of "
            f"repro reads versions {READABLE_SCHEMA_VERSIONS}"
        )
    return manifest


def _load_arrays(path: Path, manifest: dict) -> dict[str, np.ndarray]:
    arrays_info = manifest.get("arrays") or {}
    arrays_path = path / arrays_info.get("file", ARRAYS_NAME)
    if not arrays_path.is_file():
        raise ArtifactCorruptedError(f"artifact {path} is missing {arrays_path.name}")
    expected = arrays_info.get("sha256")
    if expected and _sha256(arrays_path) != expected:
        raise ArtifactCorruptedError(
            f"checksum mismatch for {arrays_path}; the artifact is corrupted"
        )
    try:
        with np.load(arrays_path) as handle:
            return {key: handle[key] for key in handle.files}
    except (OSError, ValueError) as exc:
        raise ArtifactCorruptedError(
            f"cannot decode arrays file {arrays_path}: {exc}"
        ) from exc


def _model_spec(model: BaseRBM) -> dict:
    """Registry spec rebuilding an equivalent (unfitted) model."""
    return {"kind": "model", "type": model.model_kind, "params": model.get_config()}


def _model_payload(model: BaseRBM) -> tuple[dict, dict]:
    """Manifest fragment and array mapping for one fitted model."""
    if not model.model_kind:
        raise PersistenceError(
            f"{type(model).__name__} has no model_kind; only the concrete "
            "RBM variants can be persisted"
        )
    state = model.get_state()
    payload = {
        "model": {
            "model_kind": model.model_kind,
            "class": type(model).__name__,
            "config": model.get_config(),
            "history": state["history"],
            "supervision": state["supervision"],
        }
    }
    return payload, state["arrays"]


def _restore_model(model: BaseRBM, manifest: dict, arrays: dict) -> BaseRBM:
    info = manifest["model"]
    model.set_state(
        {
            "arrays": arrays,
            "history": info.get("history"),
            "supervision": info.get("supervision"),
        }
    )
    return model


# -------------------------------------------------------------- bare models
def save_model(model: BaseRBM, path) -> Path:
    """Persist a fitted RBM variant as a bundle directory at ``path``."""
    if not isinstance(model, BaseRBM):
        raise ValidationError(
            f"model must be a BaseRBM variant, got {type(model).__name__}"
        )
    model._check_fitted()
    payload, arrays = _model_payload(model)
    payload["spec"] = _model_spec(model)
    return _write_bundle(Path(path), "model", payload, arrays)


def _build_saved_model(path: Path, manifest: dict) -> BaseRBM:
    """Construct the (unfitted) model a manifest describes.

    Schema v2 bundles carry a registry spec and are built through
    :func:`repro.registry.build`; v1 bundles fall back to the per-kind
    class table.
    """
    spec = manifest.get("spec")
    if spec is not None:
        try:
            return registry.build(spec)
        except (ValidationError, TypeError) as exc:
            # TypeError covers corrupt/foreign param keys rejected by the
            # component constructor itself.
            raise ArtifactCorruptedError(
                f"artifact {path} carries an unbuildable spec: {exc}"
            ) from exc
    info = manifest.get("model") or {}
    kind = info.get("model_kind")
    if kind not in MODEL_CLASSES:
        raise ArtifactCorruptedError(
            f"artifact {path} names unknown model kind {kind!r}"
        )
    return MODEL_CLASSES[kind](**info.get("config", {}))


def load_model(path) -> BaseRBM:
    """Rebuild a fitted RBM variant from a bundle written by :func:`save_model`."""
    path = Path(path)
    manifest = read_manifest(path)
    if manifest.get("kind") != "model":
        raise PersistenceError(
            f"artifact {path} holds a {manifest.get('kind')!r}, not a model; "
            "use load_framework for framework bundles"
        )
    model = _build_saved_model(path, manifest)
    if not isinstance(model, BaseRBM):
        raise ArtifactCorruptedError(
            f"artifact {path} spec built a {type(model).__name__}, not a model"
        )
    arrays = _load_arrays(path, manifest)
    return _restore_model(model, manifest, arrays)


# --------------------------------------------------------------- frameworks
def save_framework(framework: SelfLearningEncodingFramework, path) -> Path:
    """Persist a fitted encoding framework (config + model + supervision).

    The bundle round-trips everything :meth:`fit` produced except the cached
    ``preprocessed_`` training matrix, which is deliberately dropped: it can
    be arbitrarily large and :meth:`transform` does not need it.
    """
    if not isinstance(framework, SelfLearningEncodingFramework):
        raise ValidationError(
            "framework must be a SelfLearningEncodingFramework, got "
            f"{type(framework).__name__}"
        )
    framework._check_fitted()
    payload, arrays = _model_payload(framework.model_)
    payload["framework"] = {
        "config": framework.config.as_dict(),
        "n_clusters": framework.n_clusters,
    }
    payload["spec"] = {
        "kind": "framework",
        "type": "framework",
        "params": {
            "config": framework.config.as_dict(),
            "n_clusters": framework.n_clusters,
        },
    }
    return _write_bundle(Path(path), "framework", payload, arrays)


def load_framework(path) -> SelfLearningEncodingFramework:
    """Rebuild a fitted framework from a bundle written by :func:`save_framework`.

    The returned framework is ready for :meth:`transform` /
    :meth:`repro.serving.EncodingService.encode`; its features are
    bitwise-identical to those of the framework that was saved.
    """
    path = Path(path)
    manifest = read_manifest(path)
    if manifest.get("kind") != "framework":
        raise PersistenceError(
            f"artifact {path} holds a {manifest.get('kind')!r}, not a framework; "
            "use load_model for bare model bundles"
        )
    spec = manifest.get("spec")
    if spec is not None:
        try:
            framework = registry.build(spec, kind="framework")
        except (ValidationError, TypeError) as exc:
            raise ArtifactCorruptedError(
                f"artifact {path} carries an unbuildable spec: {exc}"
            ) from exc
        if not isinstance(framework, SelfLearningEncodingFramework):
            raise ArtifactCorruptedError(
                f"artifact {path} spec built a {type(framework).__name__}, "
                "not a framework"
            )
        config = framework.config
    else:
        info = manifest.get("framework") or {}
        config = FrameworkConfig.from_dict(info.get("config", {}))
        framework = SelfLearningEncodingFramework(
            config, n_clusters=int(info.get("n_clusters", 1))
        )
    model = framework.build_model()
    saved_kind = (manifest.get("model") or {}).get("model_kind")
    if saved_kind != model.model_kind:
        raise ArtifactCorruptedError(
            f"artifact {path} pairs a {saved_kind!r} model with a "
            f"{config.model!r} framework configuration"
        )
    arrays = _load_arrays(path, manifest)
    _restore_model(model, manifest, arrays)
    framework.model_ = model
    framework.supervision_ = getattr(model, "supervision_", None)
    return framework


# -------------------------------------------------------------- supervision
def save_supervision(supervision: LocalSupervision, path) -> Path:
    """Persist a :class:`LocalSupervision` (labels + provenance metadata)."""
    if not isinstance(supervision, LocalSupervision):
        raise ValidationError(
            "supervision must be a LocalSupervision, got "
            f"{type(supervision).__name__}"
        )
    payload = {
        "supervision": {
            "n_samples": supervision.n_samples,
            "metadata": dict(supervision.metadata),
        }
    }
    return _write_bundle(
        Path(path), "supervision", payload, {"labels": supervision.labels}
    )


def load_supervision(path) -> LocalSupervision:
    """Rebuild a supervision from a bundle written by :func:`save_supervision`."""
    path = Path(path)
    manifest = read_manifest(path)
    if manifest.get("kind") != "supervision":
        raise PersistenceError(
            f"artifact {path} holds a {manifest.get('kind')!r}, not a supervision"
        )
    arrays = _load_arrays(path, manifest)
    info = manifest.get("supervision") or {}
    return LocalSupervision(
        labels=np.asarray(arrays["labels"], dtype=int),
        n_samples=int(info.get("n_samples", arrays["labels"].shape[0])),
        metadata=dict(info.get("metadata", {})),
    )
