"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` from misuse of numpy, etc.)
propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` package."""


class ValidationError(ReproError, ValueError):
    """Raised when user-supplied data or parameters fail validation."""


class NotFittedError(ReproError, RuntimeError):
    """Raised when a model is used before :meth:`fit` has been called."""


class ConvergenceWarning(UserWarning):
    """Warning emitted when an iterative algorithm stops before converging."""


class DatasetError(ReproError, KeyError):
    """Raised when a requested dataset is unknown or malformed."""


class SupervisionError(ReproError, ValueError):
    """Raised when local supervisions cannot be constructed (e.g. no
    instance survives unanimous voting)."""


class PersistenceError(ReproError, IOError):
    """Raised when a model artifact cannot be written or read."""


class ArtifactCorruptedError(PersistenceError):
    """Raised when an artifact bundle fails integrity checks (missing files,
    checksum mismatch, undecodable manifest or arrays)."""


class SchemaVersionError(PersistenceError):
    """Raised when an artifact was written with an incompatible schema
    version of the persistence layer."""


class ServingError(ReproError, RuntimeError):
    """Raised by the serving layer (unknown model name, bad request)."""


class DeadlineExceededError(ReproError):
    """A request's ``deadline_ms`` budget ran out before compute could
    start; the serving front ends map it to 503 + ``Retry-After`` (the
    client should shed load or retry with a fresh budget).

    Deliberately *not* a :class:`ServingError` subclass: the HTTP layer
    maps ``ServingError`` to 404 (unknown model), while a spent deadline
    is an overload signal."""
