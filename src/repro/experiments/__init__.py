"""Experiment harness reproducing the paper's tables and figures.

The evaluation grid of the paper is

* datasets I (MSRA-MM 2.0 analogues) x {DP, K-means, AP} x {raw, +GRBM,
  +slsGRBM} evaluated with accuracy (Table IV / Fig. 2), purity (Table V /
  Fig. 3) and FMI (Table VI / Fig. 4), plus the averages of Fig. 5;
* datasets II (UCI analogues) x {DP, K-means, AP} x {raw, +RBM, +slsRBM}
  evaluated with accuracy (Table VII / Fig. 6), Rand index (Table VIII /
  Fig. 7) and FMI (Table IX / Fig. 8), plus the averages of Fig. 9.
"""

from repro.experiments.ablation import (
    run_clusterer_count_ablation,
    run_eta_ablation,
    run_voting_ablation,
)
from repro.experiments.figures import figure_average_bars, figure_series
from repro.experiments.grids import (
    DATASETS_I_ALGORITHMS,
    DATASETS_II_ALGORITHMS,
    build_algorithm,
    build_algorithm_grid,
)
from repro.experiments.reporting import format_table, format_summary_table
from repro.experiments.runner import ExperimentRunner, ExperimentTable, ExperimentCell

__all__ = [
    "DATASETS_I_ALGORITHMS",
    "DATASETS_II_ALGORITHMS",
    "build_algorithm",
    "build_algorithm_grid",
    "ExperimentRunner",
    "ExperimentTable",
    "ExperimentCell",
    "figure_series",
    "figure_average_bars",
    "format_table",
    "format_summary_table",
    "run_eta_ablation",
    "run_voting_ablation",
    "run_clusterer_count_ablation",
]
