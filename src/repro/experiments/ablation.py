"""Ablation studies on the framework's design choices.

Not part of the paper's tables, but DESIGN.md calls out three design choices
worth isolating:

* the balance coefficient ``eta`` (Eq. 13);
* unanimous vs. majority voting in the multi-clustering integration;
* the number / diversity of base clusterers feeding the integration.
"""

from __future__ import annotations

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.core.pipeline import ClusteringPipeline
from repro.datasets.base import Dataset
from repro.exceptions import ValidationError
from repro.metrics.report import evaluate_clustering

__all__ = [
    "run_eta_ablation",
    "run_voting_ablation",
    "run_clusterer_count_ablation",
]


def _evaluate(
    dataset: Dataset, config: FrameworkConfig, *, clusterer: str = "kmeans"
) -> dict[str, float]:
    framework = SelfLearningEncodingFramework(config, n_clusters=dataset.n_classes)
    pipeline = ClusteringPipeline(
        clusterer,
        framework=framework,
        n_clusters=dataset.n_classes,
        random_state=config.random_state,
    )
    return pipeline.run(dataset).report.as_dict()


def run_eta_ablation(
    dataset: Dataset,
    *,
    etas: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9),
    base_config: FrameworkConfig,
    clusterer: str = "kmeans",
) -> dict[float, dict[str, float]]:
    """Metric profile as a function of ``eta``.

    Small ``eta`` emphasises the constrict/disperse supervision, large ``eta``
    the likelihood term; the paper's operating points are 0.4-0.5.
    """
    if not base_config.uses_supervision:
        raise ValidationError("the eta ablation requires an sls model configuration")
    results = {}
    for eta in etas:
        config = base_config.with_overrides(eta=float(eta))
        results[float(eta)] = _evaluate(dataset, config, clusterer=clusterer)
    return results


def run_voting_ablation(
    dataset: Dataset,
    *,
    base_config: FrameworkConfig,
    clusterer: str = "kmeans",
) -> dict[str, dict[str, float]]:
    """Unanimous vs. majority voting in the multi-clustering integration."""
    if not base_config.uses_supervision:
        raise ValidationError("the voting ablation requires an sls model configuration")
    results = {}
    for voting in ("unanimous", "majority"):
        config = base_config.with_overrides(voting=voting)
        results[voting] = _evaluate(dataset, config, clusterer=clusterer)
    return results


def run_clusterer_count_ablation(
    dataset: Dataset,
    *,
    base_config: FrameworkConfig,
    ensembles: tuple[tuple[str, ...], ...] = (
        ("kmeans",),
        ("dp", "kmeans"),
        ("dp", "kmeans", "ap"),
        ("dp", "kmeans", "ap", "agglomerative"),
    ),
    clusterer: str = "kmeans",
) -> dict[str, dict[str, float]]:
    """Effect of the size/diversity of the integration ensemble.

    Returns a mapping from a "+"-joined ensemble name to the metric profile.
    """
    if not base_config.uses_supervision:
        raise ValidationError(
            "the clusterer-count ablation requires an sls model configuration"
        )
    results = {}
    for ensemble in ensembles:
        config = base_config.with_overrides(clusterers=tuple(ensemble))
        results["+".join(ensemble)] = _evaluate(dataset, config, clusterer=clusterer)
    return results


def raw_baseline(dataset: Dataset, *, clusterer: str = "kmeans", random_state: int = 0):
    """Metric profile of the raw-data baseline for the same downstream clusterer."""
    pipeline = ClusteringPipeline(
        clusterer, framework=None, n_clusters=dataset.n_classes, random_state=random_state
    )
    return pipeline.run(dataset).report.as_dict()
