"""Plain-text rendering of experiment tables (paper-style rows)."""

from __future__ import annotations

from repro.experiments.runner import ExperimentTable

__all__ = ["format_table", "format_summary_table"]


def format_table(
    table: ExperimentTable,
    metric: str,
    *,
    title: str | None = None,
    precision: int = 4,
    show_variance: bool = False,
) -> str:
    """Render one metric of an :class:`ExperimentTable` as aligned text.

    The layout mirrors the paper's tables: one row per dataset, one column
    per algorithm, and a final "Average" row.
    """
    header = ["Dataset"] + table.algorithm_order
    rows: list[list[str]] = []
    for dataset in table.dataset_order:
        row = [dataset]
        for algorithm in table.algorithm_order:
            cell = table.cell(dataset, algorithm)
            value = f"{cell.value(metric):.{precision}f}"
            if show_variance:
                value += f"±{cell.variance[metric]:.{precision}f}"
            row.append(value)
        rows.append(row)
    averages = table.column_averages(metric)
    rows.append(
        ["Average"] + [f"{averages[a]:.{precision}f}" for a in table.algorithm_order]
    )

    widths = [
        max(len(header[col]), *(len(r[col]) for r in rows)) for col in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def format_summary_table(
    averages: dict[str, dict[str, float]], *, title: str | None = None, precision: int = 4
) -> str:
    """Render per-algorithm averages (Fig. 5 / Fig. 9 data) as aligned text."""
    metrics = list(averages)
    algorithms = list(next(iter(averages.values())))
    header = ["Algorithm"] + metrics
    rows = [
        [algorithm] + [f"{averages[m][algorithm]:.{precision}f}" for m in metrics]
        for algorithm in algorithms
    ]
    widths = [
        max(len(header[col]), *(len(r[col]) for r in rows)) for col in range(len(header))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)
