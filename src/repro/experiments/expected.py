"""The paper's reported results, used for paper-vs-measured comparisons.

Per-dataset values are transcribed from Tables IV and VII (the accuracy
tables); for the remaining tables (V, VI, VIII, IX) the column averages are
recorded.  The reproduction is not expected to match these numbers —
the datasets are synthetic analogues — but the *shape* (which algorithm wins,
and by roughly how much) should agree; ``compare_shape`` checks exactly that.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "PAPER_TABLE_IV_ACCURACY",
    "PAPER_TABLE_V_PURITY_AVERAGES",
    "PAPER_TABLE_VI_FMI_AVERAGES",
    "PAPER_TABLE_VII_ACCURACY",
    "PAPER_TABLE_VIII_RAND_AVERAGES",
    "PAPER_TABLE_IX_FMI_AVERAGES",
    "paper_average",
    "compare_shape",
]

_ALGORITHMS_I = (
    "DP", "K-means", "AP",
    "DP+GRBM", "K-means+GRBM", "AP+GRBM",
    "DP+slsGRBM", "K-means+slsGRBM", "AP+slsGRBM",
)
_ALGORITHMS_II = (
    "DP", "K-means", "AP",
    "DP+RBM", "K-means+RBM", "AP+RBM",
    "DP+slsRBM", "K-means+slsRBM", "AP+slsRBM",
)

#: Table IV — accuracy on datasets I (rows: BO..VT; columns as _ALGORITHMS_I).
PAPER_TABLE_IV_ACCURACY: dict[str, dict[str, float]] = {
    "BO": dict(zip(_ALGORITHMS_I, (0.4275, 0.4007, 0.4230, 0.4219, 0.3527, 0.4275, 0.4743, 0.4275, 0.4319))),
    "WA": dict(zip(_ALGORITHMS_I, (0.4544, 0.4176, 0.3905, 0.4360, 0.4273, 0.4024, 0.4837, 0.4826, 0.4826))),
    "WR": dict(zip(_ALGORITHMS_I, (0.4147, 0.4058, 0.4048, 0.5162, 0.4047, 0.4158, 0.5326, 0.5017, 0.4872))),
    "BC": dict(zip(_ALGORITHMS_I, (0.4453, 0.4979, 0.4753, 0.4742, 0.4796, 0.4882, 0.5472, 0.5461, 0.5054))),
    "VE": dict(zip(_ALGORITHMS_I, (0.5011, 0.4041, 0.4243, 0.4874, 0.4266, 0.4232, 0.5057, 0.5034, 0.4977))),
    "AM": dict(zip(_ALGORITHMS_I, (0.5667, 0.3935, 0.3968, 0.5548, 0.4968, 0.3581, 0.5699, 0.5570, 0.5570))),
    "VI": dict(zip(_ALGORITHMS_I, (0.5232, 0.4731, 0.4318, 0.4493, 0.4581, 0.4631, 0.5782, 0.5294, 0.5457))),
    "WP": dict(zip(_ALGORITHMS_I, (0.5016, 0.4266, 0.4342, 0.4723, 0.4211, 0.4690, 0.5365, 0.5626, 0.5647))),
    "VT": dict(zip(_ALGORITHMS_I, (0.4664, 0.3788, 0.4027, 0.4676, 0.3697, 0.4232, 0.5165, 0.6189, 0.6223))),
}

#: Table V — purity on datasets I, average row only.
PAPER_TABLE_V_PURITY_AVERAGES: dict[str, float] = dict(
    zip(_ALGORITHMS_I, (0.8323, 0.8154, 0.8229, 0.8330, 0.8175, 0.8223, 0.8603, 0.8523, 0.8549))
)

#: Table VI — Fowlkes-Mallows index on datasets I, average row only.
PAPER_TABLE_VI_FMI_AVERAGES: dict[str, float] = dict(
    zip(_ALGORITHMS_I, (0.4928, 0.4160, 0.4170, 0.4891, 0.4184, 0.4224, 0.5227, 0.5306, 0.5253))
)

#: Table VII — accuracy on datasets II (rows: HS..IR; columns as _ALGORITHMS_II).
PAPER_TABLE_VII_ACCURACY: dict[str, dict[str, float]] = {
    "HS": dict(zip(_ALGORITHMS_II, (0.5719, 0.5163, 0.5169, 0.5229, 0.5686, 0.5588, 0.6174, 0.6144, 0.5980))),
    "QB": dict(zip(_ALGORITHMS_II, (0.5592, 0.5886, 0.5640, 0.6142, 0.5782, 0.5678, 0.6218, 0.6028, 0.6104))),
    "SH": dict(zip(_ALGORITHMS_II, (0.6180, 0.5356, 0.5543, 0.5506, 0.5318, 0.5243, 0.7715, 0.5730, 0.5730))),
    "SC": dict(zip(_ALGORITHMS_II, (0.6259, 0.5315, 0.5315, 0.8056, 0.5556, 0.5481, 0.8111, 0.5741, 0.5963))),
    "BCW": dict(zip(_ALGORITHMS_II, (0.7909, 0.8541, 0.8541, 0.6362, 0.6309, 0.6309, 0.8524, 0.8682, 0.8664))),
    "IR": dict(zip(_ALGORITHMS_II, (0.9067, 0.8933, 0.8867, 0.8333, 0.8333, 0.8200, 0.9800, 0.9667, 0.9467))),
}

#: Table VIII — Rand index on datasets II, average row only.
PAPER_TABLE_VIII_RAND_AVERAGES: dict[str, float] = dict(
    zip(_ALGORITHMS_II, (0.6055, 0.6077, 0.6060, 0.5972, 0.5648, 0.5620, 0.6861, 0.6321, 0.6284))
)

#: Table IX — Fowlkes-Mallows index on datasets II, average row only.
PAPER_TABLE_IX_FMI_AVERAGES: dict[str, float] = dict(
    zip(_ALGORITHMS_II, (0.6770, 0.6664, 0.6638, 0.6597, 0.6351, 0.6338, 0.7757, 0.7132, 0.7062))
)


def paper_average(table: dict[str, dict[str, float]]) -> dict[str, float]:
    """Column averages of a per-dataset paper table."""
    algorithms = list(next(iter(table.values())))
    return {
        algorithm: float(np.mean([row[algorithm] for row in table.values()]))
        for algorithm in algorithms
    }


def compare_shape(
    measured_averages: dict[str, float],
    paper_averages: dict[str, float],
    *,
    base_clusterers: tuple[str, ...] = ("DP", "K-means", "AP"),
) -> dict[str, dict[str, bool]]:
    """Check the qualitative claims of the paper on measured averages.

    For each base clusterer ``X`` with model suffix ``M`` (GRBM or RBM), the
    paper's claims are

    * ``X+slsM > X+M``  (the supervision helps over the plain model), and
    * ``X+slsM > X``    (the learned features beat the raw data).

    Returns, per base clusterer, whether each claim holds in the measured
    averages and whether it holds in the paper's averages (it always should).
    """
    suffix = "GRBM" if any("GRBM" in key for key in paper_averages) else "RBM"
    outcome: dict[str, dict[str, bool]] = {}
    for base in base_clusterers:
        sls_name = f"{base}+sls{suffix}"
        plain_name = f"{base}+{suffix}"
        outcome[base] = {
            "sls_beats_plain_measured": measured_averages[sls_name] > measured_averages[plain_name],
            "sls_beats_raw_measured": measured_averages[sls_name] > measured_averages[base],
            "sls_beats_plain_paper": paper_averages[sls_name] > paper_averages[plain_name],
            "sls_beats_raw_paper": paper_averages[sls_name] > paper_averages[base],
        }
    return outcome
