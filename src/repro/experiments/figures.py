"""Figure data extraction.

The paper's figures are visualisations of the table data:

* Figs. 2-4 (datasets I) and Figs. 6-8 (datasets II) plot, for each base
  clusterer, the per-dataset metric series of the raw, +plain-model and
  +sls-model variants — :func:`figure_series` returns exactly those series.
* Figs. 5 and 9 plot the per-algorithm averages over the suite —
  :func:`figure_average_bars` returns those bar heights.

The benchmark harness prints these structures; no plotting library is
required (none is available offline).
"""

from __future__ import annotations

from repro.exceptions import ValidationError
from repro.experiments.runner import ExperimentTable

__all__ = ["figure_series", "figure_average_bars"]

_BASE_CLUSTERERS = ("DP", "K-means", "AP")


def figure_series(
    table: ExperimentTable, metric: str, *, model_suffix: str
) -> dict[str, dict[str, list[float]]]:
    """Per-dataset metric series grouped by base clusterer.

    Parameters
    ----------
    table : ExperimentTable
        Result of an :class:`ExperimentRunner` run.
    metric : str
        Metric to plot ("accuracy", "purity", "rand", "fmi", ...).
    model_suffix : {"GRBM", "RBM"}
        Which model family the table used; determines the three lines per
        panel (e.g. ``DP``, ``DP+GRBM``, ``DP+slsGRBM``).

    Returns
    -------
    dict
        ``{base_clusterer: {algorithm_name: [value per dataset]}}`` — one
        panel per base clusterer with three series each, exactly the layout
        of Figs. 2-4 and 6-8.
    """
    if model_suffix not in ("GRBM", "RBM"):
        raise ValidationError(
            f"model_suffix must be 'GRBM' or 'RBM', got {model_suffix!r}"
        )
    panels: dict[str, dict[str, list[float]]] = {}
    for base in _BASE_CLUSTERERS:
        algorithms = (base, f"{base}+{model_suffix}", f"{base}+sls{model_suffix}")
        panels[base] = {
            algorithm: table.dataset_series(metric, algorithm)
            for algorithm in algorithms
            if algorithm in table.algorithm_order
        }
    return panels


def figure_average_bars(
    table: ExperimentTable, metrics: tuple[str, ...]
) -> dict[str, dict[str, float]]:
    """Average metric per algorithm (the bar heights of Fig. 5 / Fig. 9).

    Returns ``{metric: {algorithm: average value}}`` with algorithms in the
    table's column order.
    """
    return {metric: table.column_averages(metric) for metric in metrics}
