"""Experiment runner producing the paper's result tables.

``ExperimentRunner`` evaluates an algorithm grid over a dataset suite, with
optional repetitions to report the mean and variance of stochastic cells
(the +-variance columns of Tables IV and VII).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.datasets.base import Dataset, DatasetSuite
from repro.exceptions import PersistenceError, ValidationError
from repro.experiments.grids import build_algorithm
from repro.metrics.report import ClusteringReport
from repro.utils.validation import check_positive_int

__all__ = ["ExperimentCell", "ExperimentTable", "ExperimentRunner"]

_METRIC_NAMES = ("accuracy", "purity", "rand", "adjusted_rand", "fmi", "nmi")


@dataclass(frozen=True)
class ExperimentCell:
    """Aggregated result of one (dataset, algorithm) cell over repeats.

    ``mean`` and ``variance`` are dictionaries keyed by metric name.
    """

    dataset: str
    algorithm: str
    mean: dict[str, float]
    variance: dict[str, float]
    n_repeats: int
    reports: tuple[ClusteringReport, ...] = field(default=(), repr=False)

    def value(self, metric: str) -> float:
        """Mean value of ``metric`` for this cell."""
        if metric not in self.mean:
            raise ValidationError(
                f"unknown metric {metric!r}; available: {sorted(self.mean)}"
            )
        return self.mean[metric]


class ExperimentTable:
    """Dataset-by-algorithm grid of :class:`ExperimentCell` results."""

    def __init__(
        self,
        name: str,
        dataset_order: list[str],
        algorithm_order: list[str],
    ) -> None:
        self.name = name
        self.dataset_order = list(dataset_order)
        self.algorithm_order = list(algorithm_order)
        self._cells: dict[tuple[str, str], ExperimentCell] = {}

    def add(self, cell: ExperimentCell) -> None:
        self._cells[(cell.dataset, cell.algorithm)] = cell

    def cell(self, dataset: str, algorithm: str) -> ExperimentCell:
        try:
            return self._cells[(dataset, algorithm)]
        except KeyError:
            raise ValidationError(
                f"no result for dataset {dataset!r} and algorithm {algorithm!r}"
            ) from None

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._cells

    def metric_matrix(self, metric: str) -> np.ndarray:
        """Matrix of mean metric values, rows = datasets, columns = algorithms."""
        matrix = np.full((len(self.dataset_order), len(self.algorithm_order)), np.nan)
        for i, dataset in enumerate(self.dataset_order):
            for j, algorithm in enumerate(self.algorithm_order):
                if (dataset, algorithm) in self._cells:
                    matrix[i, j] = self.cell(dataset, algorithm).value(metric)
        return matrix

    def rows(self, metric: str) -> list[dict[str, float | str]]:
        """Table rows in the paper's layout: one row per dataset plus averages."""
        rows = []
        for dataset in self.dataset_order:
            row: dict[str, float | str] = {"dataset": dataset}
            for algorithm in self.algorithm_order:
                row[algorithm] = self.cell(dataset, algorithm).value(metric)
            rows.append(row)
        averages = self.column_averages(metric)
        rows.append({"dataset": "Average", **averages})
        return rows

    def column_averages(self, metric: str) -> dict[str, float]:
        """Average metric per algorithm over all datasets (the tables' last row)."""
        matrix = self.metric_matrix(metric)
        return {
            algorithm: float(np.nanmean(matrix[:, j]))
            for j, algorithm in enumerate(self.algorithm_order)
        }

    def dataset_series(self, metric: str, algorithm: str) -> list[float]:
        """Per-dataset series for one algorithm (one line of Figs. 2-4 / 6-8)."""
        return [self.cell(dataset, algorithm).value(metric) for dataset in self.dataset_order]


class ExperimentRunner:
    """Run an algorithm grid over a dataset suite.

    Parameters
    ----------
    algorithm_names : tuple of str
        Column names (paper convention, e.g. ``"DP+slsGRBM"``).
    n_repeats : int, default 1
        Repetitions per stochastic cell (different seeds); deterministic
        cells (DP on raw data) are still repeated for uniformity.
    n_hidden, n_epochs, batch_size : int
        Shared model settings forwarded to :func:`build_algorithm`.
    random_state : int, default 0
        Base seed; repeat ``r`` uses ``random_state + r``.
    config_overrides : dict, optional
        Forwarded to :func:`build_algorithm` (ablation hook).
    artifact_dir : str or Path, optional
        Warm-start directory.  When set, every fitted framework is persisted
        there (one bundle per dataset/algorithm/repeat) and later runs load
        the bundle instead of retraining; within one run, the multi-clustering
        supervision is additionally shared across the sls cells of a dataset
        that request the identical integration.

    Attributes
    ----------
    n_artifact_hits : int
        Cells served from a persisted framework bundle instead of retraining.
    n_supervision_hits : int
        Framework fits that reused an in-memory cached supervision.
    """

    def __init__(
        self,
        algorithm_names: tuple[str, ...],
        *,
        n_repeats: int = 1,
        n_hidden: int = 64,
        n_epochs: int = 30,
        batch_size: int = 64,
        random_state: int = 0,
        config_overrides: dict | None = None,
        artifact_dir: str | Path | None = None,
    ) -> None:
        if not algorithm_names:
            raise ValidationError("algorithm_names must not be empty")
        self.algorithm_names = tuple(algorithm_names)
        self.n_repeats = check_positive_int(n_repeats, name="n_repeats")
        self.n_hidden = check_positive_int(n_hidden, name="n_hidden")
        self.n_epochs = check_positive_int(n_epochs, name="n_epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.random_state = int(random_state)
        self.config_overrides = dict(config_overrides or {})
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self._supervision_cache: dict[tuple, object] = {}
        self.n_artifact_hits = 0
        self.n_supervision_hits = 0

    # --------------------------------------------------------------- warm start
    def _artifact_path(self, dataset: Dataset, algorithm: str, repeat: int) -> Path:
        safe = re.sub(r"[^A-Za-z0-9_.-]", "-", algorithm)
        return self.artifact_dir / f"{dataset.abbreviation}__{safe}__r{repeat}"

    @staticmethod
    def _supervision_key(dataset: Dataset, framework) -> tuple:
        config = framework.config
        return (
            dataset.abbreviation,
            framework.n_clusters,
            config.supervision_preprocessing or config.preprocessing,
            config.clusterers,
            config.voting,
            config.min_agreement,
            config.random_state,
        )

    def _load_warm_framework(self, bundle: Path, expected, dataset: Dataset):
        from repro.persistence import load_framework

        if not bundle.is_dir():
            return None
        try:
            loaded = load_framework(bundle)
        except (PersistenceError, ValidationError, KeyError):
            # A corrupted or undecodable bundle falls back to retraining (and
            # is overwritten by the fresh fit below).
            return None
        # A bundle left over from a run with different hyper-parameters (the
        # ablation hook changes eta/n_hidden/... without changing the cell
        # name) or a differently-sized dataset must not be reused silently.
        if (
            loaded.config != expected.config
            or loaded.n_clusters != expected.n_clusters
            or loaded.model_.n_visible_ != dataset.n_features
        ):
            return None
        return loaded

    # --------------------------------------------------------------------- API
    def run_cell(self, dataset: Dataset, algorithm: str) -> ExperimentCell:
        """Evaluate one (dataset, algorithm) cell with repeats."""
        from repro.persistence import save_framework

        reports: list[ClusteringReport] = []
        for repeat in range(self.n_repeats):
            pipeline = build_algorithm(
                algorithm,
                dataset.n_classes,
                n_hidden=self.n_hidden,
                n_epochs=self.n_epochs,
                batch_size=self.batch_size,
                random_state=self.random_state + repeat,
                config_overrides=self.config_overrides or None,
            )
            warm = None
            if pipeline.framework is not None and self.artifact_dir is not None:
                bundle = self._artifact_path(dataset, algorithm, repeat)
                warm = self._load_warm_framework(bundle, pipeline.framework, dataset)
                if warm is not None:
                    pipeline.framework = warm
                    self.n_artifact_hits += 1

            supervision = None
            if (
                warm is None
                and pipeline.framework is not None
                and pipeline.framework.config.uses_supervision
            ):
                key = self._supervision_key(dataset, pipeline.framework)
                supervision = self._supervision_cache.get(key)
                if supervision is not None:
                    self.n_supervision_hits += 1

            reports.append(
                pipeline.run(
                    dataset, supervision=supervision, reuse_fitted=warm is not None
                ).report
            )

            framework = pipeline.framework
            if framework is not None and warm is None:
                if (
                    framework.config.uses_supervision
                    and framework.supervision_ is not None
                ):
                    self._supervision_cache.setdefault(
                        self._supervision_key(dataset, framework),
                        framework.supervision_,
                    )
                if self.artifact_dir is not None:
                    save_framework(
                        framework, self._artifact_path(dataset, algorithm, repeat)
                    )

        mean = {
            metric: float(np.mean([r[metric] for r in reports]))
            for metric in _METRIC_NAMES
        }
        variance = {
            metric: float(np.var([r[metric] for r in reports]))
            for metric in _METRIC_NAMES
        }
        return ExperimentCell(
            dataset=dataset.abbreviation,
            algorithm=algorithm,
            mean=mean,
            variance=variance,
            n_repeats=self.n_repeats,
            reports=tuple(reports),
        )

    def run_dataset(self, dataset: Dataset) -> list[ExperimentCell]:
        """Evaluate every algorithm of the grid on one dataset."""
        return [self.run_cell(dataset, algorithm) for algorithm in self.algorithm_names]

    def run_suite(self, suite: DatasetSuite, *, name: str | None = None) -> ExperimentTable:
        """Evaluate the whole grid over a dataset suite."""
        table = ExperimentTable(
            name or suite.name,
            dataset_order=suite.abbreviations,
            algorithm_order=list(self.algorithm_names),
        )
        for dataset in suite:
            for cell in self.run_dataset(dataset):
                table.add(cell)
        return table
