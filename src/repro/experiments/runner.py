"""Experiment runner producing the paper's result tables.

``ExperimentRunner`` evaluates an algorithm grid over a dataset suite, with
optional repetitions to report the mean and variance of stochastic cells
(the +-variance columns of Tables IV and VII).
"""

from __future__ import annotations

import re
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import registry
from repro.datasets.base import Dataset, DatasetSuite
from repro.exceptions import PersistenceError, ValidationError
from repro.experiments.grids import build_algorithm
from repro.metrics.report import ClusteringReport
from repro.utils.validation import check_positive_int

__all__ = ["ExperimentCell", "ExperimentTable", "ExperimentRunner"]

_METRIC_NAMES = ("accuracy", "purity", "rand", "adjusted_rand", "fmi", "nmi")


@dataclass(frozen=True)
class ExperimentCell:
    """Aggregated result of one (dataset, algorithm) cell over repeats.

    ``mean`` and ``variance`` are dictionaries keyed by metric name.
    """

    dataset: str
    algorithm: str
    mean: dict[str, float]
    variance: dict[str, float]
    n_repeats: int
    reports: tuple[ClusteringReport, ...] = field(default=(), repr=False)

    def value(self, metric: str) -> float:
        """Mean value of ``metric`` for this cell."""
        if metric not in self.mean:
            raise ValidationError(
                f"unknown metric {metric!r}; available: {sorted(self.mean)}"
            )
        return self.mean[metric]

    def to_dict(self) -> dict:
        """JSON-safe dictionary of the cell, including its repeat reports."""
        return {
            "dataset": self.dataset,
            "algorithm": self.algorithm,
            "mean": dict(self.mean),
            "variance": dict(self.variance),
            "n_repeats": self.n_repeats,
            "reports": [report.to_payload() for report in self.reports],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentCell":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            dataset=str(payload["dataset"]),
            algorithm=str(payload["algorithm"]),
            mean={key: float(value) for key, value in payload["mean"].items()},
            variance={
                key: float(value) for key, value in payload["variance"].items()
            },
            n_repeats=int(payload["n_repeats"]),
            reports=tuple(
                ClusteringReport.from_payload(entry)
                for entry in payload.get("reports", [])
            ),
        )


class ExperimentTable:
    """Dataset-by-algorithm grid of :class:`ExperimentCell` results."""

    def __init__(
        self,
        name: str,
        dataset_order: list[str],
        algorithm_order: list[str],
    ) -> None:
        self.name = name
        self.dataset_order = list(dataset_order)
        self.algorithm_order = list(algorithm_order)
        self._cells: dict[tuple[str, str], ExperimentCell] = {}

    def add(self, cell: ExperimentCell) -> None:
        self._cells[(cell.dataset, cell.algorithm)] = cell

    def cell(self, dataset: str, algorithm: str) -> ExperimentCell:
        try:
            return self._cells[(dataset, algorithm)]
        except KeyError:
            raise ValidationError(
                f"no result for dataset {dataset!r} and algorithm {algorithm!r}"
            ) from None

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._cells

    def metric_matrix(self, metric: str) -> np.ndarray:
        """Matrix of mean metric values, rows = datasets, columns = algorithms."""
        matrix = np.full((len(self.dataset_order), len(self.algorithm_order)), np.nan)
        for i, dataset in enumerate(self.dataset_order):
            for j, algorithm in enumerate(self.algorithm_order):
                if (dataset, algorithm) in self._cells:
                    matrix[i, j] = self.cell(dataset, algorithm).value(metric)
        return matrix

    def rows(self, metric: str) -> list[dict[str, float | str]]:
        """Table rows in the paper's layout: one row per dataset plus averages."""
        rows = []
        for dataset in self.dataset_order:
            row: dict[str, float | str] = {"dataset": dataset}
            for algorithm in self.algorithm_order:
                row[algorithm] = self.cell(dataset, algorithm).value(metric)
            rows.append(row)
        averages = self.column_averages(metric)
        rows.append({"dataset": "Average", **averages})
        return rows

    def column_averages(self, metric: str) -> dict[str, float]:
        """Average metric per algorithm over all datasets (the tables' last row)."""
        matrix = self.metric_matrix(metric)
        return {
            algorithm: float(np.nanmean(matrix[:, j]))
            for j, algorithm in enumerate(self.algorithm_order)
        }

    def dataset_series(self, metric: str, algorithm: str) -> list[float]:
        """Per-dataset series for one algorithm (one line of Figs. 2-4 / 6-8)."""
        return [self.cell(dataset, algorithm).value(metric) for dataset in self.dataset_order]

    # -------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        """JSON-safe dictionary of the whole table.

        Floats survive the JSON round-trip bit-exactly (shortest-repr
        encoding), so a table written to disk and re-read compares equal
        cell by cell — the basis for resuming grids from disk and for the
        distributed coordinator's merge.
        """
        return {
            "name": self.name,
            "dataset_order": list(self.dataset_order),
            "algorithm_order": list(self.algorithm_order),
            "cells": [
                self._cells[key].to_dict() for key in sorted(self._cells)
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentTable":
        """Rebuild a table from :meth:`to_dict` output."""
        table = cls(
            str(payload["name"]),
            dataset_order=[str(d) for d in payload["dataset_order"]],
            algorithm_order=[str(a) for a in payload["algorithm_order"]],
        )
        for entry in payload.get("cells", []):
            table.add(ExperimentCell.from_dict(entry))
        return table

    @classmethod
    def merge(
        cls, tables: "list[ExperimentTable]", *, name: str | None = None
    ) -> "ExperimentTable":
        """Union several partial tables into one.

        Dataset and algorithm orders are concatenated first-seen-first; a
        (dataset, algorithm) cell present in more than one input is a
        :class:`ValidationError` — partial grids to be merged must not
        overlap, so a duplicated cell always signals a bookkeeping bug
        (e.g. the same shard evaluated twice) rather than a tie to break
        silently.
        """
        if not tables:
            raise ValidationError("merge needs at least one table")
        dataset_order: list[str] = []
        algorithm_order: list[str] = []
        for table in tables:
            for dataset in table.dataset_order:
                if dataset not in dataset_order:
                    dataset_order.append(dataset)
            for algorithm in table.algorithm_order:
                if algorithm not in algorithm_order:
                    algorithm_order.append(algorithm)
        merged = cls(
            name if name is not None else tables[0].name,
            dataset_order=dataset_order,
            algorithm_order=algorithm_order,
        )
        for table in tables:
            for key, cell in table._cells.items():
                if key in merged._cells:
                    raise ValidationError(
                        f"duplicate cell {key!r} while merging experiment tables"
                    )
                merged.add(cell)
        return merged


def _artifact_path(
    artifact_dir: Path, dataset: Dataset, algorithm: str, repeat: int
) -> Path:
    safe = re.sub(r"[^A-Za-z0-9_.-]", "-", algorithm)
    return artifact_dir / f"{dataset.abbreviation}__{safe}__r{repeat}"


def _supervision_key(dataset: Dataset, framework) -> tuple:
    config = framework.config
    return (
        dataset.abbreviation,
        framework.n_clusters,
        config.supervision_preprocessing or config.preprocessing,
        config.clusterers,
        config.voting,
        config.min_agreement,
        config.random_state,
    )


def _load_warm_framework(bundle: Path, expected, dataset: Dataset):
    from repro.persistence import load_framework

    if not bundle.is_dir():
        return None
    try:
        loaded = load_framework(bundle)
    except (PersistenceError, ValidationError, KeyError):
        # A corrupted or undecodable bundle falls back to retraining (and
        # is overwritten by the fresh fit below).
        return None
    # A bundle left over from a run with different hyper-parameters (the
    # ablation hook changes eta/n_hidden/... without changing the cell
    # name) or a differently-sized dataset must not be reused silently.
    if (
        loaded.config != expected.config
        or loaded.n_clusters != expected.n_clusters
        or loaded.model_.n_visible_ != dataset.n_features
    ):
        return None
    return loaded


@dataclass(frozen=True)
class _RepeatOutcome:
    """Result of one (dataset, algorithm, repeat) evaluation plus the cache
    bookkeeping the parent runner merges on join."""

    report: ClusteringReport
    artifact_hit: bool
    supervision_hit: bool
    supervision_entry: tuple | None


def _build_spec_cell(spec: dict):
    """Build a spec grid cell, insisting on a :class:`ClusteringPipeline`.

    The general ``pipeline`` type shares the registry kind but has no
    ``algorithm_name`` / per-cell seeding hooks, so it cannot serve as an
    experiment cell.
    """
    from repro.core.pipeline import ClusteringPipeline

    pipeline = registry.build(spec, kind="pipeline")
    if not isinstance(pipeline, ClusteringPipeline):
        raise ValidationError(
            "experiment grid specs must build a clustering_pipeline, got "
            f"{type(pipeline).__name__}; see repro.experiments.grids.algorithm_spec"
        )
    return pipeline


def _build_cell_pipeline(
    algorithm: str | dict, dataset: Dataset, repeat: int, settings: dict
):
    """Instantiate one cell, from a table name or a registry spec.

    Spec cells get the same per-repeat seeding and per-dataset cluster count
    as name cells, so the two grid formats produce identical experiments.
    """
    seed = settings["random_state"] + repeat
    if isinstance(algorithm, dict):
        pipeline = _build_spec_cell(algorithm)
        pipeline.set_params(random_state=seed, n_clusters=dataset.n_classes)
        framework = pipeline.framework
        if framework is not None:
            framework.set_params(
                config=framework.config.with_overrides(random_state=seed),
                n_clusters=dataset.n_classes,
            )
        return pipeline
    return build_algorithm(
        algorithm,
        dataset.n_classes,
        n_hidden=settings["n_hidden"],
        n_epochs=settings["n_epochs"],
        batch_size=settings["batch_size"],
        random_state=seed,
        config_overrides=settings["config_overrides"] or None,
    )


def _run_repeat(
    dataset: Dataset,
    algorithm: str | dict,
    repeat: int,
    settings: dict,
    supervision_cache: dict,
    label: str | None = None,
) -> _RepeatOutcome:
    """Evaluate one repeat of one cell.

    Shared by the sequential path (called with the runner's live supervision
    cache) and the process-pool path (called in a worker with a private
    cache; the parent merges the returned entries/statistics).  Seeding is
    identical in both: repeat ``r`` always uses ``random_state + r``.
    """
    from repro.persistence import save_framework

    pipeline = _build_cell_pipeline(algorithm, dataset, repeat, settings)
    label = label if label is not None else str(algorithm)
    artifact_dir = settings["artifact_dir"]
    warm = None
    if pipeline.framework is not None and artifact_dir is not None:
        bundle = _artifact_path(artifact_dir, dataset, label, repeat)
        warm = _load_warm_framework(bundle, pipeline.framework, dataset)
        if warm is not None:
            pipeline.framework = warm

    supervision = None
    supervision_hit = False
    if (
        warm is None
        and pipeline.framework is not None
        and pipeline.framework.config.uses_supervision
    ):
        key = _supervision_key(dataset, pipeline.framework)
        supervision = supervision_cache.get(key)
        supervision_hit = supervision is not None

    report = pipeline.run(
        dataset, supervision=supervision, reuse_fitted=warm is not None
    ).report

    supervision_entry = None
    framework = pipeline.framework
    if framework is not None and warm is None:
        if framework.config.uses_supervision and framework.supervision_ is not None:
            key = _supervision_key(dataset, framework)
            supervision_cache.setdefault(key, framework.supervision_)
            supervision_entry = (key, framework.supervision_)
        if artifact_dir is not None:
            save_framework(
                framework, _artifact_path(artifact_dir, dataset, label, repeat)
            )
    return _RepeatOutcome(
        report=report,
        artifact_hit=warm is not None,
        supervision_hit=supervision_hit,
        supervision_entry=supervision_entry,
    )


def _run_repeat_task(payload: tuple) -> _RepeatOutcome:
    """Process-pool entry point: one repeat with a worker-local cache."""
    dataset, algorithm, repeat, settings, label = payload
    return _run_repeat(
        dataset, algorithm, repeat, settings, supervision_cache={}, label=label
    )


class ExperimentRunner:
    """Run an algorithm grid over a dataset suite.

    Parameters
    ----------
    algorithm_names : tuple of str or dict
        Grid cells: either column names in the paper convention
        (e.g. ``"DP+slsGRBM"``) or full :func:`repro.registry.build` specs of
        :class:`~repro.core.pipeline.ClusteringPipeline` cells (the format
        produced by :func:`repro.experiments.grids.algorithm_spec`).  Spec
        cells receive the same per-repeat seeding and per-dataset cluster
        count as name cells; their column label is the pipeline's
        ``algorithm_name``.
    n_repeats : int, default 1
        Repetitions per stochastic cell (different seeds); deterministic
        cells (DP on raw data) are still repeated for uniformity.
    n_hidden, n_epochs, batch_size : int
        Shared model settings forwarded to :func:`build_algorithm`.
    random_state : int, default 0
        Base seed; repeat ``r`` uses ``random_state + r``.
    config_overrides : dict, optional
        Forwarded to :func:`build_algorithm` (ablation hook).
    artifact_dir : str or Path, optional
        Warm-start directory.  When set, every fitted framework is persisted
        there (one bundle per dataset/algorithm/repeat) and later runs load
        the bundle instead of retraining; within one run, the multi-clustering
        supervision is additionally shared across the sls cells of a dataset
        that request the identical integration.
    n_jobs : int, default 1
        Worker processes for fanning out the (dataset, algorithm, repeat)
        cells.  Every repeat keeps the exact per-repeat seeding of the
        sequential path, so results are bit-identical for any ``n_jobs``;
        workers cannot share the in-memory supervision cache, so parallel
        runs may recompute a supervision that the sequential path would have
        reused (the recomputation is deterministic and yields the same
        object), and the per-worker cache statistics are merged on join.
    workers : int or list of str, optional
        Distributed fan-out (takes precedence over ``n_jobs``).  An int
        auto-spawns that many local worker subprocesses against an
        ephemeral coordinator (loopback mode — the whole stack on one
        machine); a list of ``"host:port"`` strings dials standby workers
        started with ``python -m repro worker --listen PORT``.  Seeding
        derives from cell identity, never from arrival order, so the merged
        table is bit-identical to the sequential run — including when a
        worker dies mid-cell and its leases are re-queued.
    lease_timeout : float, default 30.0
        Distributed mode only: seconds a worker may go silent before its
        leased cells are re-queued to other workers.
    coordinator_host : str, default "127.0.0.1"
        Distributed mode only: bind/advertise address of the coordinator;
        use a routable address when dialing remote standby workers.
    journal : str or Path, optional
        Distributed mode only: write-ahead journal file.  Every accepted
        cell result is fsync'd there before the worker's acknowledgement,
        so a coordinator killed mid-grid loses nothing it acknowledged.
    resume : bool, default False
        Distributed mode only: replay ``journal`` from a previous
        (crashed) run of the *same* grid — replayed cells are merged
        verbatim and only the remainder re-runs.  Refused when the journal
        belongs to a different grid (fingerprint mismatch).
    max_cell_retries : int, default 2
        Distributed mode only: transient-failure retries per cell before
        the grid aborts; 0 restores strict fail-fast.
    quarantine_after : int, default 3
        Distributed mode only: consecutive failures after which a worker
        is quarantined for the rest of the grid.
    secret : str, optional
        Distributed mode only: shared secret for coordinator/worker auth
        (the ``X-Repro-Secret`` header).

    Attributes
    ----------
    n_artifact_hits : int
        Cells served from a persisted framework bundle instead of retraining.
    n_supervision_hits : int
        Framework fits that reused an in-memory cached supervision.
    n_requeued_cells : int
        Distributed runs: leases that expired or were released and went
        back to the queue (worker loss survived).
    n_duplicate_results : int
        Distributed runs: completions discarded by the idempotent merge
        (a re-queued cell that finished twice).
    n_retried_cells : int
        Distributed runs: transient cell failures absorbed by a retry.
    n_journal_replayed : int
        Distributed runs: cells merged from the journal instead of
        re-executing (``resume=True``).
    quarantined_workers : list of str
        Distributed runs: workers quarantined by the circuit breaker.
    """

    def __init__(
        self,
        algorithm_names: tuple[str, ...],
        *,
        n_repeats: int = 1,
        n_hidden: int = 64,
        n_epochs: int = 30,
        batch_size: int = 64,
        random_state: int = 0,
        config_overrides: dict | None = None,
        artifact_dir: str | Path | None = None,
        n_jobs: int = 1,
        workers: int | list[str] | tuple[str, ...] | None = None,
        lease_timeout: float = 30.0,
        coordinator_host: str = "127.0.0.1",
        journal: str | Path | None = None,
        resume: bool = False,
        max_cell_retries: int = 2,
        quarantine_after: int = 3,
        secret: str | None = None,
    ) -> None:
        if not algorithm_names:
            raise ValidationError("algorithm_names must not be empty")
        self._algorithms: dict[str, str | dict] = {}
        for entry in algorithm_names:
            if isinstance(entry, dict):
                label = _build_spec_cell(entry).algorithm_name
            else:
                label = str(entry)
            if label in self._algorithms:
                raise ValidationError(f"duplicate algorithm cell {label!r}")
            self._algorithms[label] = entry
        self.algorithm_names = tuple(self._algorithms)
        self.n_repeats = check_positive_int(n_repeats, name="n_repeats")
        self.n_hidden = check_positive_int(n_hidden, name="n_hidden")
        self.n_epochs = check_positive_int(n_epochs, name="n_epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.random_state = int(random_state)
        self.config_overrides = dict(config_overrides or {})
        self.artifact_dir = Path(artifact_dir) if artifact_dir is not None else None
        self.n_jobs = check_positive_int(n_jobs, name="n_jobs")
        self.workers = self._check_workers(workers)
        if lease_timeout <= 0:
            raise ValidationError("lease_timeout must be positive")
        self.lease_timeout = float(lease_timeout)
        self.coordinator_host = str(coordinator_host)
        self.journal = Path(journal) if journal is not None else None
        self.resume = bool(resume)
        if self.resume and self.journal is None:
            raise ValidationError("resume=True requires a journal path")
        if max_cell_retries < 0:
            raise ValidationError(
                f"max_cell_retries must be >= 0, got {max_cell_retries}"
            )
        self.max_cell_retries = int(max_cell_retries)
        self.quarantine_after = check_positive_int(
            quarantine_after, name="quarantine_after"
        )
        self.secret = str(secret) if secret else None
        self._supervision_cache: dict[tuple, object] = {}
        self.n_artifact_hits = 0
        self.n_supervision_hits = 0
        self.n_requeued_cells = 0
        self.n_duplicate_results = 0
        self.n_retried_cells = 0
        self.n_journal_replayed = 0
        self.quarantined_workers: list[str] = []

    @staticmethod
    def _check_workers(workers):
        if workers is None:
            return None
        if isinstance(workers, bool):
            raise ValidationError("workers must be an int or a list of host:port")
        if isinstance(workers, int):
            return check_positive_int(workers, name="workers")
        from repro.distributed.worker import parse_address

        addresses = [str(address) for address in workers]
        if not addresses:
            raise ValidationError("workers list must not be empty")
        for address in addresses:
            parse_address(address)  # raises ValidationError on malformed
        return addresses

    # ----------------------------------------------------------------- plumbing
    def _settings(self) -> dict:
        return {
            "n_hidden": self.n_hidden,
            "n_epochs": self.n_epochs,
            "batch_size": self.batch_size,
            "random_state": self.random_state,
            "config_overrides": self.config_overrides or None,
            "artifact_dir": self.artifact_dir,
        }

    def _merge_cell(
        self, dataset: Dataset, algorithm: str, outcomes: list[_RepeatOutcome]
    ) -> ExperimentCell:
        """Fold repeat outcomes into a cell and absorb their cache statistics."""
        for outcome in outcomes:
            if outcome.artifact_hit:
                self.n_artifact_hits += 1
            if outcome.supervision_hit:
                self.n_supervision_hits += 1
            if outcome.supervision_entry is not None:
                key, supervision = outcome.supervision_entry
                self._supervision_cache.setdefault(key, supervision)
        reports = [outcome.report for outcome in outcomes]
        mean = {
            metric: float(np.mean([r[metric] for r in reports]))
            for metric in _METRIC_NAMES
        }
        variance = {
            metric: float(np.var([r[metric] for r in reports]))
            for metric in _METRIC_NAMES
        }
        return ExperimentCell(
            dataset=dataset.abbreviation,
            algorithm=algorithm,
            mean=mean,
            variance=variance,
            n_repeats=self.n_repeats,
            reports=tuple(reports),
        )

    def _evaluate_cells_distributed(
        self, pairs: list[tuple[Dataset, str]]
    ) -> list[ExperimentCell]:
        """Fan the (dataset, algorithm, repeat) cells out over the wire.

        Loopback mode (``workers`` is an int) spawns local worker
        subprocesses against an ephemeral coordinator; address mode dials
        standby workers.  Outcomes are re-assembled in grid order — cell
        ``(pair i, repeat r)`` always lands at the same position no matter
        which worker computed it or how often it was re-queued — so the
        merged table is bit-identical to the sequential run.
        """
        from repro.distributed.coordinator import (
            GridCoordinator,
            coordinator_signal_drain,
        )
        from repro.distributed.errors import DistributedError
        from repro.distributed.messages import outcome_from_wire
        from repro.distributed.worker import (
            dial_standby_workers,
            spawn_loopback_workers,
        )

        settings = self._settings()
        datasets: dict[str, Dataset] = {}
        cells = []
        for index, (dataset, algorithm) in enumerate(pairs):
            datasets.setdefault(dataset.abbreviation, dataset)
            entry = self._algorithms.get(algorithm, algorithm)
            for repeat in range(self.n_repeats):
                cells.append(
                    {
                        "cell_id": f"{index}:{repeat}",
                        "dataset_ref": dataset.abbreviation,
                        "algorithm": entry,
                        "label": algorithm,
                        "repeat": repeat,
                    }
                )

        coordinator = GridCoordinator(
            cells,
            datasets,
            settings,
            host=self.coordinator_host,
            lease_timeout=self.lease_timeout,
            journal=self.journal,
            resume=self.resume,
            max_cell_retries=self.max_cell_retries,
            quarantine_after=self.quarantine_after,
            secret=self.secret,
        ).start()
        pool = None
        try:
            if isinstance(self.workers, int):
                pool = spawn_loopback_workers(
                    self.workers,
                    coordinator.address_string,
                    secret=self.secret,
                )

                def watchdog() -> None:
                    if pool.n_alive == 0 and not coordinator.queue.done:
                        raise DistributedError(
                            f"all {len(pool)} loopback workers exited before "
                            "the grid completed"
                        )

            else:
                dial_standby_workers(
                    self.workers,
                    coordinator.address_string,
                    secret=self.secret,
                )
                watchdog = None
            with coordinator_signal_drain(coordinator):
                raw = coordinator.wait(poll=0.05, watchdog=watchdog)
        finally:
            coordinator.stop()
            if pool is not None:
                pool.terminate()
            counters = coordinator.queue.counters()
            self.n_requeued_cells += counters["n_requeued"]
            self.n_duplicate_results += counters["n_duplicates"]
            self.n_retried_cells += counters["n_retried"]
            self.n_journal_replayed += coordinator.n_replayed
            for worker_id in coordinator.breaker.quarantined:
                if worker_id not in self.quarantined_workers:
                    self.quarantined_workers.append(worker_id)

        outcomes = {
            cell_id: outcome_from_wire(payload)
            for cell_id, payload in raw.items()
        }
        results = []
        for index, (dataset, algorithm) in enumerate(pairs):
            chunk = [
                outcomes[f"{index}:{repeat}"]
                for repeat in range(self.n_repeats)
            ]
            results.append(self._merge_cell(dataset, algorithm, chunk))
        return results

    def _evaluate_cells(
        self, pairs: list[tuple[Dataset, str]]
    ) -> list[ExperimentCell]:
        """Evaluate (dataset, algorithm) pairs: sequentially, via the
        process pool, or distributed over workers."""
        if self.workers is not None:
            return self._evaluate_cells_distributed(pairs)
        settings = self._settings()
        if self.n_jobs == 1 or len(pairs) * self.n_repeats == 1:
            cells = []
            for dataset, algorithm in pairs:
                entry = self._algorithms.get(algorithm, algorithm)
                outcomes = [
                    _run_repeat(
                        dataset,
                        entry,
                        repeat,
                        settings,
                        self._supervision_cache,
                        label=algorithm,
                    )
                    for repeat in range(self.n_repeats)
                ]
                cells.append(self._merge_cell(dataset, algorithm, outcomes))
            return cells

        payloads = [
            (dataset, self._algorithms.get(algorithm, algorithm), repeat, settings,
             algorithm)
            for dataset, algorithm in pairs
            for repeat in range(self.n_repeats)
        ]
        with ProcessPoolExecutor(max_workers=self.n_jobs) as pool:
            outcomes = list(pool.map(_run_repeat_task, payloads))
        cells = []
        for index, (dataset, algorithm) in enumerate(pairs):
            chunk = outcomes[index * self.n_repeats : (index + 1) * self.n_repeats]
            cells.append(self._merge_cell(dataset, algorithm, chunk))
        return cells

    # --------------------------------------------------------------------- API
    def run_cell(self, dataset: Dataset, algorithm: str | dict) -> ExperimentCell:
        """Evaluate one (dataset, algorithm) cell with repeats.

        ``algorithm`` is a table name or a registry spec (see
        :func:`repro.experiments.grids.algorithm_spec`).
        """
        if isinstance(algorithm, dict):
            label = _build_spec_cell(algorithm).algorithm_name
            self._algorithms.setdefault(label, algorithm)
            algorithm = label
        return self._evaluate_cells([(dataset, algorithm)])[0]

    def run_dataset(self, dataset: Dataset) -> list[ExperimentCell]:
        """Evaluate every algorithm of the grid on one dataset."""
        return self._evaluate_cells(
            [(dataset, algorithm) for algorithm in self.algorithm_names]
        )

    def run_suite(self, suite: DatasetSuite, *, name: str | None = None) -> ExperimentTable:
        """Evaluate the whole grid over a dataset suite.

        With ``n_jobs > 1`` every (dataset, algorithm, repeat) cell of the
        grid is dispatched to the process pool at once, so the fan-out spans
        the entire suite rather than one dataset at a time.
        """
        table = ExperimentTable(
            name or suite.name,
            dataset_order=suite.abbreviations,
            algorithm_order=list(self.algorithm_names),
        )
        pairs = [
            (dataset, algorithm)
            for dataset in suite
            for algorithm in self.algorithm_names
        ]
        for cell in self._evaluate_cells(pairs):
            table.add(cell)
        return table
