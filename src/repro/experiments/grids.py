"""Algorithm grids of the paper's evaluation.

Each table compares nine algorithms per dataset: three raw clusterers, the
same three on plain RBM/GRBM features and the same three on slsRBM/slsGRBM
features.  ``algorithm_spec`` describes one such cell as a component-registry
spec (the same nested-dict format used by configs and artifact bundles);
``build_algorithm`` instantiates it as a
:class:`repro.core.pipeline.ClusteringPipeline`.
"""

from __future__ import annotations

from repro import registry
from repro.core.pipeline import ClusteringPipeline
from repro.exceptions import ValidationError

__all__ = [
    "DATASETS_I_ALGORITHMS",
    "DATASETS_II_ALGORITHMS",
    "algorithm_spec",
    "build_algorithm",
    "build_algorithm_grid",
]

#: Column order of Tables IV-VI (datasets I, GRBM family).
DATASETS_I_ALGORITHMS: tuple[str, ...] = (
    "DP",
    "K-means",
    "AP",
    "DP+GRBM",
    "K-means+GRBM",
    "AP+GRBM",
    "DP+slsGRBM",
    "K-means+slsGRBM",
    "AP+slsGRBM",
)

#: Column order of Tables VII-IX (datasets II, RBM family).
DATASETS_II_ALGORITHMS: tuple[str, ...] = (
    "DP",
    "K-means",
    "AP",
    "DP+RBM",
    "K-means+RBM",
    "AP+RBM",
    "DP+slsRBM",
    "K-means+slsRBM",
    "AP+slsRBM",
)

_CLUSTERER_KEYS = {"DP": "dp", "K-means": "kmeans", "AP": "ap"}
_MODEL_KEYS = {
    "GRBM": "grbm",
    "slsGRBM": "sls_grbm",
    "RBM": "rbm",
    "slsRBM": "sls_rbm",
}
_MODEL_PREPROCESSING = {
    "grbm": "standardize",
    "sls_grbm": "standardize",
    "rbm": "median_binarize",
    "sls_rbm": "median_binarize",
}
#: The base clusterers that build the supervision see real-valued data even
#: when the model itself trains on binarised input (see FrameworkConfig).
_MODEL_SUPERVISION_PREPROCESSING = {
    "sls_grbm": "standardize",
    "sls_rbm": "standardize",
}
_MODEL_ETA = {"sls_grbm": 0.4, "sls_rbm": 0.5}
_MODEL_LEARNING_RATE = {
    "grbm": 1e-4,
    "sls_grbm": 1e-4,
    "rbm": 1e-3,
    "sls_rbm": 1e-3,
}


def algorithm_spec(
    name: str,
    n_clusters: int,
    *,
    n_hidden: int = 64,
    n_epochs: int = 30,
    batch_size: int = 64,
    random_state: int | None = 0,
    config_overrides: dict | None = None,
) -> dict:
    """Registry spec of one algorithm cell from its table name.

    The returned dict is a full :func:`repro.registry.build` spec for a
    :class:`ClusteringPipeline`, so a grid definition is a list of plain
    JSON values — shareable with configs and artifact manifests.

    Parameters
    ----------
    name : str
        One of the entries of :data:`DATASETS_I_ALGORITHMS` /
        :data:`DATASETS_II_ALGORITHMS`.
    n_clusters : int
        Number of clusters (the ground-truth class count of the dataset).
    n_hidden, n_epochs, batch_size : int
        Model size / training schedule shared by all RBM-based cells.
    random_state : int or None
    config_overrides : dict, optional
        Extra :class:`FrameworkConfig` fields (e.g. ``{"eta": 0.3}``) applied
        on top of the per-model defaults; used by the ablation studies.
    """
    parts = name.split("+")
    clusterer_label = parts[0]
    if clusterer_label not in _CLUSTERER_KEYS:
        raise ValidationError(
            f"unknown clusterer {clusterer_label!r} in algorithm name {name!r}"
        )
    params: dict = {
        "clusterer": _CLUSTERER_KEYS[clusterer_label],
        "n_clusters": n_clusters,
        "random_state": random_state,
    }
    if len(parts) == 1:
        return {"kind": "pipeline", "type": "clustering_pipeline", "params": params}
    if len(parts) != 2 or parts[1] not in _MODEL_KEYS:
        raise ValidationError(f"unknown algorithm name {name!r}")

    model_key = _MODEL_KEYS[parts[1]]
    config = dict(
        model=model_key,
        n_hidden=n_hidden,
        learning_rate=_MODEL_LEARNING_RATE[model_key],
        n_epochs=n_epochs,
        batch_size=batch_size,
        preprocessing=_MODEL_PREPROCESSING[model_key],
        random_state=random_state,
    )
    if model_key in _MODEL_ETA:
        config["eta"] = _MODEL_ETA[model_key]
    if model_key in _MODEL_SUPERVISION_PREPROCESSING:
        config["supervision_preprocessing"] = _MODEL_SUPERVISION_PREPROCESSING[
            model_key
        ]
    if config_overrides:
        config.update(config_overrides)
    params["framework"] = {
        "kind": "framework",
        "type": "framework",
        "params": {"config": config, "n_clusters": n_clusters},
    }
    return {"kind": "pipeline", "type": "clustering_pipeline", "params": params}


def build_algorithm(name: str, n_clusters: int, **kwargs) -> ClusteringPipeline:
    """Instantiate one algorithm cell from its table name (e.g. "DP+slsGRBM").

    Equivalent to ``registry.build(algorithm_spec(name, n_clusters, ...))``;
    see :func:`algorithm_spec` for the parameters.
    """
    return registry.build(algorithm_spec(name, n_clusters, **kwargs))


def build_algorithm_grid(
    names: tuple[str, ...],
    n_clusters: int,
    **kwargs,
) -> dict[str, ClusteringPipeline]:
    """Build every algorithm of a table column set; see :func:`build_algorithm`."""
    return {name: build_algorithm(name, n_clusters, **kwargs) for name in names}
