"""LRU feature cache used by :class:`repro.serving.EncodingService`.

Identical encode requests are frequent in clustering workloads (the same
feature matrix is clustered by several downstream algorithms, or re-scored
under several metrics), so the service memoises encoded features keyed on a
content digest of the input matrix.

Thread-safety audit (single mutex)
----------------------------------
The cache is hit concurrently by HTTP handler threads and by whichever
client thread leads a :class:`~repro.serving.fusion.BatchFuser` flush, so
every operation that reads *or* writes the ordered dict — including the
hit/miss/lookup counters, which previously raced under free threading — runs
under one instance-level :class:`threading.Lock`.  A single mutex (rather
than lock striping) is deliberate: the critical sections are dict moves and
integer bumps, orders of magnitude cheaper than the matmuls they guard, so
striping would buy contention relief nobody can measure while making the
conservation invariant below much harder to audit.

Invariants (asserted by the stress tests):

* ``hits + misses == lookups`` at every quiescent point;
* ``len(cache) <= max_entries`` always;
* a ``put`` is never lost: after a quiescent ``put(k, v)`` with no capacity
  eviction, ``get(k)`` returns the value.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["LRUFeatureCache", "input_digest"]


def input_digest(data: np.ndarray) -> str:
    """Content digest of a feature matrix (dtype, shape and raw bytes).

    Two arrays receive the same digest iff they are bitwise-identical with
    the same dtype and shape, which is exactly the condition under which the
    encoded features are reusable.
    """
    data = np.ascontiguousarray(data)
    digest = hashlib.sha256()
    digest.update(str(data.dtype).encode())
    digest.update(str(data.shape).encode())
    digest.update(data.tobytes())
    return digest.hexdigest()


class LRUFeatureCache:
    """Bounded thread-safe mapping of cache keys to feature matrices.

    Parameters
    ----------
    max_entries : int
        Maximum number of cached feature matrices; the least recently used
        entry is evicted when the bound is exceeded.
    """

    def __init__(self, max_entries: int = 64) -> None:
        if max_entries < 1:
            raise ValidationError(f"max_entries must be >= 1, got {max_entries}")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[object, np.ndarray] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.lookups = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: object) -> np.ndarray | None:
        """Cached features for ``key`` (marking it most recently used)."""
        with self._lock:
            self.lookups += 1
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: object, value: np.ndarray) -> None:
        """Insert (or refresh) an entry, evicting the LRU one if needed."""
        # Cached arrays are shared across callers; store a frozen private
        # copy so neither the producer mutating its result nor a consumer
        # mutating a cache hit can poison later hits.  The copy happens
        # outside the lock — it is the only expensive part of a put.
        value = np.array(value)
        value.setflags(write=False)
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def evict(self, predicate) -> int:
        """Drop every entry whose key satisfies ``predicate``; returns the count."""
        with self._lock:
            stale = [key for key in self._entries if predicate(key)]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def counters(self) -> dict[str, int]:
        """A consistent ``{hits, misses, lookups, entries}`` snapshot."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "lookups": self.lookups,
                "entries": len(self._entries),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUFeatureCache(entries={len(self)}/{self.max_entries}, "
            f"hits={self.hits}, misses={self.misses})"
        )
