"""Serving layer: loaded artifacts -> named models -> encode requests.

:class:`EncodingService` is the process-local front end of the train/serve
split introduced by :mod:`repro.persistence`: artifacts are loaded once into
a named registry and then answer repeated ``encode(name, X)`` requests with
micro-batching for large inputs, an LRU feature cache keyed on the input
digest, and per-model latency/throughput counters.

On top of it, :class:`BatchFuser` coalesces *concurrent* requests from many
threads into single fused matmuls (bit-identical to unfused serving).  The
HTTP tier exposes the stack over JSON/HTTP via ``python -m repro serve``:
route logic lives in :class:`ServingGateway` (admission control, deadline
budgets, dispatch) and is driven by either front end — the threaded
:mod:`repro.serving.http` or the selector-loop
:mod:`repro.serving.async_http` (``--async``) — over either backend: the
in-process :class:`LocalEncodeBackend` or the multi-process
:class:`ShardPool` (``--shard-workers N``), which consistent-hashes the
models across worker subprocesses and re-spawns dead ones.
"""

from repro.serving.async_http import AsyncEncodingServer, build_async_server
from repro.serving.cache import LRUFeatureCache, input_digest
from repro.serving.fusion import BatchFuser, FuserClosedError, FusionTicket
from repro.serving.http import (
    EncodingHTTPServer,
    LocalEncodeBackend,
    ServingGateway,
    build_server,
)
from repro.serving.service import EncodingService
from repro.serving.shard import HashRing, ShardPool
from repro.serving.stats import ModelStats
from repro.serving.wire import JsonRequestHandler, PayloadTooLargeError, request_json

__all__ = [
    "AsyncEncodingServer",
    "BatchFuser",
    "EncodingHTTPServer",
    "EncodingService",
    "FuserClosedError",
    "FusionTicket",
    "HashRing",
    "JsonRequestHandler",
    "LRUFeatureCache",
    "LocalEncodeBackend",
    "ModelStats",
    "PayloadTooLargeError",
    "ServingGateway",
    "ShardPool",
    "build_async_server",
    "build_server",
    "input_digest",
    "request_json",
]
