"""Serving layer: loaded artifacts -> named models -> encode requests.

:class:`EncodingService` is the process-local front end of the train/serve
split introduced by :mod:`repro.persistence`: artifacts are loaded once into
a named registry and then answer repeated ``encode(name, X)`` requests with
micro-batching for large inputs, an LRU feature cache keyed on the input
digest, and per-model latency/throughput counters.

On top of it, :class:`BatchFuser` coalesces *concurrent* requests from many
threads into single fused matmuls (bit-identical to unfused serving), and
:mod:`repro.serving.http` exposes the whole stack over JSON/HTTP via
``python -m repro serve``.
"""

from repro.serving.cache import LRUFeatureCache, input_digest
from repro.serving.fusion import BatchFuser, FusionTicket
from repro.serving.service import EncodingService
from repro.serving.stats import ModelStats
from repro.serving.wire import JsonRequestHandler, PayloadTooLargeError, request_json

__all__ = [
    "BatchFuser",
    "EncodingService",
    "FusionTicket",
    "JsonRequestHandler",
    "LRUFeatureCache",
    "ModelStats",
    "PayloadTooLargeError",
    "input_digest",
    "request_json",
]
