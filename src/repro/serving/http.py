"""HTTP front end for the serving stack: ``python -m repro serve``.

A deliberately dependency-free JSON-over-HTTP layer built on the stdlib
:class:`http.server.ThreadingHTTPServer` — one handler thread per
connection, which is exactly the concurrency shape the
:class:`~repro.serving.fusion.BatchFuser` coalesces: simultaneous ``/encode``
requests for the same model are answered by shared fused matmuls.  The
request/response plumbing (JSON bodies, Content-Length validation, the
413 size cap) lives in :mod:`repro.serving.wire`, shared with the
distributed experiment protocol.

Routes
------
``GET /healthz``
    Liveness probe: ``{"status": "ok", "models": [...]}``.
``GET /models``
    Registered model names and per-model serving configuration.
``GET /stats``
    Per-model counters (including the queue/compute split and fusion
    ratio), cache counters and the fuser configuration.
``POST /encode``
    Body ``{"model": name, "data": [[...], ...], "use_cache": true}``;
    responds ``{"features": [[...], ...], "shape": [n, k], "dtype": ...}``.

Error mapping: unknown model name → 404, invalid input or body → 400,
oversized body → 413, anything else → 500; every error body is
``{"error": message}``.
"""

from __future__ import annotations

from http.server import ThreadingHTTPServer

import numpy as np

from repro.exceptions import ServingError, ValidationError
from repro.serving.fusion import BatchFuser
from repro.serving.service import EncodingService
from repro.serving.wire import MAX_BODY_BYTES, JsonRequestHandler, PayloadTooLargeError

__all__ = ["EncodingHTTPServer", "build_server", "MAX_BODY_BYTES"]


class _EncodingRequestHandler(JsonRequestHandler):
    server_version = "repro-serve/1.0"

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service: EncodingService = self.server.service  # type: ignore[attr-defined]
        if self.path == "/healthz":
            self.send_json(
                200, {"status": "ok", "models": service.model_names}
            )
        elif self.path == "/models":
            self.send_json(200, {"models": self.server.describe_models()})  # type: ignore[attr-defined]
        elif self.path == "/stats":
            self.send_json(200, self.server.describe_stats())  # type: ignore[attr-defined]
        else:
            self.send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path != "/encode":
            self.drain_body()
            self.send_error_json(404, f"unknown route {self.path!r}")
            return
        try:
            request = self.read_json_body()
            response = self.server.handle_encode(request)  # type: ignore[attr-defined]
        except ServingError as exc:
            self.send_error_json(404, str(exc))
        except PayloadTooLargeError as exc:
            self.send_error_json(413, str(exc))
        except (ValidationError, ValueError, TypeError) as exc:
            self.send_error_json(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self.send_json(200, response)


class EncodingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server wrapping an :class:`EncodingService`.

    Parameters
    ----------
    address : (host, port)
        Bind address; port 0 picks an ephemeral port (``server_port`` holds
        the bound one).
    service : EncodingService
        The model registry answering the requests.
    fuser : BatchFuser, optional
        When given, ``/encode`` requests go through the fusion queue so
        concurrent requests for the same model share one matmul; without
        it each request is encoded directly.
    verbose : bool, default False
        Log one line per request to stderr (stdlib format).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EncodingService,
        *,
        fuser: BatchFuser | None = None,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.fuser = fuser
        self.verbose = verbose
        super().__init__(address, _EncodingRequestHandler)

    # ------------------------------------------------------------ handlers
    def handle_encode(self, request: dict) -> dict:
        name = request.get("model")
        if not isinstance(name, str) or not name:
            raise ValidationError("request must name a 'model' (non-empty string)")
        if "data" not in request:
            raise ValidationError("request must carry a 'data' matrix")
        data = np.asarray(request["data"], dtype=float)
        use_cache = bool(request.get("use_cache", True))
        used_fuser = self.fuser is not None and use_cache == self.fuser.use_cache
        if used_fuser:
            features = self.fuser.encode(name, data)
        else:
            features = self.service.encode(name, data, use_cache=use_cache)
        return {
            "model": name,
            "features": features.tolist(),
            "shape": list(features.shape),
            "dtype": str(features.dtype),
            "fused": used_fuser,
        }

    def describe_models(self) -> dict:
        models = {}
        for name in self.service.model_names:
            runtime = self.service._models.get(name)
            if runtime is None:  # unregistered between snapshot and read
                continue
            models[name] = {
                "estimator": type(runtime.estimator).__name__,
                "fast_path": runtime.has_fast_path,
                "n_features": (
                    int(runtime.weights.shape[0]) if runtime.has_fast_path else None
                ),
                "n_hidden": (
                    int(runtime.weights.shape[1]) if runtime.has_fast_path else None
                ),
                "dtype": (
                    str(runtime.weights.dtype) if runtime.has_fast_path else None
                ),
            }
        return models

    def describe_stats(self) -> dict:
        payload = {
            "models": self.service.stats(),
            "cache": self.service.cache_info,
            "fusion": None,
        }
        if self.fuser is not None:
            payload["fusion"] = {
                "max_batch_rows": self.fuser.max_batch_rows,
                "max_wait_ms": self.fuser.max_wait_ms,
                "use_cache": self.fuser.use_cache,
            }
        return payload

    # ------------------------------------------------------------ lifecycle
    def shutdown(self) -> None:
        if self.fuser is not None:
            self.fuser.close()
        super().shutdown()


def build_server(
    service: EncodingService,
    *,
    fuser: BatchFuser | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    verbose: bool = False,
) -> EncodingHTTPServer:
    """Bind an :class:`EncodingHTTPServer` (port 0 → ephemeral port)."""
    return EncodingHTTPServer(
        (host, port), service, fuser=fuser, verbose=verbose
    )
