"""HTTP front end for the serving stack: ``python -m repro serve``.

A deliberately dependency-free JSON-over-HTTP layer built on the stdlib
:class:`http.server.ThreadingHTTPServer` — one handler thread per
connection, which is exactly the concurrency shape the
:class:`~repro.serving.fusion.BatchFuser` coalesces: simultaneous ``/encode``
requests for the same model are answered by shared fused matmuls.  The
request/response plumbing (JSON bodies, Content-Length validation, the
413 size cap) lives in :mod:`repro.serving.wire`, shared with the
distributed experiment protocol.

The route logic itself — admission control, deadline budgets, encode
dispatch and the ``/models``/``/stats`` snapshots — lives in
:class:`ServingGateway`, shared verbatim with the asyncio front end
(:mod:`repro.serving.async_http`) so both speak bit-identical semantics.
The gateway dispatches to a *backend*: :class:`LocalEncodeBackend`
(an in-process :class:`EncodingService`, optionally fused) or the
multi-process :class:`~repro.serving.shard.ShardPool`.

Routes
------
``GET /healthz``
    Liveness probe: ``{"status": "ok", "models": [...]}``.
``GET /models``
    Registered model names and per-model serving configuration.
``GET /stats``
    Per-model counters (including the queue/compute split and fusion
    ratio), cache counters and the fuser configuration.
``POST /encode``
    Body ``{"model": name, "data": [[...], ...], "use_cache": true,
    "deadline_ms": 50}`` (the last two optional); responds
    ``{"features": [[...], ...], "shape": [n, k], "dtype": ...}``.

Overload protection: a server built with ``max_in_flight`` answers
``503`` with a ``Retry-After`` header once that many ``/encode`` requests
are in flight, instead of queueing unboundedly until every client times
out.  A request carrying ``deadline_ms`` is shed the same way when its
budget is spent before compute can start — on the fused path the budget
caps the coalescing wait, on the unfused path it is enforced at compute
start (covering the wait for the model's compute lock).  Shed/admitted
counters appear under ``"admission"`` in ``/stats``.  A server built with
``secret`` requires the ``X-Repro-Secret`` header everywhere except
``/healthz``.

Shutdown ordering: ``shutdown()`` first stops the accept loop, then
drains the in-flight ``/encode`` requests, and only then closes the
fuser — closing first would answer the in-flight requests with spurious
errors from a dead fusion queue.

Error mapping: unknown model name → 404, invalid input or body → 400,
missing/bad secret → 401, oversized body → 413, overload, spent deadline
or a closing server → 503 (+ ``Retry-After``), anything else → 500; every
error body is ``{"error": message}``.
"""

from __future__ import annotations

import threading
import time
from http.server import ThreadingHTTPServer

import numpy as np

from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    ServingError,
    ValidationError,
)
from repro.serving.fusion import BatchFuser, FuserClosedError
from repro.serving.service import EncodingService
from repro.serving.stats import AdmissionStats
from repro.serving.wire import MAX_BODY_BYTES, JsonRequestHandler, PayloadTooLargeError
from repro.utils.validation import check_positive_int

__all__ = [
    "EncodingHTTPServer",
    "DeadlineExceededError",
    "LocalEncodeBackend",
    "ServingGateway",
    "build_server",
    "map_encode_exception",
    "MAX_BODY_BYTES",
]


def map_encode_exception(exc: BaseException, gateway: "ServingGateway"):
    """``(status, payload, headers)`` for an exception out of ``handle_encode``.

    The single source of the error mapping, shared by the threaded and
    asyncio front ends so both answer identical statuses for identical
    failures.
    """
    if isinstance(exc, (DeadlineExceededError, FuserClosedError)):
        return (
            503,
            {"error": str(exc)},
            {"Retry-After": gateway.retry_after_header},
        )
    if isinstance(exc, ServingError):
        return 404, {"error": str(exc)}, {}
    if isinstance(exc, PayloadTooLargeError):
        return 413, {"error": str(exc)}, {}
    if isinstance(exc, (ValidationError, ValueError, TypeError)):
        return 400, {"error": str(exc)}, {}
    return 500, {"error": f"{type(exc).__name__}: {exc}"}, {}


class LocalEncodeBackend:
    """In-process encode backend: an :class:`EncodingService` + optional fuser.

    The default backend behind both HTTP front ends.  ``/encode`` requests
    whose ``use_cache`` matches the fuser's configuration go through the
    fusion queue (concurrent requests share one stacked matmul, the
    deadline budget caps the coalescing wait); mismatching requests fall
    back to a direct ``service.encode`` with the budget enforced at
    compute start.
    """

    def __init__(
        self, service: EncodingService, fuser: BatchFuser | None = None
    ) -> None:
        if fuser is not None and fuser.service is not service:
            raise ValidationError("fuser must wrap the same EncodingService")
        self.service = service
        self.fuser = fuser

    @property
    def model_names(self) -> list[str]:
        return self.service.model_names

    def encode_request(
        self, name: str, request: dict, budget_ms: float | None
    ) -> dict:
        if "data" not in request:
            raise ValidationError("request must carry a 'data' matrix")
        data = np.asarray(request["data"], dtype=float)
        use_cache = bool(request.get("use_cache", True))
        used_fuser = self.fuser is not None and use_cache == self.fuser.use_cache
        if used_fuser:
            features = self.fuser.encode(name, data, max_wait_ms=budget_ms)
        else:
            features = self.service.encode(
                name, data, use_cache=use_cache, budget_ms=budget_ms
            )
        return {
            "model": name,
            "features": features.tolist(),
            "shape": list(features.shape),
            "dtype": str(features.dtype),
            "fused": used_fuser,
        }

    def describe_models(self) -> dict:
        return self.service.describe_models()

    def describe_stats(self) -> dict:
        payload = {
            "models": self.service.stats(),
            "cache": self.service.cache_info,
            "fusion": None,
        }
        if self.fuser is not None:
            payload["fusion"] = {
                "max_batch_rows": self.fuser.max_batch_rows,
                "max_wait_ms": self.fuser.max_wait_ms,
                "use_cache": self.fuser.use_cache,
            }
        return payload

    def close(self) -> None:
        if self.fuser is not None:
            self.fuser.close()


class ServingGateway:
    """Front-end-agnostic serving logic: admission, deadlines, dispatch.

    Owned by exactly one front end (threaded or asyncio) and dispatching
    to exactly one backend (local service or shard pool).  Everything a
    request passes through that is not connection I/O lives here, so the
    two front ends cannot drift apart semantically.
    """

    def __init__(
        self,
        backend,
        *,
        max_in_flight: int | None = None,
        retry_after: float = 1.0,
    ) -> None:
        self.backend = backend
        self.max_in_flight = (
            check_positive_int(max_in_flight, name="max_in_flight")
            if max_in_flight is not None
            else None
        )
        if retry_after <= 0:
            raise ValidationError(f"retry_after must be > 0, got {retry_after}")
        self.retry_after = float(retry_after)
        self.admission = AdmissionStats()
        self._slots = (
            threading.BoundedSemaphore(self.max_in_flight)
            if self.max_in_flight is not None
            else None
        )

    # ------------------------------------------------------------ admission
    @property
    def retry_after_header(self) -> int:
        """``Retry-After`` is specified in whole seconds; round up."""
        return max(1, int(-(-self.retry_after // 1)))

    def try_admit(self) -> bool:
        """Claim an in-flight slot (non-blocking); False sheds the request."""
        if self._slots is not None and not self._slots.acquire(blocking=False):
            self.admission.shed()
            return False
        self.admission.admitted()
        return True

    def release_request(self) -> None:
        self.admission.released()
        if self._slots is not None:
            self._slots.release()

    # ------------------------------------------------------------- dispatch
    @property
    def model_names(self) -> list[str]:
        return self.backend.model_names

    def handle_encode(self, request: dict, *, arrival: float | None = None) -> dict:
        name = request.get("model")
        if not isinstance(name, str) or not name:
            raise ValidationError("request must name a 'model' (non-empty string)")
        budget_ms = self._remaining_budget_ms(request, arrival)
        try:
            return self.backend.encode_request(name, request, budget_ms)
        except DeadlineExceededError:
            # The budget died inside the backend (waiting on the compute
            # lock, or reported back by a shard worker); count it here so
            # every deadline shed lands in one counter regardless of where
            # it was detected.
            self.admission.deadline_shed()
            raise

    def _remaining_budget_ms(
        self, request: dict, arrival: float | None
    ) -> float | None:
        """What is left of the request's ``deadline_ms`` budget (None: no
        deadline).  A spent budget raises :class:`DeadlineExceededError`
        (counted as a deadline shed) instead of computing a result the
        client has already given up on."""
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return None
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise ValidationError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            ) from None
        if deadline_ms <= 0:
            raise ValidationError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        elapsed_ms = (
            (time.monotonic() - arrival) * 1000.0 if arrival is not None else 0.0
        )
        remaining = deadline_ms - elapsed_ms
        if remaining <= 0:
            self.admission.deadline_shed()
            raise DeadlineExceededError(
                f"deadline budget of {deadline_ms:g}ms was spent before "
                f"compute started ({elapsed_ms:.1f}ms elapsed)"
            )
        return remaining

    # -------------------------------------------------------- introspection
    def describe_models(self) -> dict:
        return self.backend.describe_models()

    def describe_stats(self) -> dict:
        payload = self.backend.describe_stats()
        payload["admission"] = {
            "max_in_flight": self.max_in_flight,
            "retry_after": self.retry_after,
            **self.admission.as_dict(),
        }
        return payload

    # ------------------------------------------------------------ lifecycle
    def drain(self, timeout: float | None = 10.0) -> bool:
        """Wait for every in-flight ``/encode`` request to release its slot."""
        return self.admission.wait_idle(timeout)

    def close(self) -> None:
        """Tear down the backend (flush/close the fuser, stop shard workers).

        Call only after the front end has stopped accepting and
        :meth:`drain` returned — in-flight requests still own the backend.
        """
        self.backend.close()


class _EncodingRequestHandler(JsonRequestHandler):
    server_version = "repro-serve/1.0"

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        gateway: ServingGateway = self.server.gateway  # type: ignore[attr-defined]
        if self.path == "/healthz":
            # Liveness stays open: probes should not need the secret.
            self.send_json(
                200, {"status": "ok", "models": gateway.model_names}
            )
        elif not self.authorize():
            return
        elif self.path == "/models":
            self.send_json(200, {"models": gateway.describe_models()})
        elif self.path == "/stats":
            self.send_json(200, gateway.describe_stats())
        else:
            self.send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self.authorize():
            return
        if self.path != "/encode":
            self.drain_body()
            self.send_error_json(404, f"unknown route {self.path!r}")
            return
        gateway: ServingGateway = self.server.gateway  # type: ignore[attr-defined]
        arrival = time.monotonic()
        if not gateway.try_admit():
            # Shed before reading the body: an overloaded server should do
            # the least possible work per rejected request.
            self.drain_body()
            self.send_json(
                503,
                {"error": "server is at capacity (max_in_flight reached)"},
                headers={"Retry-After": gateway.retry_after_header},
            )
            return
        try:
            request = self.read_json_body()
            response = gateway.handle_encode(request, arrival=arrival)
        except Exception as exc:  # noqa: BLE001 - mapped to a status below
            status, payload, headers = map_encode_exception(exc, gateway)
            self.send_json(status, payload, headers=headers or None)
        else:
            self.send_json(200, response)
        finally:
            gateway.release_request()


class EncodingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server wrapping an :class:`EncodingService`.

    Parameters
    ----------
    address : (host, port)
        Bind address; port 0 picks an ephemeral port (``server_port`` holds
        the bound one).
    service : EncodingService, optional
        The model registry answering the requests (``None`` only when a
        pre-built ``gateway`` with its own backend is supplied).
    fuser : BatchFuser, optional
        When given, ``/encode`` requests go through the fusion queue so
        concurrent requests for the same model share one matmul; without
        it each request is encoded directly.
    gateway : ServingGateway, optional
        Pre-built gateway (e.g. wrapping a
        :class:`~repro.serving.shard.ShardPool`); mutually exclusive with
        ``service``/``fuser``/``max_in_flight``/``retry_after``.
    max_in_flight : int, optional
        Admission-control bound: at most this many ``/encode`` requests are
        processed concurrently; excess requests are answered ``503`` with a
        ``Retry-After`` header instead of queueing unboundedly.  ``None``
        (the default) disables the gate.
    retry_after : float, default 1.0
        Seconds advertised in the ``Retry-After`` header of shed requests.
    secret : str, optional
        Shared secret required (``X-Repro-Secret``) on every route except
        ``/healthz``.
    verbose : bool, default False
        Log one line per request to stderr (stdlib format).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EncodingService | None = None,
        *,
        fuser: BatchFuser | None = None,
        gateway: ServingGateway | None = None,
        max_in_flight: int | None = None,
        retry_after: float = 1.0,
        secret: str | None = None,
        verbose: bool = False,
    ) -> None:
        if gateway is None:
            if service is None:
                raise ValidationError("either service or gateway is required")
            gateway = ServingGateway(
                LocalEncodeBackend(service, fuser),
                max_in_flight=max_in_flight,
                retry_after=retry_after,
            )
        elif service is not None or fuser is not None:
            raise ValidationError("pass either a gateway or a service, not both")
        self.gateway = gateway
        self.service = service
        self.fuser = fuser
        self.verbose = verbose
        self.auth_secret = str(secret) if secret else None
        self._shutdown_lock = threading.Lock()
        self._shut_down = False
        super().__init__(address, _EncodingRequestHandler)

    # --------------------------------------------------- gateway delegation
    # Kept as thin delegates so embedding code (benchmarks, tests) written
    # against the pre-gateway API keeps working unchanged.
    @property
    def admission(self) -> AdmissionStats:
        return self.gateway.admission

    @property
    def max_in_flight(self) -> int | None:
        return self.gateway.max_in_flight

    @property
    def retry_after(self) -> float:
        return self.gateway.retry_after

    @property
    def retry_after_header(self) -> int:
        return self.gateway.retry_after_header

    def try_admit(self) -> bool:
        return self.gateway.try_admit()

    def release_request(self) -> None:
        self.gateway.release_request()

    def handle_encode(self, request: dict, *, arrival: float | None = None) -> dict:
        return self.gateway.handle_encode(request, arrival=arrival)

    def _remaining_budget_ms(
        self, request: dict, arrival: float | None
    ) -> float | None:
        return self.gateway._remaining_budget_ms(request, arrival)

    def describe_models(self) -> dict:
        return self.gateway.describe_models()

    def describe_stats(self) -> dict:
        return self.gateway.describe_stats()

    # ------------------------------------------------------------ lifecycle
    def shutdown(self, *, drain_timeout: float = 10.0) -> None:
        """Graceful stop: stop accepting, drain in-flight, close the fuser.

        The order is the point (and was once reversed, answering in-flight
        requests with spurious errors from an already-closed fuser):

        1. ``super().shutdown()`` stops the accept loop — no new requests;
        2. :meth:`ServingGateway.drain` waits for the admitted ``/encode``
           requests to finish (bounded by ``drain_timeout``);
        3. the gateway closes its backend — the fuser refuses further
           submissions and flushes whatever its lanes still hold.

        Idempotent: a second call returns immediately.
        """
        with self._shutdown_lock:
            if self._shut_down:
                return
            self._shut_down = True
        super().shutdown()
        self.gateway.drain(timeout=drain_timeout)
        self.gateway.close()


def build_server(
    service: EncodingService | None = None,
    *,
    fuser: BatchFuser | None = None,
    gateway: ServingGateway | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_in_flight: int | None = None,
    retry_after: float = 1.0,
    secret: str | None = None,
    verbose: bool = False,
) -> EncodingHTTPServer:
    """Bind an :class:`EncodingHTTPServer` (port 0 → ephemeral port)."""
    return EncodingHTTPServer(
        (host, port),
        service,
        fuser=fuser,
        gateway=gateway,
        max_in_flight=max_in_flight,
        retry_after=retry_after,
        secret=secret,
        verbose=verbose,
    )
