"""HTTP front end for the serving stack: ``python -m repro serve``.

A deliberately dependency-free JSON-over-HTTP layer built on the stdlib
:class:`http.server.ThreadingHTTPServer` — one handler thread per
connection, which is exactly the concurrency shape the
:class:`~repro.serving.fusion.BatchFuser` coalesces: simultaneous ``/encode``
requests for the same model are answered by shared fused matmuls.  The
request/response plumbing (JSON bodies, Content-Length validation, the
413 size cap) lives in :mod:`repro.serving.wire`, shared with the
distributed experiment protocol.

Routes
------
``GET /healthz``
    Liveness probe: ``{"status": "ok", "models": [...]}``.
``GET /models``
    Registered model names and per-model serving configuration.
``GET /stats``
    Per-model counters (including the queue/compute split and fusion
    ratio), cache counters and the fuser configuration.
``POST /encode``
    Body ``{"model": name, "data": [[...], ...], "use_cache": true,
    "deadline_ms": 50}`` (the last two optional); responds
    ``{"features": [[...], ...], "shape": [n, k], "dtype": ...}``.

Overload protection: a server built with ``max_in_flight`` answers
``503`` with a ``Retry-After`` header once that many ``/encode`` requests
are in flight, instead of queueing unboundedly until every client times
out.  A request carrying ``deadline_ms`` is shed the same way when its
budget is spent before compute can start, and what budget remains caps the
fuser's coalescing wait.  Shed/admitted counters appear under
``"admission"`` in ``/stats``.  A server built with ``secret`` requires
the ``X-Repro-Secret`` header everywhere except ``/healthz``.

Error mapping: unknown model name → 404, invalid input or body → 400,
missing/bad secret → 401, oversized body → 413, overload or spent deadline
→ 503 (+ ``Retry-After``), anything else → 500; every error body is
``{"error": message}``.
"""

from __future__ import annotations

import threading
import time
from http.server import ThreadingHTTPServer

import numpy as np

from repro.exceptions import ReproError, ServingError, ValidationError
from repro.serving.fusion import BatchFuser
from repro.serving.service import EncodingService
from repro.serving.stats import AdmissionStats
from repro.serving.wire import MAX_BODY_BYTES, JsonRequestHandler, PayloadTooLargeError
from repro.utils.validation import check_positive_int

__all__ = [
    "EncodingHTTPServer",
    "DeadlineExceededError",
    "build_server",
    "MAX_BODY_BYTES",
]


class DeadlineExceededError(ReproError):
    """An admitted request's ``deadline_ms`` budget ran out before compute
    could start; mapped to 503 + ``Retry-After`` (the client should shed
    load or retry with a fresh budget)."""


class _EncodingRequestHandler(JsonRequestHandler):
    server_version = "repro-serve/1.0"

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        service: EncodingService = self.server.service  # type: ignore[attr-defined]
        if self.path == "/healthz":
            # Liveness stays open: probes should not need the secret.
            self.send_json(
                200, {"status": "ok", "models": service.model_names}
            )
        elif not self.authorize():
            return
        elif self.path == "/models":
            self.send_json(200, {"models": self.server.describe_models()})  # type: ignore[attr-defined]
        elif self.path == "/stats":
            self.send_json(200, self.server.describe_stats())  # type: ignore[attr-defined]
        else:
            self.send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self.authorize():
            return
        if self.path != "/encode":
            self.drain_body()
            self.send_error_json(404, f"unknown route {self.path!r}")
            return
        server: "EncodingHTTPServer" = self.server  # type: ignore[assignment]
        arrival = time.monotonic()
        if not server.try_admit():
            # Shed before reading the body: an overloaded server should do
            # the least possible work per rejected request.
            self.drain_body()
            self.send_json(
                503,
                {"error": "server is at capacity (max_in_flight reached)"},
                headers={"Retry-After": server.retry_after_header},
            )
            return
        try:
            request = self.read_json_body()
            response = server.handle_encode(request, arrival=arrival)
        except DeadlineExceededError as exc:
            self.send_json(
                503,
                {"error": str(exc)},
                headers={"Retry-After": server.retry_after_header},
            )
        except ServingError as exc:
            self.send_error_json(404, str(exc))
        except PayloadTooLargeError as exc:
            self.send_error_json(413, str(exc))
        except (ValidationError, ValueError, TypeError) as exc:
            self.send_error_json(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self.send_json(200, response)
        finally:
            server.release_request()


class EncodingHTTPServer(ThreadingHTTPServer):
    """Threaded HTTP server wrapping an :class:`EncodingService`.

    Parameters
    ----------
    address : (host, port)
        Bind address; port 0 picks an ephemeral port (``server_port`` holds
        the bound one).
    service : EncodingService
        The model registry answering the requests.
    fuser : BatchFuser, optional
        When given, ``/encode`` requests go through the fusion queue so
        concurrent requests for the same model share one matmul; without
        it each request is encoded directly.
    max_in_flight : int, optional
        Admission-control bound: at most this many ``/encode`` requests are
        processed concurrently; excess requests are answered ``503`` with a
        ``Retry-After`` header instead of queueing unboundedly.  ``None``
        (the default) disables the gate.
    retry_after : float, default 1.0
        Seconds advertised in the ``Retry-After`` header of shed requests.
    secret : str, optional
        Shared secret required (``X-Repro-Secret``) on every route except
        ``/healthz``.
    verbose : bool, default False
        Log one line per request to stderr (stdlib format).
    """

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: EncodingService,
        *,
        fuser: BatchFuser | None = None,
        max_in_flight: int | None = None,
        retry_after: float = 1.0,
        secret: str | None = None,
        verbose: bool = False,
    ) -> None:
        self.service = service
        self.fuser = fuser
        self.verbose = verbose
        self.max_in_flight = (
            check_positive_int(max_in_flight, name="max_in_flight")
            if max_in_flight is not None
            else None
        )
        if retry_after <= 0:
            raise ValidationError(f"retry_after must be > 0, got {retry_after}")
        self.retry_after = float(retry_after)
        self.auth_secret = str(secret) if secret else None
        self.admission = AdmissionStats()
        self._slots = (
            threading.BoundedSemaphore(self.max_in_flight)
            if self.max_in_flight is not None
            else None
        )
        super().__init__(address, _EncodingRequestHandler)

    # ------------------------------------------------------------ admission
    @property
    def retry_after_header(self) -> int:
        """``Retry-After`` is specified in whole seconds; round up."""
        return max(1, int(-(-self.retry_after // 1)))

    def try_admit(self) -> bool:
        """Claim an in-flight slot (non-blocking); False sheds the request."""
        if self._slots is not None and not self._slots.acquire(blocking=False):
            self.admission.shed()
            return False
        self.admission.admitted()
        return True

    def release_request(self) -> None:
        self.admission.released()
        if self._slots is not None:
            self._slots.release()

    # ------------------------------------------------------------ handlers
    def handle_encode(self, request: dict, *, arrival: float | None = None) -> dict:
        name = request.get("model")
        if not isinstance(name, str) or not name:
            raise ValidationError("request must name a 'model' (non-empty string)")
        if "data" not in request:
            raise ValidationError("request must carry a 'data' matrix")
        data = np.asarray(request["data"], dtype=float)
        use_cache = bool(request.get("use_cache", True))
        budget_ms = self._remaining_budget_ms(request, arrival)
        used_fuser = self.fuser is not None and use_cache == self.fuser.use_cache
        if used_fuser:
            features = self.fuser.encode(name, data, max_wait_ms=budget_ms)
        else:
            features = self.service.encode(name, data, use_cache=use_cache)
        return {
            "model": name,
            "features": features.tolist(),
            "shape": list(features.shape),
            "dtype": str(features.dtype),
            "fused": used_fuser,
        }

    def _remaining_budget_ms(
        self, request: dict, arrival: float | None
    ) -> float | None:
        """What is left of the request's ``deadline_ms`` budget (None: no
        deadline).  A spent budget raises :class:`DeadlineExceededError`
        (counted as a deadline shed) instead of computing a result the
        client has already given up on."""
        deadline_ms = request.get("deadline_ms")
        if deadline_ms is None:
            return None
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            raise ValidationError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            ) from None
        if deadline_ms <= 0:
            raise ValidationError(
                f"deadline_ms must be a positive number, got {deadline_ms!r}"
            )
        elapsed_ms = (
            (time.monotonic() - arrival) * 1000.0 if arrival is not None else 0.0
        )
        remaining = deadline_ms - elapsed_ms
        if remaining <= 0:
            self.admission.deadline_shed()
            raise DeadlineExceededError(
                f"deadline budget of {deadline_ms:g}ms was spent before "
                f"compute started ({elapsed_ms:.1f}ms elapsed)"
            )
        return remaining

    def describe_models(self) -> dict:
        models = {}
        for name in self.service.model_names:
            runtime = self.service._models.get(name)
            if runtime is None:  # unregistered between snapshot and read
                continue
            models[name] = {
                "estimator": type(runtime.estimator).__name__,
                "fast_path": runtime.has_fast_path,
                "n_features": (
                    int(runtime.weights.shape[0]) if runtime.has_fast_path else None
                ),
                "n_hidden": (
                    int(runtime.weights.shape[1]) if runtime.has_fast_path else None
                ),
                "dtype": (
                    str(runtime.weights.dtype) if runtime.has_fast_path else None
                ),
            }
        return models

    def describe_stats(self) -> dict:
        payload = {
            "models": self.service.stats(),
            "cache": self.service.cache_info,
            "fusion": None,
            "admission": {
                "max_in_flight": self.max_in_flight,
                "retry_after": self.retry_after,
                **self.admission.as_dict(),
            },
        }
        if self.fuser is not None:
            payload["fusion"] = {
                "max_batch_rows": self.fuser.max_batch_rows,
                "max_wait_ms": self.fuser.max_wait_ms,
                "use_cache": self.fuser.use_cache,
            }
        return payload

    # ------------------------------------------------------------ lifecycle
    def shutdown(self) -> None:
        if self.fuser is not None:
            self.fuser.close()
        super().shutdown()


def build_server(
    service: EncodingService,
    *,
    fuser: BatchFuser | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_in_flight: int | None = None,
    retry_after: float = 1.0,
    secret: str | None = None,
    verbose: bool = False,
) -> EncodingHTTPServer:
    """Bind an :class:`EncodingHTTPServer` (port 0 → ephemeral port)."""
    return EncodingHTTPServer(
        (host, port),
        service,
        fuser=fuser,
        max_in_flight=max_in_flight,
        retry_after=retry_after,
        secret=secret,
        verbose=verbose,
    )
