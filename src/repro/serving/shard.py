"""Multi-process model sharding: ``repro serve --shard-workers N``.

A single serving process is bounded by one interpreter (the GIL outside
BLAS) and one address space (every registered model's weights).
:class:`ShardPool` scales past both by partitioning the registered models
across ``N`` worker *subprocesses*: each worker runs the ordinary threaded
serving stack (:mod:`repro.serving.http` — fusion, cache, admission and all)
on an ephemeral loopback port and owns a **disjoint subset** of the models.

Routing is consistent hashing (:class:`HashRing`): model names hash onto a
ring of virtual nodes, so the assignment is a pure function of
``(model name, worker count)`` — stable across restarts, no coordination
state to persist.  A respawned worker keeps its ring identity and therefore
re-loads exactly the artifacts it owned before.  Within each worker the
feature cache keys carry the service's registration *generation* stamp, so
a worker that died and re-registered its models can never serve a stale
cache entry from a previous life.

Fault tolerance: a background monitor re-spawns dead workers (artifacts are
re-loaded from disk), and the request path treats a transport error as a
liveness probe — dead worker → respawn → retry once; live worker → one
retry on a fresh connection.  Forwarding reuses keep-alive
:class:`http.client.HTTPConnection` objects per *(thread, worker
incarnation)*, so the steady-state hop adds one loopback round-trip and no
connection setup.

:class:`ShardPool` implements the same backend protocol as
:class:`~repro.serving.http.LocalEncodeBackend` (``model_names``,
``encode_request``, ``describe_models``, ``describe_stats``, ``close``), so
a :class:`~repro.serving.http.ServingGateway` — and with it either HTTP
front end — drives a shard pool exactly like an in-process service.

``python -m repro.serving.shard`` is the worker entry point (spawned by the
pool, not typed by hand): it loads its artifact subset, binds port 0,
announces the bound port through ``--port-file`` and serves until SIGTERM.
"""

from __future__ import annotations

import argparse
import bisect
import hashlib
import http.client
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.exceptions import (
    DeadlineExceededError,
    ReproError,
    ServingError,
    ValidationError,
)
from repro.serving.wire import PayloadTooLargeError, WireError, request_json
from repro.utils.validation import check_positive_int

__all__ = ["HashRing", "ShardPool", "ShardWorkerProcess", "worker_main"]


class ShardError(ReproError):
    """A shard worker failed in a way retry/respawn could not hide."""


# --------------------------------------------------------------- hash ring
class HashRing:
    """Consistent hashing of string keys onto a fixed set of nodes.

    Each node contributes ``replicas`` virtual points (sha256 of
    ``"{node}#{replica}"``) so keys spread evenly even for small node
    counts; a key maps to the first virtual point at or after its own hash,
    wrapping at the top.  sha256 (not ``hash()``) keeps the assignment
    stable across processes and Python releases —
    ``PYTHONHASHSEED`` randomises ``hash()`` per process, and the whole
    point is that parent and respawned workers agree on who owns what.
    """

    def __init__(self, nodes: list, *, replicas: int = 64) -> None:
        if not nodes:
            raise ValidationError("HashRing needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValidationError(f"duplicate ring nodes in {nodes!r}")
        self.nodes = list(nodes)
        self.replicas = check_positive_int(replicas, name="replicas")
        points = []
        for node in self.nodes:
            for replica in range(self.replicas):
                points.append((self._hash(f"{node}#{replica}"), node))
        points.sort()
        self._points = [point for point, _ in points]
        self._owners = [owner for _, owner in points]

    @staticmethod
    def _hash(key: str) -> int:
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")

    def assign(self, key: str):
        """The node owning ``key`` (deterministic, process-independent)."""
        index = bisect.bisect_right(self._points, self._hash(key))
        if index == len(self._points):
            index = 0
        return self._owners[index]

    def partition(self, keys: list[str]) -> dict:
        """``{node: sorted subset of keys}`` (nodes may own empty subsets)."""
        assignment = {node: [] for node in self.nodes}
        for key in sorted(keys):
            assignment[self.assign(key)].append(key)
        return assignment


# ------------------------------------------------------------ worker main
def worker_main(argv: list[str] | None = None) -> int:
    """Entry point of one shard worker subprocess.

    Builds the standard threaded serving stack over the artifact subset it
    was handed, binds an ephemeral port, and announces it atomically
    through ``--port-file`` (write to a temp name, then ``rename``) so the
    parent never reads a half-written port.  SIGTERM drains exactly like
    the top-level ``repro serve``.
    """
    parser = argparse.ArgumentParser(prog="repro-shard-worker")
    parser.add_argument("--artifact", action="append", required=True,
                        metavar="NAME=PATH")
    parser.add_argument("--port-file", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--cache-entries", type=int, default=64)
    parser.add_argument("--dtype", choices=("float64", "float32"), default=None)
    parser.add_argument("--no-fusion", action="store_true")
    parser.add_argument("--max-batch-rows", type=int, default=4096)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--max-in-flight", type=int, default=None)
    parser.add_argument("--retry-after", type=float, default=1.0)
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    from repro.serving.fusion import BatchFuser
    from repro.serving.http import build_server
    from repro.serving.service import EncodingService

    service = EncodingService(
        max_batch_size=args.batch_size,
        cache_entries=args.cache_entries,
        dtype=args.dtype,
    )
    for mapping in args.artifact:
        name, separator, path = mapping.partition("=")
        if not separator or not name or not path:
            parser.error(f"--artifact expects NAME=PATH, got {mapping!r}")
        service.load(name, path)
    fuser = None
    if not args.no_fusion:
        fuser = BatchFuser(
            service,
            max_batch_rows=args.max_batch_rows,
            max_wait_ms=args.max_wait_ms,
        )
    server = build_server(
        service,
        fuser=fuser,
        host=args.host,
        port=0,
        max_in_flight=args.max_in_flight,
        retry_after=args.retry_after,
        # The secret travels via the environment, not argv (ps would show it).
        secret=os.environ.get("REPRO_SECRET"),
        verbose=args.verbose,
    )

    port_file = Path(args.port_file)
    staging = port_file.with_suffix(port_file.suffix + ".tmp")
    staging.write_text(f"{server.server_port}\n", encoding="utf-8")
    staging.rename(port_file)

    def _terminate(signum, frame):  # noqa: ARG001 - signal signature
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _terminate)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.server_close()
        if fuser is not None:
            fuser.close()
    return 0


# --------------------------------------------------------- worker process
class ShardWorkerProcess:
    """One shard worker subprocess and the knowledge needed to re-spawn it.

    The spec (identity, artifact subset, serving knobs) outlives the
    process: :meth:`respawn` starts a fresh subprocess that re-loads the
    same artifacts from disk and answers on a fresh ephemeral port.
    ``incarnation`` counts lives — connection caches key on it so no stale
    socket to a dead incarnation is ever reused.
    """

    def __init__(
        self,
        worker_id: int,
        artifacts: dict[str, str],
        *,
        port_dir: str | Path,
        secret: str | None = None,
        extra_args: list[str] | None = None,
        spawn_timeout: float = 60.0,
        verbose: bool = False,
    ) -> None:
        self.worker_id = int(worker_id)
        self.artifacts = dict(artifacts)
        if not self.artifacts:
            raise ValidationError(
                f"worker {worker_id} needs at least one artifact"
            )
        self.port_dir = Path(port_dir)
        self.secret = secret
        self.extra_args = list(extra_args or [])
        self.spawn_timeout = float(spawn_timeout)
        self.verbose = verbose
        self.host = "127.0.0.1"
        self.port: int | None = None
        self.process: subprocess.Popen | None = None
        self.incarnation = 0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def spawn(self) -> None:
        """Start the subprocess and wait for it to announce its port."""
        if self.alive:
            return
        self.incarnation += 1
        port_file = self.port_dir / (
            f"worker-{self.worker_id}.{self.incarnation}.port"
        )
        # The child inherits the parent's import path so the stack works
        # from a source checkout without installation; the secret travels
        # via the environment, not argv.
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [path for path in sys.path if path]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        if self.secret:
            env["REPRO_SECRET"] = str(self.secret)
        else:
            env.pop("REPRO_SECRET", None)
        command = [
            sys.executable, "-m", "repro.serving.shard",
            "--port-file", str(port_file),
            "--host", self.host,
        ]
        for name in sorted(self.artifacts):
            command.extend(["--artifact", f"{name}={self.artifacts[name]}"])
        command.extend(self.extra_args)
        self.process = subprocess.Popen(
            command,
            env=env,
            stdout=None if self.verbose else subprocess.DEVNULL,
            stderr=None if self.verbose else subprocess.DEVNULL,
        )
        deadline = time.monotonic() + self.spawn_timeout
        while True:
            if port_file.exists():
                text = port_file.read_text(encoding="utf-8").strip()
                if text:
                    self.port = int(text)
                    port_file.unlink(missing_ok=True)
                    return
            if self.process.poll() is not None:
                raise ShardError(
                    f"shard worker {self.worker_id} exited with code "
                    f"{self.process.returncode} before announcing its port"
                )
            if time.monotonic() > deadline:
                self.process.kill()
                raise ShardError(
                    f"shard worker {self.worker_id} did not announce its "
                    f"port within {self.spawn_timeout:g}s"
                )
            time.sleep(0.02)

    def respawn(self) -> None:
        """Replace a dead (or wedged) process with a fresh incarnation."""
        if self.process is not None and self.process.poll() is None:
            self.process.kill()
            self.process.wait(timeout=10)
        self.spawn()

    def terminate(self, timeout: float = 10.0) -> None:
        if self.process is None:
            return
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                self.process.kill()
                self.process.wait(timeout=5)


# ----------------------------------------------------------------- pool
class ShardPool:
    """Consistent-hash routed pool of shard worker subprocesses.

    Implements the gateway backend protocol, so either HTTP front end can
    sit in front of it (``repro serve --shard-workers N``).

    Parameters
    ----------
    artifacts : dict[str, str]
        ``{model name: artifact bundle path}`` — the full model set; the
        hash ring partitions it across the workers.
    n_workers : int
        Worker subprocess count.  Workers whose ring slice is empty are
        not spawned (they would idle); ``n_workers`` larger than the model
        count therefore costs nothing.
    secret : str, optional
        Shared secret the workers require (forwarded on every hop).
    extra_worker_args : list[str], optional
        Serving knobs passed to every worker verbatim (``--no-fusion``,
        ``--max-wait-ms 5`` ...), mirroring ``repro serve``'s flags.
    request_timeout : float, default 30.0
        Per-hop socket timeout for forwarded requests.
    monitor_interval : float, default 0.25
        Liveness poll period of the respawn monitor; ``None`` disables the
        monitor (dead workers are then only respawned when a request
        trips over them).
    spawn_timeout : float, default 60.0
        How long one worker may take to load artifacts and announce.
    verbose : bool, default False
        Let the workers inherit stdout/stderr instead of discarding it.
    """

    def __init__(
        self,
        artifacts: dict[str, str],
        n_workers: int,
        *,
        secret: str | None = None,
        extra_worker_args: list[str] | None = None,
        request_timeout: float = 30.0,
        monitor_interval: float | None = 0.25,
        spawn_timeout: float = 60.0,
        verbose: bool = False,
    ) -> None:
        if not artifacts:
            raise ValidationError("ShardPool needs at least one artifact")
        self.n_workers = check_positive_int(n_workers, name="n_workers")
        self.secret = secret
        self.request_timeout = float(request_timeout)
        self.ring = HashRing(list(range(self.n_workers)))
        self.assignment: dict[str, int] = {
            name: self.ring.assign(name) for name in artifacts
        }
        self._port_dir = Path(tempfile.mkdtemp(prefix="repro-shard-"))
        self._workers: dict[int, ShardWorkerProcess] = {}
        self._respawn_locks: dict[int, threading.Lock] = {}
        self._local = threading.local()
        self._n_respawns = 0
        self._stats_lock = threading.Lock()
        self._closed = False
        self._monitor_stop = threading.Event()
        self._monitor_thread: threading.Thread | None = None
        try:
            partition = self.ring.partition(list(artifacts))
            for worker_id, names in partition.items():
                if not names:
                    continue
                self._workers[worker_id] = ShardWorkerProcess(
                    worker_id,
                    {name: str(artifacts[name]) for name in names},
                    port_dir=self._port_dir,
                    secret=secret,
                    extra_args=extra_worker_args,
                    spawn_timeout=spawn_timeout,
                    verbose=verbose,
                )
                self._respawn_locks[worker_id] = threading.Lock()
            for worker in self._workers.values():
                worker.spawn()
        except BaseException:
            self.close()
            raise
        if monitor_interval is not None:
            self._monitor_thread = threading.Thread(
                target=self._monitor,
                args=(float(monitor_interval),),
                name="repro-shard-monitor",
                daemon=True,
            )
            self._monitor_thread.start()

    # -------------------------------------------------------------- monitor
    @property
    def n_respawns(self) -> int:
        with self._stats_lock:
            return self._n_respawns

    def _monitor(self, interval: float) -> None:
        while not self._monitor_stop.wait(interval):
            for worker in list(self._workers.values()):
                if self._closed:
                    return
                if not worker.alive:
                    try:
                        self._respawn(worker)
                    except ShardError:
                        # The next tick (or the next request) retries; a
                        # crashing monitor would silently end respawns.
                        pass

    def _respawn(self, worker: ShardWorkerProcess) -> None:
        lock = self._respawn_locks[worker.worker_id]
        with lock:
            if self._closed or worker.alive:
                return
            worker.respawn()
            with self._stats_lock:
                self._n_respawns += 1

    # ----------------------------------------------------------- forwarding
    def _connection(self, worker: ShardWorkerProcess) -> http.client.HTTPConnection:
        """Per-(thread, worker incarnation) keep-alive connection.

        Keyed on the incarnation so a respawned worker (fresh port) never
        sees a socket aimed at its previous life.
        """
        cache = getattr(self._local, "connections", None)
        if cache is None:
            cache = self._local.connections = {}
        key = (worker.worker_id, worker.incarnation)
        connection = cache.get(key)
        if connection is None:
            # Drop connections to older incarnations of this worker.
            for stale in [k for k in cache if k[0] == worker.worker_id]:
                cache.pop(stale).close()
            connection = http.client.HTTPConnection(
                worker.host, worker.port, timeout=self.request_timeout
            )
            cache[key] = connection
        return connection

    def _drop_connection(self, worker: ShardWorkerProcess) -> None:
        cache = getattr(self._local, "connections", None)
        if not cache:
            return
        for key in [k for k in cache if k[0] == worker.worker_id]:
            cache.pop(key).close()

    def _forward(
        self, worker: ShardWorkerProcess, method: str, path: str,
        payload: dict | None = None,
    ) -> tuple[int, dict]:
        """One exchange with a worker, healing a dead one along the way.

        A transport error is ambiguous: the worker may have died, or the
        keep-alive socket may simply have rotted.  Probe liveness, respawn
        if dead, and retry exactly once on a fresh connection; a second
        failure is the caller's problem (mapped to 503 by the front end).
        """
        if self._closed:
            raise ShardError("shard pool is closed")
        attempts = 0
        while True:
            attempts += 1
            connection = self._connection(worker)
            try:
                return request_json(
                    worker.host, worker.port, method, path, payload,
                    timeout=self.request_timeout,
                    connection=connection,
                    secret=self.secret,
                )
            except WireError:
                self._drop_connection(worker)
                if not worker.alive:
                    self._respawn(worker)
                if attempts >= 2:
                    raise

    # ------------------------------------------------------ backend protocol
    @property
    def model_names(self) -> list[str]:
        return sorted(self.assignment)

    def worker_for(self, name: str) -> ShardWorkerProcess:
        worker_id = self.assignment.get(name)
        if worker_id is None:
            raise ServingError(
                f"unknown model {name!r} (serving: {self.model_names})"
            )
        return self._workers[worker_id]

    def encode_request(
        self, name: str, request: dict, budget_ms: float | None
    ) -> dict:
        if "data" not in request:
            raise ValidationError("request must carry a 'data' matrix")
        worker = self.worker_for(name)
        payload = {
            "model": name,
            "data": request["data"],
            "use_cache": bool(request.get("use_cache", True)),
        }
        if budget_ms is not None:
            # Forward only what is left of the budget; the worker's own
            # deadline enforcement then covers its queueing and compute.
            payload["deadline_ms"] = budget_ms
        try:
            status, body = self._forward(worker, "POST", "/encode", payload)
        except WireError as exc:
            raise ShardError(
                f"shard worker {worker.worker_id} is unreachable: {exc}"
            ) from exc
        if status == 200:
            body["worker"] = worker.worker_id
            return body
        message = body.get("error", f"worker answered HTTP {status}")
        if status == 404:
            raise ServingError(message)
        if status == 413:
            raise PayloadTooLargeError(message)
        if status == 400:
            raise ValidationError(message)
        if status == 503:
            # Worker-side overload or spent deadline; either way the client
            # should back off, which is exactly what this maps to (503 +
            # Retry-After at the front end).
            raise DeadlineExceededError(message)
        raise ShardError(
            f"shard worker {worker.worker_id} answered HTTP {status}: {message}"
        )

    def describe_models(self) -> dict:
        models: dict = {}
        for worker in self._workers.values():
            try:
                status, body = self._forward(worker, "GET", "/models")
            except WireError:
                continue  # worker mid-respawn; report what is reachable
            if status == 200:
                models.update(body.get("models", {}))
        return models

    def describe_stats(self) -> dict:
        merged: dict = {}
        workers: dict = {}
        fusion = None
        for worker in self._workers.values():
            entry = {
                "alive": worker.alive,
                "port": worker.port,
                "incarnation": worker.incarnation,
                "models": sorted(worker.artifacts),
            }
            try:
                status, body = self._forward(worker, "GET", "/stats")
            except WireError:
                entry["stats"] = None
            else:
                if status == 200:
                    merged.update(body.get("models", {}))
                    if fusion is None:
                        fusion = body.get("fusion")
                    entry["stats"] = body
                else:
                    entry["stats"] = None
            workers[str(worker.worker_id)] = entry
        return {
            "models": merged,
            "cache": None,  # per-worker caches; see shards.workers[*].stats
            "fusion": fusion,
            "shards": {
                "n_workers": self.n_workers,
                "n_active_workers": len(self._workers),
                "n_respawns": self.n_respawns,
                "assignment": dict(sorted(self.assignment.items())),
                "workers": workers,
            },
        }

    # ------------------------------------------------------------ lifecycle
    def kill_worker(self, name_or_id) -> int:
        """SIGKILL the worker owning a model (fault-injection for tests);
        returns the killed pid."""
        if isinstance(name_or_id, str):
            worker = self.worker_for(name_or_id)
        else:
            worker = self._workers[int(name_or_id)]
        if not worker.alive:
            raise ShardError(f"worker {worker.worker_id} is not alive")
        pid = worker.process.pid
        worker.process.kill()
        worker.process.wait(timeout=10)
        return pid

    def close(self) -> None:
        """Stop the monitor, SIGTERM every worker, SIGKILL stragglers."""
        self._closed = True
        self._monitor_stop.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=10)
            self._monitor_thread = None
        for worker in self._workers.values():
            if worker.alive:
                worker.process.terminate()
        for worker in self._workers.values():
            worker.terminate()
        shutil.rmtree(self._port_dir, ignore_errors=True)

    def __enter__(self) -> "ShardPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(worker_main())
