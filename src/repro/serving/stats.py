"""Per-model request counters exposed by :class:`repro.serving.EncodingService`."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelStats"]


@dataclass
class ModelStats:
    """Latency/throughput counters of one served model.

    Attributes
    ----------
    n_requests : int
        Total ``encode`` calls (including cache hits).
    n_cache_hits : int
        Requests answered from the feature cache.
    n_samples : int
        Total rows encoded (cache hits included; a hit still serves rows).
    n_encoded_samples : int
        Rows that actually went through the model (cache misses only).
    n_batches : int
        Micro-batches executed by the model.
    total_seconds : float
        Wall-clock time spent inside ``encode`` (hits and misses).
    last_latency_seconds : float
        Duration of the most recent request.
    """

    n_requests: int = 0
    n_cache_hits: int = 0
    n_samples: int = 0
    n_encoded_samples: int = 0
    n_batches: int = 0
    total_seconds: float = 0.0
    last_latency_seconds: float = 0.0

    def record(
        self,
        *,
        n_samples: int,
        seconds: float,
        cache_hit: bool,
        n_batches: int = 0,
    ) -> None:
        """Account one ``encode`` request."""
        self.n_requests += 1
        self.n_samples += int(n_samples)
        self.total_seconds += float(seconds)
        self.last_latency_seconds = float(seconds)
        if cache_hit:
            self.n_cache_hits += 1
        else:
            self.n_encoded_samples += int(n_samples)
            self.n_batches += int(n_batches)

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0 when idle)."""
        return self.n_cache_hits / self.n_requests if self.n_requests else 0.0

    @property
    def mean_latency_seconds(self) -> float:
        """Average wall-clock seconds per request (0 when idle)."""
        return self.total_seconds / self.n_requests if self.n_requests else 0.0

    @property
    def throughput_samples_per_second(self) -> float:
        """Rows served per second of encode time (0 when idle)."""
        return self.n_samples / self.total_seconds if self.total_seconds else 0.0

    def as_dict(self) -> dict[str, float | int]:
        """Flat dictionary for reports, logs and the CLI."""
        return {
            "n_requests": self.n_requests,
            "n_cache_hits": self.n_cache_hits,
            "n_samples": self.n_samples,
            "n_encoded_samples": self.n_encoded_samples,
            "n_batches": self.n_batches,
            "total_seconds": self.total_seconds,
            "last_latency_seconds": self.last_latency_seconds,
            "cache_hit_rate": self.cache_hit_rate,
            "mean_latency_seconds": self.mean_latency_seconds,
            "throughput_samples_per_second": self.throughput_samples_per_second,
        }
