"""Per-model request counters exposed by :class:`repro.serving.EncodingService`.

The counters are updated from many threads at once (the HTTP front end runs
one handler thread per connection and the :class:`~repro.serving.fusion.
BatchFuser` flushes from whichever client thread becomes the leader), so
every mutation happens under a per-instance mutex.  Reads through
:meth:`as_dict` take the same mutex and therefore return a consistent
snapshot.

Two timing axes are tracked per request:

* **queue seconds** — time a request spent waiting to be computed (zero for
  direct ``encode`` calls, the coalescing wait for fused requests);
* **compute seconds** — time spent inside the model forward pass.

``total_seconds`` remains the end-to-end wall clock of the request as the
caller experienced it (queue + compute + bookkeeping), so the pre-existing
latency/throughput derived metrics keep their meaning.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["ModelStats", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Overload-protection counters of the HTTP front end (thread-safe).

    Tracks the admission gate (``max_in_flight``): how many requests were
    admitted, how many were shed with 503 because every slot was taken, and
    how many were shed because their client-supplied deadline budget was
    already spent before compute could start.

    Attributes
    ----------
    n_admitted : int
        Requests that passed the gate (including ones that later failed).
    n_shed : int
        Requests answered ``503 Retry-After`` at the gate — capacity shed.
    n_deadline_shed : int
        Admitted requests shed because their ``deadline_ms`` budget expired
        before (or during) queueing — deadline shed.
    in_flight : int
        Requests currently inside the gate.
    peak_in_flight : int
        High-water mark of ``in_flight``.
    """

    n_admitted: int = 0
    n_shed: int = 0
    n_deadline_shed: int = 0
    in_flight: int = 0
    peak_in_flight: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )
    _idle: threading.Condition = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Shares the counter mutex so "in_flight reached zero" can be waited
        # on (shutdown drains) without a second lock to keep consistent.
        self._idle = threading.Condition(self._lock)

    def admitted(self) -> None:
        with self._lock:
            self.n_admitted += 1
            self.in_flight += 1
            if self.in_flight > self.peak_in_flight:
                self.peak_in_flight = self.in_flight

    def released(self) -> None:
        with self._lock:
            self.in_flight -= 1
            if self.in_flight <= 0:
                self._idle.notify_all()

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no request is in flight; returns whether it drained.

        The hook behind graceful shutdown: after the accept loop stops,
        the server waits here for the admitted requests to release their
        slots before tearing down the fuser they are still using.
        """
        with self._idle:
            return self._idle.wait_for(
                lambda: self.in_flight <= 0, timeout=timeout
            )

    def shed(self) -> None:
        with self._lock:
            self.n_shed += 1

    def deadline_shed(self) -> None:
        with self._lock:
            self.n_deadline_shed += 1

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "n_admitted": self.n_admitted,
                "n_shed": self.n_shed,
                "n_deadline_shed": self.n_deadline_shed,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
            }


@dataclass
class ModelStats:
    """Latency/throughput counters of one served model.

    Attributes
    ----------
    n_requests : int
        Total ``encode`` calls (including cache hits).
    n_cache_hits : int
        Requests answered from the feature cache.
    n_samples : int
        Total rows encoded (cache hits included; a hit still serves rows).
    n_encoded_samples : int
        Rows that actually went through the model (cache misses only).
    n_batches : int
        Micro-batches executed by the model.
    n_flushes : int
        Fused flushes executed (each flush runs one stacked forward pass
        over every coalesced request).
    n_fused_requests : int
        Requests that were answered by a fused flush.
    total_seconds : float
        Wall-clock time spent inside ``encode`` (hits and misses).
    total_queue_seconds : float
        Time requests spent queued before compute started.
    total_compute_seconds : float
        Time spent inside the model forward pass.
    last_latency_seconds : float
        Duration of the most recent request.
    """

    n_requests: int = 0
    n_cache_hits: int = 0
    n_samples: int = 0
    n_encoded_samples: int = 0
    n_batches: int = 0
    n_flushes: int = 0
    n_fused_requests: int = 0
    total_seconds: float = 0.0
    total_queue_seconds: float = 0.0
    total_compute_seconds: float = 0.0
    last_latency_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record(
        self,
        *,
        n_samples: int,
        seconds: float,
        cache_hit: bool,
        n_batches: int = 0,
        queue_seconds: float = 0.0,
        compute_seconds: float = 0.0,
    ) -> None:
        """Account one individually-computed ``encode`` request (thread-safe).

        Fused requests are accounted in aggregate by :meth:`record_flush`.
        """
        with self._lock:
            self.n_requests += 1
            self.n_samples += int(n_samples)
            self.total_seconds += float(seconds)
            self.total_queue_seconds += float(queue_seconds)
            self.total_compute_seconds += float(compute_seconds)
            self.last_latency_seconds = float(seconds)
            if cache_hit:
                self.n_cache_hits += 1
            else:
                self.n_encoded_samples += int(n_samples)
                self.n_batches += int(n_batches)

    def record_flush(
        self,
        n_fused: int,
        *,
        n_hits: int = 0,
        n_samples: int = 0,
        n_hit_samples: int = 0,
        n_batches: int = 0,
        total_seconds: float = 0.0,
        queue_seconds: float = 0.0,
        compute_seconds: float = 0.0,
        last_latency_seconds: float = 0.0,
    ) -> None:
        """Account one fused flush and all the requests it answered.

        Equivalent to ``n_fused + n_hits`` individual :meth:`record` calls
        plus one flush, but under a single lock acquisition — the flush path
        answers many requests per call, so per-request locking would put the
        mutex on the serving hot path for no benefit.
        """
        with self._lock:
            self.n_flushes += 1
            self.n_requests += int(n_fused) + int(n_hits)
            self.n_cache_hits += int(n_hits)
            self.n_fused_requests += int(n_fused)
            self.n_samples += int(n_samples)
            self.n_encoded_samples += int(n_samples) - int(n_hit_samples)
            self.n_batches += int(n_batches)
            self.total_seconds += float(total_seconds)
            self.total_queue_seconds += float(queue_seconds)
            self.total_compute_seconds += float(compute_seconds)
            if n_fused or n_hits:
                self.last_latency_seconds = float(last_latency_seconds)

    @staticmethod
    def _ratio(numerator: float, denominator: float) -> float:
        """``numerator / denominator`` with idle (zero) denominators -> 0."""
        return numerator / denominator if denominator else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0 when idle)."""
        return self._ratio(self.n_cache_hits, self.n_requests)

    @property
    def mean_latency_seconds(self) -> float:
        """Average wall-clock seconds per request (0 when idle)."""
        return self._ratio(self.total_seconds, self.n_requests)

    @property
    def mean_queue_seconds(self) -> float:
        """Average seconds a request waited before compute (0 when idle)."""
        return self._ratio(self.total_queue_seconds, self.n_requests)

    @property
    def throughput_samples_per_second(self) -> float:
        """Rows served per second of encode time (0 when idle)."""
        return self._ratio(self.n_samples, self.total_seconds)

    @property
    def fusion_ratio(self) -> float:
        """Average requests answered per fused flush (0 when no flush ran).

        A ratio near the number of concurrent clients means coalescing is
        working; a ratio of 1.0 means every flush served a single request
        and fusion is buying nothing.
        """
        return self._ratio(self.n_fused_requests, self.n_flushes)

    def as_dict(self) -> dict[str, float | int]:
        """Flat consistent snapshot for reports, logs, the CLI and HTTP.

        The raw counters are captured under the lock; the derived metrics
        are then computed from the snapshot with the same ``_ratio`` helper
        the properties use, so the formulas exist exactly once.
        """
        with self._lock:
            snapshot = {
                "n_requests": self.n_requests,
                "n_cache_hits": self.n_cache_hits,
                "n_samples": self.n_samples,
                "n_encoded_samples": self.n_encoded_samples,
                "n_batches": self.n_batches,
                "n_flushes": self.n_flushes,
                "n_fused_requests": self.n_fused_requests,
                "total_seconds": self.total_seconds,
                "total_queue_seconds": self.total_queue_seconds,
                "total_compute_seconds": self.total_compute_seconds,
                "last_latency_seconds": self.last_latency_seconds,
            }
        ratio = self._ratio
        snapshot["cache_hit_rate"] = ratio(
            snapshot["n_cache_hits"], snapshot["n_requests"]
        )
        snapshot["mean_latency_seconds"] = ratio(
            snapshot["total_seconds"], snapshot["n_requests"]
        )
        snapshot["mean_queue_seconds"] = ratio(
            snapshot["total_queue_seconds"], snapshot["n_requests"]
        )
        snapshot["throughput_samples_per_second"] = ratio(
            snapshot["n_samples"], snapshot["total_seconds"]
        )
        snapshot["fusion_ratio"] = ratio(
            snapshot["n_fused_requests"], snapshot["n_flushes"]
        )
        return snapshot
