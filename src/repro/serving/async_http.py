"""Asyncio front end for the serving stack: ``repro serve --async``.

The threaded front end (:mod:`repro.serving.http`) spends one OS thread per
connection, which caps it at a few hundred mostly-idle keep-alive clients
before thread overhead dominates.  :class:`AsyncEncodingServer` accepts the
same JSON/HTTP dialect on a single selector event loop instead: hundreds of
concurrent connections cost one loop thread plus a bounded
:class:`~concurrent.futures.ThreadPoolExecutor` that runs the CPU-bound
encode work (numpy releases the GIL inside BLAS, so executor threads
overlap; the fixed pool also concentrates concurrent requests into the
:class:`~repro.serving.fusion.BatchFuser`'s coalescing window).

Semantics are shared, not re-implemented: both front ends drive the same
:class:`~repro.serving.http.ServingGateway` (admission control, deadline
budgets, dispatch, ``/models``/``/stats``) and the same
:func:`~repro.serving.http.map_encode_exception` error table, and parse
bodies with the same :func:`~repro.serving.wire.validate_content_length` /
:func:`~repro.serving.wire.decode_json_object` helpers — an ``/encode``
response is byte-identical to the threaded server's for the same request.

Lifecycle mirrors the stdlib servers so the CLI and tests treat both
uniformly: :meth:`start` binds and begins accepting (port 0 → ephemeral,
``server_address``/``server_port`` hold the bound one),``serve_forever``
blocks the calling thread, :meth:`shutdown` performs the graceful sequence
*stop accepting → drain in-flight encodes → sever idle connections → close
the backend*, and :meth:`server_close` releases the loop and executor.

The event loop runs on a dedicated background thread; every public method
is called from ordinary (non-loop) threads and marshals work in with
``run_coroutine_threadsafe``.
"""

from __future__ import annotations

import asyncio
import hmac
import json
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus

from repro.exceptions import ValidationError
from repro.serving.fusion import BatchFuser
from repro.serving.http import LocalEncodeBackend, ServingGateway, map_encode_exception
from repro.serving.service import EncodingService
from repro.serving.wire import (
    MAX_BODY_BYTES,
    SECRET_HEADER,
    PayloadTooLargeError,
    decode_json_object,
    validate_content_length,
)
from repro.utils.validation import check_positive_int

__all__ = ["AsyncEncodingServer", "build_async_server"]

#: Cap on one request head line / header line (stdlib servers use 64 KiB).
_HEAD_LIMIT = 64 * 1024


class AsyncEncodingServer:
    """Selector-loop HTTP server sharing the threaded front end's gateway.

    Parameters
    ----------
    address : (host, port)
        Bind address; port 0 picks an ephemeral port.
    service : EncodingService, optional
        Registry answering the requests (``None`` only with ``gateway``).
    fuser : BatchFuser, optional
        Fusion queue for ``/encode`` (same semantics as the threaded
        server).
    gateway : ServingGateway, optional
        Pre-built gateway (e.g. over a shard pool); mutually exclusive
        with ``service``/``fuser``/``max_in_flight``/``retry_after``.
    max_in_flight, retry_after, secret, verbose
        As on :class:`~repro.serving.http.EncodingHTTPServer`.
    executor_threads : int, default 32
        Worker threads running the encode dispatch.  More threads let more
        concurrent requests reach the fuser's coalescing window at once;
        the loop thread itself never computes.
    """

    def __init__(
        self,
        address: tuple[str, int],
        service: EncodingService | None = None,
        *,
        fuser: BatchFuser | None = None,
        gateway: ServingGateway | None = None,
        max_in_flight: int | None = None,
        retry_after: float = 1.0,
        secret: str | None = None,
        verbose: bool = False,
        executor_threads: int = 32,
    ) -> None:
        if gateway is None:
            if service is None:
                raise ValidationError("either service or gateway is required")
            gateway = ServingGateway(
                LocalEncodeBackend(service, fuser),
                max_in_flight=max_in_flight,
                retry_after=retry_after,
            )
        elif service is not None or fuser is not None:
            raise ValidationError("pass either a gateway or a service, not both")
        self.gateway = gateway
        self.service = service
        self.fuser = fuser
        self.verbose = verbose
        self.auth_secret = str(secret) if secret else None
        self.executor_threads = check_positive_int(
            executor_threads, name="executor_threads"
        )
        self._bind_address = address
        self.server_address: tuple[str, int] = address
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._server: asyncio.base_events.Server | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._lifecycle_lock = threading.Lock()
        self._started = False
        self._shut_down = False
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    @property
    def server_port(self) -> int:
        return self.server_address[1]

    def start(self) -> None:
        """Bind the listener and start accepting (returns once listening)."""
        with self._lifecycle_lock:
            if self._started:
                raise RuntimeError("server is already started")
            self._started = True
        self._executor = ThreadPoolExecutor(
            max_workers=self.executor_threads, thread_name_prefix="repro-encode"
        )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-serve-async", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self._bind(), self._loop)
        try:
            self.server_address = future.result(timeout=30.0)
        except BaseException:
            self.shutdown()
            self.server_close()
            raise

    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_forever()
        finally:
            # Cancelled tasks need one last spin to run their cleanup.
            pending = asyncio.all_tasks(self._loop)
            for task in pending:
                task.cancel()
            if pending:
                self._loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )

    async def _bind(self) -> tuple[str, int]:
        host, port = self._bind_address
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=_HEAD_LIMIT
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    def serve_forever(self) -> None:
        """Block the calling thread until :meth:`shutdown` (Ctrl-C safe)."""
        if self._thread is None:
            raise RuntimeError("start() the server before serve_forever()")
        # Bounded joins so KeyboardInterrupt/SIGTERM reach the caller
        # promptly on every platform.
        while self._thread.is_alive():
            self._thread.join(timeout=0.2)

    def shutdown(self, *, drain_timeout: float = 10.0) -> None:
        """Graceful stop: stop accepting, drain in-flight, close the backend.

        Same ordering contract as the threaded server — see
        :meth:`repro.serving.http.EncodingHTTPServer.shutdown`.  Idempotent;
        must not be called from the loop thread.
        """
        with self._lifecycle_lock:
            if self._shut_down or not self._started:
                self._shut_down = True
                return
            self._shut_down = True
        loop = self._loop
        if loop is not None and loop.is_running():
            # 1. Stop accepting new connections.
            asyncio.run_coroutine_threadsafe(self._stop_accepting(), loop).result(
                timeout=30.0
            )
        # 2. Wait for admitted /encode requests to write their responses
        #    and release their slots (the loop is still running for them).
        self.gateway.drain(timeout=drain_timeout)
        if loop is not None and loop.is_running():
            # 3. Sever whatever connections remain (idle keep-alives, and
            #    any request that outlived the drain timeout).
            asyncio.run_coroutine_threadsafe(self._close_connections(), loop).result(
                timeout=30.0
            )
        # 4. Only now is the backend torn down — nothing is using it.
        self.gateway.close()
        if loop is not None:
            loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    async def _stop_accepting(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _close_connections(self) -> None:
        tasks = list(self._conn_tasks)
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    def server_close(self) -> None:
        """Release the loop and executor (call after :meth:`shutdown`)."""
        with self._lifecycle_lock:
            if self._closed:
                return
            self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        if self._loop is not None and not self._loop.is_running():
            self._loop.close()

    def __enter__(self) -> "AsyncEncodingServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()
        self.server_close()

    # ---------------------------------------------------------- connections
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    keep_alive = await self._handle_one_request(reader, writer)
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                    ValueError,  # readline past the head limit
                ):
                    break
                if not keep_alive:
                    break
        except asyncio.CancelledError:
            pass  # server shutdown severing the connection
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _handle_one_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; returns whether to keep the connection."""
        request_line = await reader.readline()
        if not request_line or request_line in (b"\r\n", b"\n"):
            return False
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            await self._respond(
                writer, 400, {"error": "malformed request line"}, close=True
            )
            return False
        method, path, version = parts
        headers = await self._read_headers(reader)
        if headers is None:
            await self._respond(
                writer, 400, {"error": "malformed request headers"}, close=True
            )
            return False
        keep_alive = self._keep_alive(version, headers)
        self._log(method, path)

        if method == "GET":
            handled_keep_alive = await self._handle_get(
                writer, path, headers, keep_alive
            )
        elif method == "POST":
            handled_keep_alive = await self._handle_post(
                reader, writer, path, headers, keep_alive
            )
        else:
            await self._respond(
                writer,
                501,
                {"error": f"unsupported method {method!r}"},
                close=True,
            )
            handled_keep_alive = False
        return handled_keep_alive

    async def _read_headers(self, reader: asyncio.StreamReader) -> dict | None:
        headers: dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                return headers
            if not line.endswith(b"\n"):
                return None  # EOF mid-headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()

    @staticmethod
    def _keep_alive(version: str, headers: dict) -> bool:
        connection = headers.get("connection", "").lower()
        if version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"

    # --------------------------------------------------------------- routes
    async def _handle_get(
        self, writer, path: str, headers: dict, keep_alive: bool
    ) -> bool:
        if path == "/healthz":
            # Liveness stays open: probes should not need the secret.
            await self._respond(
                writer,
                200,
                {"status": "ok", "models": self.gateway.model_names},
                close=not keep_alive,
            )
            return keep_alive
        if not self._authorized(headers):
            await self._send_unauthorized(writer)
            return False
        if path == "/models":
            payload = {"models": self.gateway.describe_models()}
            status = 200
        elif path == "/stats":
            payload = self.gateway.describe_stats()
            status = 200
        else:
            payload = {"error": f"unknown route {path!r}"}
            status = 404
        await self._respond(writer, status, payload, close=not keep_alive)
        return keep_alive

    async def _handle_post(
        self, reader, writer, path: str, headers: dict, keep_alive: bool
    ) -> bool:
        arrival = time.monotonic()
        if not self._authorized(headers):
            await self._send_unauthorized(writer)
            return False
        try:
            length = validate_content_length(
                headers.get("content-length"), MAX_BODY_BYTES
            )
        except PayloadTooLargeError as exc:
            # The unread body would desync the connection; sever it.
            await self._respond(writer, 413, {"error": str(exc)}, close=True)
            return False
        except ValidationError as exc:
            await self._respond(writer, 400, {"error": str(exc)}, close=True)
            return False
        if path != "/encode":
            await self._discard(reader, length)
            await self._respond(
                writer,
                404,
                {"error": f"unknown route {path!r}"},
                close=not keep_alive,
            )
            return keep_alive
        if not self.gateway.try_admit():
            # Shed before reading the body: an overloaded server should do
            # the least possible work per rejected request.
            await self._discard(reader, length)
            await self._respond(
                writer,
                503,
                {"error": "server is at capacity (max_in_flight reached)"},
                headers={"Retry-After": self.gateway.retry_after_header},
                close=not keep_alive,
            )
            return keep_alive
        try:
            raw = await reader.readexactly(length) if length else b""
            status, body, extra = await asyncio.get_running_loop().run_in_executor(
                self._executor, self._encode_job, raw, arrival
            )
            await self._respond_raw(
                writer, status, body, headers=extra, close=not keep_alive
            )
        finally:
            self.gateway.release_request()
        return keep_alive

    def _encode_job(self, raw: bytes, arrival: float) -> tuple[int, bytes, dict]:
        """Decode + dispatch + encode the response, all off the loop thread.

        JSON work for ``/encode`` is bulk (feature matrices), so it must
        not run on the selector loop — one big ``json.dumps`` there would
        stall every other connection.
        """
        try:
            request = decode_json_object(raw)
            payload = self.gateway.handle_encode(request, arrival=arrival)
            status, extra = 200, {}
        except Exception as exc:  # noqa: BLE001 - mapped to a status
            status, payload, extra = map_encode_exception(exc, self.gateway)
        return status, json.dumps(payload).encode("utf-8"), extra

    # -------------------------------------------------------------- helpers
    def _authorized(self, headers: dict) -> bool:
        if not self.auth_secret:
            return True
        provided = headers.get(SECRET_HEADER.lower()) or ""
        return hmac.compare_digest(
            provided.encode("utf-8"), self.auth_secret.encode("utf-8")
        )

    async def _send_unauthorized(self, writer) -> None:
        await self._respond(
            writer,
            401,
            {"error": f"missing or invalid {SECRET_HEADER} shared secret"},
            close=True,
        )

    @staticmethod
    async def _discard(reader: asyncio.StreamReader, length: int) -> None:
        """Consume an unread body so the keep-alive stream stays in sync."""
        if length > 0:
            await reader.readexactly(length)

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        headers: dict | None = None,
        close: bool = False,
    ) -> None:
        await self._respond_raw(
            writer,
            status,
            json.dumps(payload).encode("utf-8"),
            headers=headers,
            close=close,
        )

    async def _respond_raw(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        headers: dict | None = None,
        close: bool = False,
    ) -> None:
        reason = HTTPStatus(status).phrase
        head = [
            f"HTTP/1.1 {status} {reason}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        if close:
            head.append("Connection: close")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()

    def _log(self, method: str, path: str) -> None:
        if self.verbose:
            print(f"repro-serve-async: {method} {path}", file=sys.stderr)


def build_async_server(
    service: EncodingService | None = None,
    *,
    fuser: BatchFuser | None = None,
    gateway: ServingGateway | None = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_in_flight: int | None = None,
    retry_after: float = 1.0,
    secret: str | None = None,
    verbose: bool = False,
    executor_threads: int = 32,
) -> AsyncEncodingServer:
    """Construct (without starting) an :class:`AsyncEncodingServer`."""
    return AsyncEncodingServer(
        (host, port),
        service,
        fuser=fuser,
        gateway=gateway,
        max_in_flight=max_in_flight,
        retry_after=retry_after,
        secret=secret,
        verbose=verbose,
        executor_threads=executor_threads,
    )
