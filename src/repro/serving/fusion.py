"""Concurrent batch fusion: coalesce encode requests into one matmul.

Production encode tiers see many small concurrent requests.  Answering each
one with its own forward pass pays the fixed numpy/BLAS call overhead per
request and serialises on the per-model compute lock anyway (the scratch
buffer is shared), so the hardware runs far below its matmul throughput.
:class:`BatchFuser` closes that gap: requests arriving from many threads are
parked in a bounded per-model queue (a *lane*), and whichever event fires
first — the accumulated rows reaching ``max_batch_rows`` or the oldest
request's ``max_wait_ms`` expiring — elects the triggering thread as the
*leader*, which drains the lane and answers every parked request with one
stacked forward pass through :meth:`EncodingService.encode_many`.

Correctness properties:

* **bit-equivalence** — preprocessing runs per request (it may be
  data-dependent), only the row-independent matmul+bias+sigmoid chain is
  fused, so every caller receives exactly the bytes a direct
  ``service.encode`` call would have produced.  One caveat: BLAS uses a
  different kernel (GEMV) for single-row matmuls, so a *1-row* request
  computed inside a fused GEMM can differ from its unfused result in the
  last bits (still allclose at ~1e-16); requests of >= 2 rows are
  bit-identical;
* **exactly-once scatter** — each request owns a disjoint row span of the
  fused output and is completed exactly once, by whichever thread flushed
  its lane;
* **error isolation** — if a fused flush fails (e.g. one request has the
  wrong feature width), the leader retries every request of that flush
  individually, so one bad request cannot fail its batch-mates;
* **no deadlocks on timeout** — a waiter whose deadline expires flushes the
  lane itself; if another thread already claimed its request, the result is
  guaranteed to arrive, so the waiter falls back to an unbounded wait.

Determinism for tests: the scheduler itself never sleeps and never spawns
threads — all compute happens on caller threads.  The low-level
:meth:`submit`/:meth:`flush` API drives every coalescing rule synchronously
with an injectable clock, so the unit tests need neither real time nor real
concurrency.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.exceptions import ServingError, ValidationError
from repro.serving.service import EncodingService
from repro.utils.validation import check_positive_int

__all__ = ["BatchFuser", "FuserClosedError", "FusionTicket"]


class FuserClosedError(ServingError):
    """A request was submitted to a :class:`BatchFuser` after ``close()``.

    Raised instead of silently parking the request in a lane nobody will
    flush again; the HTTP front ends map it to 503 + ``Retry-After`` (the
    server is shutting down — a replica behind a load balancer should
    receive no further traffic)."""

_FLOAT64 = np.dtype(np.float64)


class FusionTicket:
    """Handle to one submitted request; resolved when its lane flushes.

    Every ticket of one flush resolves atomically, so tickets share their
    flush group's single :class:`threading.Event` instead of carrying one
    each — one allocation and one ``set()`` per flush rather than per
    request, which keeps the fusion fast path off the futex.
    """

    __slots__ = ("data", "n_rows", "enqueued_at", "_event", "_result", "_error")

    def __init__(
        self, data: np.ndarray, enqueued_at: float, event: threading.Event
    ) -> None:
        self.data = data
        self.n_rows = int(data.shape[0])
        self.enqueued_at = enqueued_at
        self._event = event
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        """Whether the request has been answered (result or error)."""
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the ticket resolves; returns ``done``."""
        return self._event.wait(timeout)

    def result(self) -> np.ndarray:
        """The encoded features (raises the request's error if it failed)."""
        if not self._event.is_set():
            raise RuntimeError(
                "ticket is not resolved yet; wait() for it or flush its lane"
            )
        if self._error is not None:
            raise self._error
        return self._result


class _Lane:
    """Pending requests of one model, guarded by a per-lane mutex.

    ``event`` belongs to the *current* flush group: every ticket submitted
    before the next flush shares it, and the flush swaps in a fresh one
    while holding the lane lock.
    """

    __slots__ = ("lock", "tickets", "n_rows", "event")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.tickets: list[FusionTicket] = []
        self.n_rows = 0
        self.event = threading.Event()


class BatchFuser:
    """Coalesce concurrent ``encode`` calls into fused forward passes.

    Parameters
    ----------
    service : EncodingService
        The service whose registered models answer the requests.
    max_batch_rows : int, default 4096
        Row bound of a lane: a submission that brings the pending rows to
        this bound (or past it) flushes the lane immediately.  One request
        larger than the bound is still served — it simply flushes alone.
    max_wait_ms : float, default 2.0
        Upper bound on the coalescing delay: a blocked ``encode`` call whose
        wait exceeds this flushes whatever its lane holds.  ``0`` disables
        coalescing-by-time — every submission flushes at once (useful as a
        kill switch: correctness is identical, only the fusion ratio drops).
    use_cache : bool, default True
        Forwarded to :meth:`EncodingService.encode_many`.
    clock : callable, optional
        Monotonic time source for queue-wait accounting; defaults to the
        service's clock so injected fake clocks cover fusion stats too.

    Examples
    --------
    >>> fuser = BatchFuser(service, max_batch_rows=512, max_wait_ms=2.0)  # doctest: +SKIP
    >>> features = fuser.encode("ir", X)   # from any number of threads  # doctest: +SKIP
    """

    def __init__(
        self,
        service: EncodingService,
        *,
        max_batch_rows: int = 4096,
        max_wait_ms: float = 2.0,
        use_cache: bool = True,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if not isinstance(service, EncodingService):
            raise ValidationError(
                f"service must be an EncodingService, got {type(service).__name__}"
            )
        self.service = service
        self.max_batch_rows = check_positive_int(max_batch_rows, name="max_batch_rows")
        if max_wait_ms < 0:
            raise ValidationError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_wait_ms = float(max_wait_ms)
        self.use_cache = bool(use_cache)
        self._clock = clock if clock is not None else service._clock
        self._lanes: dict[str, _Lane] = {}
        self._closed = False

    # ----------------------------------------------------------------- lanes
    def _lane(self, name: str) -> _Lane:
        # dict.get/setdefault are atomic under the GIL; setdefault returns
        # the winner if two threads race to create the same lane.
        lane = self._lanes.get(name)
        if lane is None:
            lane = self._lanes.setdefault(name, _Lane())
        return lane

    def pending(self, name: str) -> tuple[int, int]:
        """``(n_requests, n_rows)`` currently parked in ``name``'s lane."""
        lane = self._lane(name)
        with lane.lock:
            return len(lane.tickets), lane.n_rows

    # ------------------------------------------------------------ scheduling
    def submit(self, name: str, data) -> FusionTicket:
        """Park one request in its model's lane (non-blocking).

        The model name and the input's shape are validated immediately — a
        malformed request fails its caller at submit time, before it can
        join a batch; the feature width is included whenever it is checkable
        without preprocessing (models whose preprocessing may change the
        width defer that check to the flush).  The elementwise finiteness
        scan is deferred to one reduction over the *stacked* flush matrix
        (cheaper than N small scans).  A request that only fails at flush
        time is isolated by the per-request fallback: it raises the standard
        validation error from ``result()`` while its batch-mates succeed —
        but that fallback demotes its whole flush to serial encodes, so
        failing early here protects the fusion ratio from misbehaving
        clients.  If the submission fills the lane to ``max_batch_rows`` (or
        ``max_wait_ms`` is 0), the submitting thread becomes the leader and
        flushes inline, so the returned ticket may already be resolved.
        """
        if self._closed:
            raise FuserClosedError(
                "fuser is closed (the server is shutting down); "
                "no further requests are accepted"
            )
        runtime = self.service._models.get(name)
        if runtime is None:
            # Atomic lookup: raises ServingError for unknown names and
            # covers a register() racing this submit.
            runtime = self.service._entry(name)[0]
        if not (isinstance(data, np.ndarray) and data.dtype == _FLOAT64):
            data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValidationError(
                f"data must be a 2-D array, got shape {data.shape}"
            )
        if data.size == 0:
            raise ValidationError("data must not be empty")
        if (
            runtime.has_fast_path
            and runtime.preprocess is None
            and data.shape[1] != runtime.weights.shape[0]
        ):
            raise ValidationError(
                f"data has {data.shape[1]} features but the model "
                f"expects {runtime.weights.shape[0]}"
            )
        enqueued_at = self._clock()
        lane = self._lane(name)
        drained: list[FusionTicket] | None = None
        with lane.lock:
            ticket = FusionTicket(data, enqueued_at, lane.event)
            lane.tickets.append(ticket)
            lane.n_rows += ticket.n_rows
            if lane.n_rows >= self.max_batch_rows or self.max_wait_ms == 0.0:
                # Drain inline under the lock we already hold (one lock
                # round-trip per flush instead of two) and compute outside.
                drained = lane.tickets
                group_event = lane.event
                lane.tickets = []
                lane.n_rows = 0
                lane.event = threading.Event()
        if drained is not None:
            self._run_flush(name, drained, group_event)
        return ticket

    def flush(self, name: str | None = None) -> int:
        """Flush one lane (or every lane); returns the requests answered."""
        if name is not None:
            return self._flush_lane(name, self._lane(name))
        return sum(
            self._flush_lane(lane_name, self._lane(lane_name))
            for lane_name in list(self._lanes)
        )

    def _flush_lane(self, name: str, lane: _Lane) -> int:
        with lane.lock:
            tickets = lane.tickets
            if not tickets:
                return 0
            group_event = lane.event
            lane.tickets = []
            lane.n_rows = 0
            lane.event = threading.Event()
        return self._run_flush(name, tickets, group_event)

    def _run_flush(
        self,
        name: str,
        tickets: list[FusionTicket],
        group_event: threading.Event,
    ) -> int:
        now = self._clock()
        queue_seconds = [now - ticket.enqueued_at for ticket in tickets]
        try:
            results = self.service.encode_many(
                name,
                [ticket.data for ticket in tickets],
                use_cache=self.use_cache,
                queue_seconds=queue_seconds,
                # submit() checked shape; finiteness is checked on the
                # stacked matrix (or fully, for non-fast-path models).
                validate=False,
            )
        except Exception:
            # One request can poison a whole fused pass — wrong feature
            # width, a preprocessing failure, or any exception out of a
            # third-party estimator's transform (not only ReproErrors, so a
            # numpy shape error cannot fail innocent batch-mates; only
            # BaseExceptions like KeyboardInterrupt fall through to the
            # fail-all branch below).  Isolate: answer each
            # request of this flush individually so only the offender fails.
            # Retried via single-request encode_many so the queue wait stays
            # accounted.  Known accounting skew on this error path only: the
            # failed pass already bumped the cache lookup counters (counted
            # twice), and each retry books itself as a flush of one, which
            # drags fusion_ratio down — accurate in the sense that these
            # requests were ultimately served unfused.
            for ticket, waited in zip(tickets, queue_seconds):
                try:
                    ticket._result = self.service.encode_many(
                        name,
                        [ticket.data],
                        use_cache=self.use_cache,
                        queue_seconds=[waited],
                    )[0]
                except BaseException as exc:  # noqa: BLE001 - stored, re-raised in caller
                    ticket._error = exc
            group_event.set()
            return len(tickets)
        except BaseException as exc:
            for ticket in tickets:
                ticket._error = exc
            group_event.set()
            raise
        for ticket, result in zip(tickets, results):
            ticket._result = result
        group_event.set()
        return len(tickets)

    # --------------------------------------------------------------- serving
    def wait_for(
        self,
        name: str,
        ticket: FusionTicket,
        *,
        max_wait_ms: float | None = None,
    ) -> np.ndarray:
        """Block until ``ticket`` resolves, enforcing the coalescing deadline.

        Waits up to ``max_wait_ms`` of real time for another thread to fill
        and flush the lane; on expiry the calling thread leads the flush
        itself, so waiting can never hang on a lane nobody else will fill.
        Pipelined clients that hold several outstanding tickets must reap
        them through this method (or ``flush`` explicitly) — a bare
        ``ticket.wait()`` enforces no deadline.

        ``max_wait_ms`` (when given) caps this call's coalescing wait below
        the fuser-wide default — the hook that lets a request with a nearly
        spent deadline budget skip the coalescing window instead of blowing
        its deadline waiting for batch-mates.  It can only shorten the wait,
        never extend it.
        """
        if not ticket._event.is_set():
            # time.monotonic, not the injected clock: deadlines interact
            # with Event.wait, which always measures real time.
            remaining = self.max_wait_ms / 1000.0
            if max_wait_ms is not None:
                remaining = min(remaining, max(0.0, float(max_wait_ms)) / 1000.0)
            if remaining <= 0.0 or not ticket.wait(remaining):
                if not ticket.done:
                    # Deadline expired: lead the flush ourselves — but only
                    # if our ticket is still parked.  If another thread
                    # already drained it (its flush is mid-compute), the lane
                    # now holds only fresh tickets whose own coalescing
                    # window should not be cut short; our completion is
                    # guaranteed, so the unbounded wait cannot hang.
                    lane = self._lane(name)
                    with lane.lock:
                        still_parked = lane.event is ticket._event
                    if still_parked:
                        self._flush_lane(name, lane)
                    ticket.wait()
        return ticket.result()

    def encode(
        self, name: str, data, *, max_wait_ms: float | None = None
    ) -> np.ndarray:
        """Blocking encode through the fusion queue (thread-safe).

        Semantically identical to ``service.encode(name, data)`` — same
        bytes, same errors — but concurrent callers of the same model are
        answered by shared fused passes.  Adds at most ``max_wait_ms`` of
        coalescing latency (the per-call override can only lower the
        fuser-wide bound).
        """
        return self.wait_for(name, self.submit(name, data), max_wait_ms=max_wait_ms)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (submissions are refused)."""
        return self._closed

    def close(self) -> None:
        """Refuse further submissions, then flush every lane (idempotent).

        Must run *after* the front end has stopped accepting requests and
        drained the in-flight ones — closing first would answer them with
        :class:`FuserClosedError` 503s.  The flag is set before the final
        flush so a submission racing ``close()`` either joins that flush
        or fails loudly; it can never park in a lane nobody will drain
        (its own ``wait_for`` deadline would still flush the lane, but a
        bare ``ticket.wait()`` would hang forever).
        """
        self._closed = True
        self.flush()

    def __enter__(self) -> "BatchFuser":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BatchFuser(max_batch_rows={self.max_batch_rows}, "
            f"max_wait_ms={self.max_wait_ms}, models={self.service.model_names})"
        )
