"""The :class:`EncodingService`: a named-model registry answering encode calls.

The service is the runtime half of the train/serve split: frameworks trained
elsewhere (and persisted with :func:`repro.persistence.save_framework`) are
loaded once, then serve repeated ``encode`` requests.  Three serving concerns
live here rather than in the models:

* **micro-batching** — large inputs are preprocessed once and pushed through
  the model in bounded chunks, keeping peak activation memory flat;
* **feature caching** — results are memoised in an LRU cache keyed on a
  content digest of the input, so repeated encodes of the same matrix (the
  common clustering-evaluation pattern) are free;
* **observability** — per-model latency/throughput counters.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.core.framework import SelfLearningEncodingFramework
from repro.exceptions import ServingError, ValidationError
from repro.persistence import load_framework
from repro.serving.cache import LRUFeatureCache, input_digest
from repro.serving.stats import ModelStats
from repro.utils.validation import check_array, check_positive_int

__all__ = ["EncodingService"]


class EncodingService:
    """Serve encode requests for a registry of named, fitted frameworks.

    Parameters
    ----------
    max_batch_size : int, default 4096
        Upper bound on the rows pushed through a model in one step; larger
        inputs are split into micro-batches after preprocessing (splitting
        *before* preprocessing would change data-dependent transforms such as
        standardisation).
    cache_entries : int, default 64
        Capacity of the LRU feature cache (0 disables caching).
    clock : callable, default :func:`time.perf_counter`
        Monotonic time source; injectable for deterministic tests.

    Examples
    --------
    >>> service = EncodingService()
    >>> service.register("ir", fitted_framework)      # doctest: +SKIP
    >>> features = service.encode("ir", X)            # doctest: +SKIP
    >>> service.stats("ir")["n_requests"]             # doctest: +SKIP
    1
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 4096,
        cache_entries: int = 64,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.max_batch_size = check_positive_int(max_batch_size, name="max_batch_size")
        if cache_entries < 0:
            raise ValidationError(
                f"cache_entries must be non-negative, got {cache_entries}"
            )
        self._cache = LRUFeatureCache(cache_entries) if cache_entries else None
        self._clock = clock
        self._models: dict[str, SelfLearningEncodingFramework] = {}
        self._stats: dict[str, ModelStats] = {}

    # ---------------------------------------------------------------- registry
    def register(
        self, name: str, framework: SelfLearningEncodingFramework
    ) -> "EncodingService":
        """Add a fitted framework to the registry under ``name``.

        Re-registering an existing name replaces the model and resets its
        counters (cached features of the old model are invalidated).
        """
        if not isinstance(framework, SelfLearningEncodingFramework):
            raise ValidationError(
                "framework must be a SelfLearningEncodingFramework, got "
                f"{type(framework).__name__}"
            )
        if not framework.is_fitted:
            raise ServingError(
                f"cannot register {name!r}: the framework is not fitted "
                "(train it or load a persisted artifact)"
            )
        name = str(name)
        if not name:
            raise ValidationError("model name must be a non-empty string")
        self._models[name] = framework
        self._stats[name] = ModelStats()
        self._evict_cached(name)
        return self

    def load(self, name: str, path: str | Path) -> SelfLearningEncodingFramework:
        """Load an artifact bundle from ``path`` and register it as ``name``."""
        framework = load_framework(path)
        self.register(name, framework)
        return framework

    def unregister(self, name: str) -> None:
        """Remove a model (and its cached features and counters)."""
        self.get(name)  # raises ServingError for unknown names
        del self._models[name]
        del self._stats[name]
        self._evict_cached(name)

    def get(self, name: str) -> SelfLearningEncodingFramework:
        """The registered framework for ``name``."""
        try:
            return self._models[name]
        except KeyError:
            raise ServingError(
                f"no model registered under {name!r}; "
                f"available: {sorted(self._models)}"
            ) from None

    @property
    def model_names(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    # ---------------------------------------------------------------- serving
    def encode(self, name: str, data, *, use_cache: bool = True) -> np.ndarray:
        """Hidden features of ``data`` under the model registered as ``name``.

        The result is identical to ``framework.transform(data)``; large
        inputs are micro-batched after preprocessing.  Cached results are
        returned as read-only arrays — copy before mutating.
        """
        framework = self.get(name)
        data = check_array(data, name="data")
        stats = self._stats[name]
        start = self._clock()

        key = None
        if use_cache and self._cache is not None:
            key = (name, input_digest(data))
            cached = self._cache.get(key)
            if cached is not None:
                stats.record(
                    n_samples=data.shape[0],
                    seconds=self._clock() - start,
                    cache_hit=True,
                )
                return cached

        preprocessed = framework.preprocess(data)
        parts = [
            framework.model_.transform(chunk)
            for chunk in self._iter_batches(preprocessed)
        ]
        features = parts[0] if len(parts) == 1 else np.vstack(parts)

        if key is not None:
            self._cache.put(key, features)
        stats.record(
            n_samples=data.shape[0],
            seconds=self._clock() - start,
            cache_hit=False,
            n_batches=len(parts),
        )
        return features

    def warm(self, name: str, data) -> None:
        """Populate the cache for ``data`` without returning the features."""
        self.encode(name, data)

    def _iter_batches(self, data: np.ndarray) -> Iterator[np.ndarray]:
        for start in range(0, data.shape[0], self.max_batch_size):
            yield data[start : start + self.max_batch_size]

    # ------------------------------------------------------------ observability
    def stats(self, name: str | None = None) -> dict:
        """Counters for one model, or for all models keyed by name."""
        if name is not None:
            self.get(name)
            return self._stats[name].as_dict()
        return {model: stats.as_dict() for model, stats in self._stats.items()}

    @property
    def cache_info(self) -> dict[str, int]:
        """Global cache occupancy and hit/miss counters."""
        if self._cache is None:
            return {"entries": 0, "max_entries": 0, "hits": 0, "misses": 0}
        return {
            "entries": len(self._cache),
            "max_entries": self._cache.max_entries,
            "hits": self._cache.hits,
            "misses": self._cache.misses,
        }

    def _evict_cached(self, name: str) -> None:
        if self._cache is not None:
            self._cache.evict(lambda key: key[0] == name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodingService(models={self.model_names}, "
            f"max_batch_size={self.max_batch_size})"
        )
