"""The :class:`EncodingService`: a named-model registry answering encode calls.

The service is the runtime half of the train/serve split: encoders trained
elsewhere (and persisted with :func:`repro.persistence.save_framework`) are
loaded once, then serve repeated ``encode`` requests.  Any fitted estimator
implementing the shared protocol with a ``transform`` method can be
registered — the encoding framework, a bare RBM variant or an encoder
:class:`~repro.core.pipeline.Pipeline`.  Three serving concerns live here
rather than in the models:

* **micro-batching** — large inputs are preprocessed once and pushed through
  the model in bounded chunks, keeping peak activation memory flat;
* **scratch-buffer reuse** — the framework fast path keeps one
  pre-activation buffer per registered model and runs the matmul + bias +
  ``sigmoid(x, out=)`` chain in place, so steady-state serving allocates
  only the output matrix instead of two activation-sized temporaries per
  micro-batch;
* **feature caching** — results are memoised in an LRU cache keyed on a
  content digest of the input, so repeated encodes of the same matrix (the
  common clustering-evaluation pattern) are free;
* **observability** — per-model latency/throughput counters.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Callable, Iterator

import numpy as np

from repro.core.framework import SelfLearningEncodingFramework
from repro.exceptions import ServingError, ValidationError
from repro.persistence import load_framework
from repro.serving.cache import LRUFeatureCache, input_digest
from repro.serving.stats import ModelStats
from repro.utils.numerics import sigmoid
from repro.utils.validation import check_array, check_positive_int

__all__ = ["EncodingService"]


class _ModelRuntime:
    """Per-model serving state: the estimator plus reusable buffers.

    For frameworks (and bare RBMs) the hidden projection is materialised
    once — optionally cast to the serving dtype — and every request reuses
    one scratch buffer for the pre-activations.
    """

    def __init__(self, estimator, serve_dtype: np.dtype | None) -> None:
        self.estimator = estimator
        self.serve_dtype = serve_dtype
        model = getattr(estimator, "model_", None)
        if model is None and hasattr(estimator, "weights_"):
            model = estimator  # a bare fitted RBM
        self.model = model if model is not None and hasattr(model, "weights_") else None
        self.weights = None
        self.hidden_bias = None
        self._scratch = None
        if self.model is not None:
            dtype = serve_dtype or self.model.weights_.dtype
            self.weights = np.ascontiguousarray(self.model.weights_, dtype=dtype)
            self.hidden_bias = np.asarray(self.model.hidden_bias_, dtype=dtype)

    @property
    def has_fast_path(self) -> bool:
        return self.weights is not None

    def scratch(self, n_rows: int) -> np.ndarray:
        """A reusable ``(n_rows, n_hidden)`` pre-activation buffer."""
        n_hidden = self.weights.shape[1]
        if self._scratch is None or self._scratch.shape[0] < n_rows:
            self._scratch = np.empty((n_rows, n_hidden), dtype=self.weights.dtype)
        return self._scratch[:n_rows]

    def encode_chunk(self, chunk: np.ndarray, out: np.ndarray) -> None:
        """``sigmoid(chunk @ W + b)`` into ``out`` using the scratch buffer."""
        scratch = self.scratch(chunk.shape[0])
        np.matmul(chunk, self.weights, out=scratch)
        scratch += self.hidden_bias
        out[:] = sigmoid(scratch, out=scratch)


class EncodingService:
    """Serve encode requests for a registry of named, fitted encoders.

    Parameters
    ----------
    max_batch_size : int, default 4096
        Upper bound on the rows pushed through a model in one step; larger
        inputs are split into micro-batches after preprocessing (splitting
        *before* preprocessing would change data-dependent transforms such as
        standardisation).
    cache_entries : int, default 64
        Capacity of the LRU feature cache (0 disables caching).
    dtype : {"float32", "float64"} or None, default None
        Serving precision.  ``None`` keeps each model's training dtype
        (bit-identical to ``framework.transform``).  ``"float32"`` casts the
        hidden projection once at registration and serves requests in single
        precision — roughly half the memory traffic per request at ~1e-7
        relative feature error; opt-in because cached features change dtype.
    clock : callable, default :func:`time.perf_counter`
        Monotonic time source; injectable for deterministic tests.

    Examples
    --------
    >>> service = EncodingService()
    >>> service.register("ir", fitted_framework)      # doctest: +SKIP
    >>> features = service.encode("ir", X)            # doctest: +SKIP
    >>> service.stats("ir")["n_requests"]             # doctest: +SKIP
    1
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 4096,
        cache_entries: int = 64,
        dtype: str | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.max_batch_size = check_positive_int(max_batch_size, name="max_batch_size")
        if cache_entries < 0:
            raise ValidationError(
                f"cache_entries must be non-negative, got {cache_entries}"
            )
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                raise ValidationError(
                    f"serving dtype must be float32 or float64, got {dtype.name!r}"
                )
        self.dtype = dtype
        self._cache = LRUFeatureCache(cache_entries) if cache_entries else None
        self._clock = clock
        self._models: dict[str, _ModelRuntime] = {}
        self._stats: dict[str, ModelStats] = {}

    # ---------------------------------------------------------------- registry
    def register(self, name: str, estimator) -> "EncodingService":
        """Add a fitted encoder to the registry under ``name``.

        ``estimator`` is anything implementing the estimator protocol with a
        ``transform`` method — typically a
        :class:`SelfLearningEncodingFramework`, but bare RBM variants and
        encoder pipelines serve equally.  Re-registering an existing name
        replaces the model and resets its counters (cached features of the
        old model are invalidated).
        """
        if not hasattr(estimator, "transform") or not hasattr(
            type(estimator), "is_fitted"
        ):
            raise ValidationError(
                "estimator must implement the encoder protocol "
                f"(transform + is_fitted), got {type(estimator).__name__}"
            )
        if not estimator.is_fitted:
            raise ServingError(
                f"cannot register {name!r}: the estimator is not fitted "
                "(train it or load a persisted artifact)"
            )
        name = str(name)
        if not name:
            raise ValidationError("model name must be a non-empty string")
        self._models[name] = _ModelRuntime(estimator, self.dtype)
        self._stats[name] = ModelStats()
        self._evict_cached(name)
        return self

    def load(self, name: str, path: str | Path) -> SelfLearningEncodingFramework:
        """Load an artifact bundle from ``path`` and register it as ``name``."""
        framework = load_framework(path)
        self.register(name, framework)
        return framework

    def unregister(self, name: str) -> None:
        """Remove a model (and its cached features and counters)."""
        self.get(name)  # raises ServingError for unknown names
        del self._models[name]
        del self._stats[name]
        self._evict_cached(name)

    def get(self, name: str):
        """The registered estimator for ``name``."""
        try:
            return self._models[name].estimator
        except KeyError:
            raise ServingError(
                f"no model registered under {name!r}; "
                f"available: {sorted(self._models)}"
            ) from None

    @property
    def model_names(self) -> list[str]:
        """Registered model names, sorted."""
        return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    # ---------------------------------------------------------------- serving
    def encode(self, name: str, data, *, use_cache: bool = True) -> np.ndarray:
        """Hidden features of ``data`` under the model registered as ``name``.

        With the default serving dtype the result is identical to
        ``estimator.transform(data)``; large inputs are micro-batched after
        preprocessing.  Cached results are returned as read-only arrays —
        copy before mutating.
        """
        runtime = self._runtime(name)
        data = check_array(data, name="data")
        stats = self._stats[name]
        start = self._clock()

        key = None
        if use_cache and self._cache is not None:
            key = (name, input_digest(data))
            cached = self._cache.get(key)
            if cached is not None:
                stats.record(
                    n_samples=data.shape[0],
                    seconds=self._clock() - start,
                    cache_hit=True,
                )
                return cached

        features, n_batches = self._compute(runtime, data)

        if key is not None:
            self._cache.put(key, features)
        stats.record(
            n_samples=data.shape[0],
            seconds=self._clock() - start,
            cache_hit=False,
            n_batches=n_batches,
        )
        return features

    def _compute(self, runtime: _ModelRuntime, data: np.ndarray):
        estimator = runtime.estimator
        if runtime.has_fast_path:
            preprocessed = (
                estimator.preprocess(data)
                if hasattr(estimator, "preprocess")
                else data
            )
            preprocessed = np.asarray(preprocessed, dtype=runtime.weights.dtype)
            if preprocessed.shape[1] != runtime.weights.shape[0]:
                raise ValidationError(
                    f"data has {preprocessed.shape[1]} features but the model "
                    f"expects {runtime.weights.shape[0]}"
                )
            n_samples = preprocessed.shape[0]
            features = np.empty(
                (n_samples, runtime.weights.shape[1]), dtype=runtime.weights.dtype
            )
            n_batches = 0
            for start_row in range(0, n_samples, self.max_batch_size):
                chunk = preprocessed[start_row : start_row + self.max_batch_size]
                runtime.encode_chunk(chunk, features[start_row : start_row + chunk.shape[0]])
                n_batches += 1
            return features, max(n_batches, 1)

        # Generic estimators (e.g. encoder pipelines) are transformed in one
        # call, NOT micro-batched: a pipeline may embed a framework step
        # whose preprocessing recomputes statistics from the array it is
        # given, so chunking would make the result depend on max_batch_size.
        # Only the framework/RBM fast path above — which preprocesses once
        # before chunking — micro-batches.
        if self.dtype is not None:
            data = np.asarray(data, dtype=self.dtype)
        features = runtime.estimator.transform(data)
        if self.dtype is not None:
            features = np.asarray(features, dtype=self.dtype)
        return features, 1

    def warm(self, name: str, data) -> None:
        """Populate the cache for ``data`` without returning the features."""
        self.encode(name, data)

    def _runtime(self, name: str) -> _ModelRuntime:
        self.get(name)  # raises ServingError for unknown names
        return self._models[name]

    def _iter_batches(self, data: np.ndarray) -> Iterator[np.ndarray]:
        for start in range(0, data.shape[0], self.max_batch_size):
            yield data[start : start + self.max_batch_size]

    # ------------------------------------------------------------ observability
    def stats(self, name: str | None = None) -> dict:
        """Counters for one model, or for all models keyed by name."""
        if name is not None:
            self.get(name)
            return self._stats[name].as_dict()
        return {model: stats.as_dict() for model, stats in self._stats.items()}

    @property
    def cache_info(self) -> dict[str, int]:
        """Global cache occupancy and hit/miss counters."""
        if self._cache is None:
            return {"entries": 0, "max_entries": 0, "hits": 0, "misses": 0}
        return {
            "entries": len(self._cache),
            "max_entries": self._cache.max_entries,
            "hits": self._cache.hits,
            "misses": self._cache.misses,
        }

    def _evict_cached(self, name: str) -> None:
        if self._cache is not None:
            self._cache.evict(lambda key: key[0] == name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodingService(models={self.model_names}, "
            f"max_batch_size={self.max_batch_size})"
        )
