"""The :class:`EncodingService`: a named-model registry answering encode calls.

The service is the runtime half of the train/serve split: encoders trained
elsewhere (and persisted with :func:`repro.persistence.save_framework`) are
loaded once, then serve repeated ``encode`` requests.  Any fitted estimator
implementing the shared protocol with a ``transform`` method can be
registered — the encoding framework, a bare RBM variant or an encoder
:class:`~repro.core.pipeline.Pipeline`.  Three serving concerns live here
rather than in the models:

* **micro-batching** — large inputs are preprocessed once and pushed through
  the model in bounded chunks, keeping peak activation memory flat;
* **scratch-buffer reuse** — the framework fast path keeps one
  pre-activation buffer per registered model and runs the matmul + bias +
  ``sigmoid(x, out=)`` chain in place, so steady-state serving allocates
  only the output matrix instead of two activation-sized temporaries per
  micro-batch;
* **feature caching** — results are memoised in an LRU cache keyed on a
  content digest of the input, so repeated encodes of the same matrix (the
  common clustering-evaluation pattern) are free;
* **batch fusion** — :meth:`EncodingService.encode_many` answers several
  requests with one stacked forward pass (one matmul instead of N); the
  concurrent coalescing front end lives in :mod:`repro.serving.fusion`;
* **observability** — per-model latency/throughput counters with the queue
  wait accounted separately from model compute.

Thread-safety: the service may be driven from many threads (the HTTP front
end, the batch fuser, plain concurrent callers).  Each registered model owns
a compute lock serialising access to its scratch buffer, the LRU cache uses
a single internal mutex, and the per-model counters lock themselves; the
registry itself is guarded by a service-level mutex.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.core.framework import SelfLearningEncodingFramework
from repro.exceptions import DeadlineExceededError, ServingError, ValidationError
from repro.persistence import load_framework
from repro.serving.cache import LRUFeatureCache, input_digest
from repro.serving.stats import ModelStats
from repro.utils.numerics import sigmoid
from repro.utils.validation import _all_finite, check_array, check_positive_int

__all__ = ["EncodingService"]


class _ModelRuntime:
    """Per-model serving state: the estimator plus reusable buffers.

    For frameworks (and bare RBMs) the hidden projection is materialised
    once — optionally cast to the serving dtype — and every request reuses
    one scratch buffer for the pre-activations.
    """

    def __init__(self, estimator, serve_dtype: np.dtype | None) -> None:
        self.estimator = estimator
        self.serve_dtype = serve_dtype
        # Serialises compute on this model: the scratch buffer is shared, so
        # two threads running encode_chunk at once would overwrite each
        # other's pre-activations.  (The fuser's per-request fallback runs
        # after a failed fused pass has released this lock, so no path
        # re-enters it and a plain Lock suffices.)
        self.lock = threading.Lock()
        model = getattr(estimator, "model_", None)
        if model is None and hasattr(estimator, "weights_"):
            model = estimator  # a bare fitted RBM
        self.model = model if model is not None and hasattr(model, "weights_") else None
        self.weights = None
        self.hidden_bias = None
        self._scratch = None
        # Hoisted once so the per-request fused loop pays no hasattr/getattr.
        self.preprocess = getattr(estimator, "preprocess", None)
        #: Registration generation, set by the service; part of the cache
        #: key so entries of a replaced runtime can never hit.
        self.cache_tag = 0
        if self.model is not None:
            dtype = serve_dtype or self.model.weights_.dtype
            self.weights = np.ascontiguousarray(self.model.weights_, dtype=dtype)
            self.hidden_bias = np.asarray(self.model.hidden_bias_, dtype=dtype)

    @property
    def has_fast_path(self) -> bool:
        return self.weights is not None

    def prepare(self, data: np.ndarray) -> np.ndarray:
        """Per-request preprocess + dtype cast + width check (fast path).

        The single source of this sequence for both the unfused and the
        fused compute paths — bit-equivalence between them depends on the
        preparation being identical, so it must not be duplicated.
        """
        matrix = self.preprocess(data) if self.preprocess is not None else data
        dtype = self.weights.dtype
        if not isinstance(matrix, np.ndarray) or matrix.dtype != dtype:
            matrix = np.asarray(matrix, dtype=dtype)
        if matrix.shape[1] != self.weights.shape[0]:
            raise ValidationError(
                f"data has {matrix.shape[1]} features but the model "
                f"expects {self.weights.shape[0]}"
            )
        return matrix

    def scratch(self, n_rows: int) -> np.ndarray:
        """A reusable ``(n_rows, n_hidden)`` pre-activation buffer."""
        n_hidden = self.weights.shape[1]
        if self._scratch is None or self._scratch.shape[0] < n_rows:
            self._scratch = np.empty((n_rows, n_hidden), dtype=self.weights.dtype)
        return self._scratch[:n_rows]

    def encode_chunk(self, chunk: np.ndarray, out: np.ndarray) -> None:
        """``sigmoid(chunk @ W + b)`` into ``out`` using the scratch buffer."""
        scratch = self.scratch(chunk.shape[0])
        np.matmul(chunk, self.weights, out=scratch)
        scratch += self.hidden_bias
        out[:] = sigmoid(scratch, out=scratch)


class EncodingService:
    """Serve encode requests for a registry of named, fitted encoders.

    Parameters
    ----------
    max_batch_size : int, default 4096
        Upper bound on the rows pushed through a model in one step; larger
        inputs are split into micro-batches after preprocessing (splitting
        *before* preprocessing would change data-dependent transforms such as
        standardisation).
    cache_entries : int, default 64
        Capacity of the LRU feature cache (0 disables caching).
    dtype : {"float32", "float64"} or None, default None
        Serving precision.  ``None`` keeps each model's training dtype
        (bit-identical to ``framework.transform``).  ``"float32"`` casts the
        hidden projection once at registration and serves requests in single
        precision — roughly half the memory traffic per request at ~1e-7
        relative feature error; opt-in because cached features change dtype.
    clock : callable, default :func:`time.perf_counter`
        Monotonic time source; injectable for deterministic tests.

    Examples
    --------
    >>> service = EncodingService()
    >>> service.register("ir", fitted_framework)      # doctest: +SKIP
    >>> features = service.encode("ir", X)            # doctest: +SKIP
    >>> service.stats("ir")["n_requests"]             # doctest: +SKIP
    1
    """

    def __init__(
        self,
        *,
        max_batch_size: int = 4096,
        cache_entries: int = 64,
        dtype: str | None = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.max_batch_size = check_positive_int(max_batch_size, name="max_batch_size")
        if cache_entries < 0:
            raise ValidationError(
                f"cache_entries must be non-negative, got {cache_entries}"
            )
        if dtype is not None:
            dtype = np.dtype(dtype)
            if dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
                raise ValidationError(
                    f"serving dtype must be float32 or float64, got {dtype.name!r}"
                )
        self.dtype = dtype
        self._cache = LRUFeatureCache(cache_entries) if cache_entries else None
        self._clock = clock
        self._models: dict[str, _ModelRuntime] = {}
        self._stats: dict[str, ModelStats] = {}
        self._registry_lock = threading.Lock()
        self._generation = 0

    # ---------------------------------------------------------------- registry
    def register(self, name: str, estimator) -> "EncodingService":
        """Add a fitted encoder to the registry under ``name``.

        ``estimator`` is anything implementing the estimator protocol with a
        ``transform`` method — typically a
        :class:`SelfLearningEncodingFramework`, but bare RBM variants and
        encoder pipelines serve equally.  Re-registering an existing name
        replaces the model and resets its counters (cached features of the
        old model are invalidated).
        """
        if not hasattr(estimator, "transform") or not hasattr(
            type(estimator), "is_fitted"
        ):
            raise ValidationError(
                "estimator must implement the encoder protocol "
                f"(transform + is_fitted), got {type(estimator).__name__}"
            )
        if not estimator.is_fitted:
            raise ServingError(
                f"cannot register {name!r}: the estimator is not fitted "
                "(train it or load a persisted artifact)"
            )
        name = str(name)
        if not name:
            raise ValidationError("model name must be a non-empty string")
        runtime = _ModelRuntime(estimator, self.dtype)
        with self._registry_lock:
            self._generation += 1
            # The generation is part of every cache key, so features computed
            # against a replaced runtime can never be served as hits of its
            # successor — even if a slow encode's cache.put lands after the
            # re-registration ran _evict_cached.
            runtime.cache_tag = self._generation
            self._models[name] = runtime
            self._stats[name] = ModelStats()
        self._evict_cached(name)
        return self

    def load(self, name: str, path: str | Path) -> SelfLearningEncodingFramework:
        """Load an artifact bundle from ``path`` and register it as ``name``."""
        framework = load_framework(path)
        self.register(name, framework)
        return framework

    def unregister(self, name: str) -> None:
        """Remove a model (and its cached features and counters).

        Atomic pop-under-lock: when two threads race to unregister the same
        name, exactly one wins and the other gets the same ServingError an
        unknown name would.
        """
        with self._registry_lock:
            runtime = self._models.pop(name, None)
            self._stats.pop(name, None)
        if runtime is None:
            self._raise_unknown(name)
        self._evict_cached(name)

    def get(self, name: str):
        """The registered estimator for ``name``."""
        runtime = self._models.get(name)
        if runtime is None:
            self._raise_unknown(name)
        return runtime.estimator

    def _raise_unknown(self, name: str) -> None:
        with self._registry_lock:
            available = sorted(self._models)
        raise ServingError(
            f"no model registered under {name!r}; available: {available}"
        )

    @property
    def model_names(self) -> list[str]:
        """Registered model names, sorted."""
        with self._registry_lock:
            return sorted(self._models)

    def __contains__(self, name: str) -> bool:
        return name in self._models

    def __len__(self) -> int:
        return len(self._models)

    # ---------------------------------------------------------------- serving
    def encode(
        self,
        name: str,
        data,
        *,
        use_cache: bool = True,
        budget_ms: float | None = None,
    ) -> np.ndarray:
        """Hidden features of ``data`` under the model registered as ``name``.

        With the default serving dtype the result is identical to
        ``estimator.transform(data)``; large inputs are micro-batched after
        preprocessing.  Cached results are returned as read-only arrays —
        copy before mutating.

        ``budget_ms`` (when given) is the caller's remaining deadline
        budget: if it is spent before compute can start — which includes
        the wait for the model's compute lock behind slower requests —
        the call is shed with :class:`DeadlineExceededError` instead of
        burning compute on an answer nobody is waiting for.  A cache hit
        beats any budget (it costs microseconds and no compute).
        """
        runtime, stats = self._entry(name)
        data = check_array(data, name="data")
        start = self._clock()
        deadline = None if budget_ms is None else start + float(budget_ms) / 1000.0

        key = None
        if use_cache and self._cache is not None:
            key = (name, runtime.cache_tag, input_digest(data))
            cached = self._cache.get(key)
            if cached is not None:
                stats.record(
                    n_samples=data.shape[0],
                    seconds=self._clock() - start,
                    cache_hit=True,
                )
                return cached

        with runtime.lock:
            compute_start = self._clock()
            if deadline is not None and compute_start >= deadline:
                # The budget died while this request queued on the compute
                # lock; the front end answers 503 + Retry-After.
                raise DeadlineExceededError(
                    f"deadline budget of {budget_ms:g}ms was spent waiting "
                    f"for {name!r}'s compute lock "
                    f"({(compute_start - start) * 1000.0:.1f}ms elapsed)"
                )
            features, n_batches = self._compute(runtime, data)
            compute_seconds = self._clock() - compute_start

        if key is not None:
            self._cache.put(key, features)
        stats.record(
            n_samples=data.shape[0],
            seconds=self._clock() - start,
            cache_hit=False,
            n_batches=n_batches,
            compute_seconds=compute_seconds,
        )
        return features

    def encode_many(
        self,
        name: str,
        batches: Sequence[np.ndarray],
        *,
        use_cache: bool = True,
        queue_seconds: Sequence[float] | None = None,
        validate: bool = True,
    ) -> list[np.ndarray]:
        """Answer several encode requests with one fused forward pass.

        The request matrices are preprocessed *individually* (preprocessing
        may be data-dependent, so fusing it would change results), stacked
        into one matrix, pushed through the model in a single micro-batched
        matmul chain, and scattered back — each returned array is
        bit-identical to ``encode(name, batch)`` for the same input.  Models
        without the framework/RBM fast path (generic pipelines) cannot be
        stacked safely and fall back to per-request encodes.

        Parameters
        ----------
        batches : sequence of ndarray
            One 2-D input matrix per request.  They must all have the same
            feature width; rows may differ freely.
        use_cache : bool, default True
            Consult/populate the LRU feature cache per request, exactly as
            ``encode`` does — cached requests are excluded from the fused
            pass.
        queue_seconds : sequence of float, optional
            Per-request coalescing wait (supplied by the batch fuser) folded
            into the latency counters; defaults to zero.
        validate : bool, default True
            Run ``check_array`` on every batch.  The batch fuser validates
            at submit time and passes ``False`` so the hot path does not pay
            for validation twice.

        Returns
        -------
        list of ndarray
            Features per request, in input order.  Fused results may be
            read-write views into one shared output matrix (each request
            owns a disjoint row span), so they stay valid and independent
            but share a base buffer.
        """
        runtime, stats = self._entry(name)
        # Models without the fast path run estimator.transform directly, so
        # the deferred stacked finiteness check never happens for them —
        # always validate those fully, even when the fuser pre-checked shape.
        if validate or not runtime.has_fast_path:
            batches = [check_array(batch, name="data") for batch in batches]
        if queue_seconds is None:
            queue_seconds = [0.0] * len(batches)
        elif len(queue_seconds) != len(batches):
            raise ValidationError(
                f"queue_seconds has {len(queue_seconds)} entries for "
                f"{len(batches)} batches"
            )
        start = self._clock()

        n_requests = len(batches)
        results: list[np.ndarray | None] = [None] * n_requests
        if not use_cache or self._cache is None:
            keys: list[tuple | None] | None = None
            hit_mask = None
            miss_indices = list(range(n_requests))
        else:
            keys = [None] * n_requests
            hit_mask = [False] * n_requests
            miss_indices = []
            for index, batch in enumerate(batches):
                key = (name, runtime.cache_tag, input_digest(batch))
                keys[index] = key
                cached = self._cache.get(key)
                if cached is not None:
                    results[index] = cached
                    hit_mask[index] = True
                else:
                    miss_indices.append(index)

        n_batches_run = 0
        batches_by_index: dict[int, int] = {}
        compute_seconds = 0.0
        fused = False
        if miss_indices:
            with runtime.lock:
                compute_start = self._clock()
                if runtime.has_fast_path:
                    fused = True
                    n_batches_run = self._compute_fused(
                        runtime, batches, miss_indices, results
                    )
                else:
                    for index in miss_indices:
                        results[index], ran = self._compute(runtime, batches[index])
                        batches_by_index[index] = ran
                        n_batches_run += ran
                compute_seconds = self._clock() - compute_start
            if keys is not None:
                for index in miss_indices:
                    self._cache.put(keys[index], results[index])

        end = self._clock()
        elapsed = end - start
        total_queue = float(sum(queue_seconds))
        if fused:
            # One locked aggregate update for the whole flush: the shared
            # compute time is booked once, each request's latency is its
            # queue wait plus the flush wall clock.
            n_rows = sum(batch.shape[0] for batch in batches)
            n_hit_rows = (
                sum(batch.shape[0] for batch, hit in zip(batches, hit_mask) if hit)
                if hit_mask is not None
                else 0
            )
            stats.record_flush(
                len(miss_indices),
                n_hits=len(batches) - len(miss_indices),
                n_samples=n_rows,
                n_hit_samples=n_hit_rows,
                n_batches=n_batches_run,
                total_seconds=total_queue + elapsed * len(batches),
                queue_seconds=total_queue,
                compute_seconds=compute_seconds,
                last_latency_seconds=float(queue_seconds[-1]) + elapsed,
            )
        else:
            for index, batch in enumerate(batches):
                own_compute = (
                    compute_seconds
                    if miss_indices and index == miss_indices[0]
                    else 0.0
                )
                stats.record(
                    n_samples=batch.shape[0],
                    seconds=float(queue_seconds[index]) + elapsed,
                    cache_hit=hit_mask[index] if hit_mask is not None else False,
                    n_batches=batches_by_index.get(index, 0),
                    queue_seconds=float(queue_seconds[index]),
                    compute_seconds=own_compute,
                )
        return list(results)

    def _compute_fused(
        self,
        runtime: _ModelRuntime,
        batches: Sequence[np.ndarray],
        miss_indices: Sequence[int],
        results: list,
    ) -> int:
        """Stacked forward pass over the cache-missing batches.

        Each batch is preprocessed on its own (bit-equivalence with unfused
        serving), the preprocessed rows are stacked, one micro-batched
        matmul+bias+sigmoid chain runs over the stack, and the output rows
        are scattered back into ``results``.  Returns the number of
        micro-batches executed.
        """
        dtype = runtime.weights.dtype
        prepare = runtime.prepare
        preprocessed = [prepare(batches[index]) for index in miss_indices]

        stacked = (
            preprocessed[0]
            if len(preprocessed) == 1
            else np.concatenate(preprocessed, axis=0)
        )
        if not _all_finite(stacked):
            # The light submit-side validation defers the elementwise
            # finiteness scan to one reduction over the stacked matrix; a
            # failure here is isolated per request by the fuser's fallback.
            raise ValidationError("data contains NaN or infinite values")
        total_rows = stacked.shape[0]
        fused_out = np.empty((total_rows, runtime.weights.shape[1]), dtype=dtype)
        n_batches = 0
        for start_row in range(0, total_rows, self.max_batch_size):
            chunk = stacked[start_row : start_row + self.max_batch_size]
            runtime.encode_chunk(
                chunk, fused_out[start_row : start_row + chunk.shape[0]]
            )
            n_batches += 1
        offset = 0
        for index, matrix in zip(miss_indices, preprocessed):
            rows = matrix.shape[0]
            # Disjoint row views into the shared output: no per-request copy.
            results[index] = fused_out[offset : offset + rows]
            offset += rows
        return max(n_batches, 1)

    def _compute(self, runtime: _ModelRuntime, data: np.ndarray):
        if runtime.has_fast_path:
            preprocessed = runtime.prepare(data)
            n_samples = preprocessed.shape[0]
            features = np.empty(
                (n_samples, runtime.weights.shape[1]), dtype=runtime.weights.dtype
            )
            n_batches = 0
            for start_row in range(0, n_samples, self.max_batch_size):
                chunk = preprocessed[start_row : start_row + self.max_batch_size]
                runtime.encode_chunk(chunk, features[start_row : start_row + chunk.shape[0]])
                n_batches += 1
            return features, max(n_batches, 1)

        # Generic estimators (e.g. encoder pipelines) are transformed in one
        # call, NOT micro-batched: a pipeline may embed a framework step
        # whose preprocessing recomputes statistics from the array it is
        # given, so chunking would make the result depend on max_batch_size.
        # Only the framework/RBM fast path above — which preprocesses once
        # before chunking — micro-batches.
        if self.dtype is not None:
            data = np.asarray(data, dtype=self.dtype)
        features = runtime.estimator.transform(data)
        if self.dtype is not None:
            features = np.asarray(features, dtype=self.dtype)
        return features, 1

    def warm(self, name: str, data) -> None:
        """Populate the cache for ``data`` without returning the features."""
        self.encode(name, data)

    def _entry(self, name: str) -> tuple[_ModelRuntime, ModelStats]:
        """Runtime and stats fetched atomically vs a concurrent unregister."""
        with self._registry_lock:
            runtime = self._models.get(name)
            stats = self._stats.get(name)
        if runtime is None or stats is None:
            self._raise_unknown(name)
        return runtime, stats

    # ------------------------------------------------------------ observability
    def describe_models(self) -> dict[str, dict]:
        """Serving metadata per registered model (consistent snapshot).

        The registry is snapshotted under the service lock, so a concurrent
        register/unregister can never be observed mid-mutation; the
        per-runtime fields read afterwards are immutable once a runtime is
        registered.  This is the accessor the HTTP front ends' ``/models``
        route must use — iterating ``self._models`` without the lock races
        re-registration.
        """
        with self._registry_lock:
            runtimes = sorted(self._models.items())
        models = {}
        for name, runtime in runtimes:
            models[name] = {
                "estimator": type(runtime.estimator).__name__,
                "fast_path": runtime.has_fast_path,
                "n_features": (
                    int(runtime.weights.shape[0]) if runtime.has_fast_path else None
                ),
                "n_hidden": (
                    int(runtime.weights.shape[1]) if runtime.has_fast_path else None
                ),
                "dtype": (
                    str(runtime.weights.dtype) if runtime.has_fast_path else None
                ),
            }
        return models

    def stats(self, name: str | None = None) -> dict:
        """Counters for one model, or for all models keyed by name."""
        if name is not None:
            return self._entry(name)[1].as_dict()
        with self._registry_lock:
            snapshot = list(self._stats.items())
        return {model: stats.as_dict() for model, stats in snapshot}

    @property
    def cache_info(self) -> dict[str, int]:
        """Global cache occupancy and hit/miss counters (consistent snapshot)."""
        if self._cache is None:
            return {
                "entries": 0,
                "max_entries": 0,
                "hits": 0,
                "misses": 0,
                "lookups": 0,
            }
        counters = self._cache.counters()  # one lock: hits+misses==lookups holds
        counters["max_entries"] = self._cache.max_entries
        return counters

    def _evict_cached(self, name: str) -> None:
        if self._cache is not None:
            self._cache.evict(lambda key: key[0] == name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EncodingService(models={self.model_names}, "
            f"max_batch_size={self.max_batch_size})"
        )
