"""Shared JSON-over-HTTP plumbing for the serving and distributed layers.

Both the encoding front end (:mod:`repro.serving.http`) and the distributed
experiment coordinator/worker protocol (:mod:`repro.distributed`) speak the
same dialect: JSON request bodies, JSON responses, keep-alive connections and
explicit error mapping.  This module holds the pieces they share:

* :class:`JsonRequestHandler` — a :class:`~http.server.BaseHTTPRequestHandler`
  base class with safe body reading (Content-Length validation so a missing
  or garbage header can never hang a blocking read, and a size cap answered
  with ``413 Payload Too Large``) and JSON response helpers;
* :exc:`PayloadTooLargeError` — the size-cap violation, mapped to 413 where a
  plain :class:`~repro.exceptions.ValidationError` maps to 400;
* :func:`request_json` — the matching stdlib client: one JSON request over a
  (reusable) :class:`http.client.HTTPConnection`, returning the decoded
  response and raising :exc:`WireError` on transport problems so callers can
  implement retry/backoff without fishing through ``OSError`` subclasses;
* **shared-secret auth** — a server exposing an ``auth_secret`` attribute
  makes :meth:`JsonRequestHandler.authorize` require the matching
  ``X-Repro-Secret`` header (constant-time compare, 401 on mismatch), and
  ``request_json(secret=...)`` sends it.  Loopback deployments leave the
  secret unset; anything bound to a routable address should set one.
"""

from __future__ import annotations

import hmac
import http.client
import json
import socket
from http.server import BaseHTTPRequestHandler

from repro.exceptions import ReproError, ValidationError

__all__ = [
    "MAX_BODY_BYTES",
    "SECRET_HEADER",
    "PayloadTooLargeError",
    "WireError",
    "JsonRequestHandler",
    "decode_json_object",
    "request_json",
    "validate_content_length",
]

#: Header carrying the shared secret on authenticated deployments.
SECRET_HEADER = "X-Repro-Secret"

#: Default request-body cap (64 MiB of JSON text).
MAX_BODY_BYTES = 64 * 1024 * 1024


class PayloadTooLargeError(ValidationError):
    """Request body exceeds the handler's size cap (HTTP 413)."""


class WireError(ReproError, ConnectionError):
    """A JSON/HTTP exchange failed at the transport level (connection
    refused or reset, timeout, or a non-JSON response body)."""


def validate_content_length(raw: str | None, max_bytes: int) -> int:
    """Validated ``Content-Length`` value shared by every front end.

    The threaded handler and the asyncio parser must agree byte-for-byte
    on what framing is acceptable, so the rules live in one place: a
    missing, non-numeric or negative header raises
    :class:`ValidationError` (HTTP 400 — a blocking body read without a
    trustworthy length would hang the reader), and a length past
    ``max_bytes`` raises :class:`PayloadTooLargeError` (HTTP 413).
    """
    if raw is None:
        raise ValidationError("request requires a Content-Length header")
    try:
        length = int(raw)
    except (TypeError, ValueError):
        raise ValidationError(f"invalid Content-Length header {raw!r}") from None
    if length < 0:
        raise ValidationError(f"invalid Content-Length header {raw!r}")
    if length > max_bytes:
        raise PayloadTooLargeError(
            f"request body of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    return length


def decode_json_object(raw: bytes) -> dict:
    """Decode a request body as a JSON object (shared by every front end).

    Raises :class:`ValidationError` for an empty body, undecodable bytes
    or a body that is valid JSON but not an object.
    """
    if not raw:
        raise ValidationError("request requires a JSON body")
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ValidationError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValidationError("request body must be a JSON object")
    return payload


class JsonRequestHandler(BaseHTTPRequestHandler):
    """Request handler base speaking JSON bodies and JSON responses.

    Subclasses implement ``do_GET``/``do_POST`` on top of
    :meth:`read_json_body` and :meth:`send_json`; the owning server may
    expose a ``verbose`` attribute to gate stdlib per-request logging.
    """

    protocol_version = "HTTP/1.1"

    #: Per-handler request-body cap; subclasses may override.
    max_body_bytes = MAX_BODY_BYTES

    # ---------------------------------------------------------------- logging
    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib name
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------ auth
    def authorize(self) -> bool:
        """Enforce the server's shared secret, if it has one.

        Servers opt in by exposing a non-empty ``auth_secret`` attribute;
        the client must then send it in the :data:`SECRET_HEADER` header.
        The comparison is constant-time (:func:`hmac.compare_digest`), so a
        mismatching prefix leaks nothing through timing.  On mismatch a 401
        is sent, the connection is closed (any unread body would desync
        keep-alive) and ``False`` is returned — the handler must bail out.
        """
        secret = getattr(self.server, "auth_secret", None)
        if not secret:
            return True
        provided = self.headers.get(SECRET_HEADER) or ""
        if hmac.compare_digest(provided.encode("utf-8"), str(secret).encode("utf-8")):
            return True
        self.close_connection = True
        self.send_error_json(
            401, f"missing or invalid {SECRET_HEADER} shared secret"
        )
        return False

    # -------------------------------------------------------------- responses
    def send_json(
        self, status: int, payload: dict, *, headers: dict | None = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if headers:
            for name, value in headers.items():
                self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def send_error_json(self, status: int, message: str) -> None:
        self.send_json(status, {"error": message})

    # ----------------------------------------------------------------- bodies
    def content_length(self) -> int:
        """Validated ``Content-Length`` of the current request.

        Raises :class:`ValidationError` (HTTP 400) when the header is
        missing, non-numeric or negative — a blocking ``rfile.read`` without
        a trustworthy length would hang the handler thread — and
        :class:`PayloadTooLargeError` (HTTP 413) when it exceeds
        :attr:`max_body_bytes`.
        """
        try:
            return validate_content_length(
                self.headers.get("Content-Length"), self.max_body_bytes
            )
        except PayloadTooLargeError:
            # The unread body would desync a keep-alive connection (the next
            # request line would be parsed out of the body bytes), so force
            # this connection closed after the error response.
            self.close_connection = True
            raise

    def read_json_body(self) -> dict:
        """The request body decoded as a JSON object.

        Raises :class:`ValidationError` for an absent/invalid length or a
        body that is not a JSON object, :class:`PayloadTooLargeError` past
        the size cap.
        """
        length = self.content_length()
        if length == 0:
            raise ValidationError("request requires a JSON body")
        return decode_json_object(self.rfile.read(length))

    def drain_body(self) -> None:
        """Consume (or sever) an unread request body on a rejected route.

        Keeps the keep-alive connection in sync for the client's next
        request; bodies without a sane length close the connection instead.
        """
        try:
            length = self.content_length()
        except ValidationError:
            self.close_connection = True
            return
        if length > 0:
            self.rfile.read(length)


def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    *,
    timeout: float = 30.0,
    connection: http.client.HTTPConnection | None = None,
    secret: str | None = None,
) -> tuple[int, dict]:
    """One JSON request/response exchange; returns ``(status, payload)``.

    Transport failures (refused/reset connections, timeouts, undecodable
    response bodies) raise :class:`WireError`; HTTP error statuses are
    returned to the caller, whose protocol decides what is fatal.  When
    ``connection`` is given it is reused (keep-alive) and left open; the
    caller owns its lifecycle.  ``secret`` (when set) is sent in the
    :data:`SECRET_HEADER` header for servers that require it.
    """
    own_connection = connection is None
    if own_connection:
        connection = http.client.HTTPConnection(host, port, timeout=timeout)
    body = None
    headers = {}
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = "application/json"
    if secret:
        headers[SECRET_HEADER] = secret
    try:
        connection.request(method, path, body=body, headers=headers)
        response = connection.getresponse()
        raw = response.read()
    except (OSError, http.client.HTTPException, socket.timeout) as exc:
        connection.close()
        raise WireError(f"{method} {host}:{port}{path} failed: {exc}") from exc
    finally:
        if own_connection:
            connection.close()
    try:
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise WireError(
            f"{method} {host}:{port}{path} returned undecodable body: {exc}"
        ) from exc
    if not isinstance(decoded, dict):
        raise WireError(
            f"{method} {host}:{port}{path} returned a non-object JSON body"
        )
    return response.status, decoded
