"""Shared numerical and validation utilities used across the library."""

from repro.utils.numerics import (
    log1pexp,
    logsumexp,
    pairwise_squared_distances,
    sigmoid,
    softmax,
    stable_log,
)
from repro.utils.rng import check_random_state, spawn_children
from repro.utils.validation import (
    check_array,
    check_labels,
    check_positive_int,
    check_probability,
    check_same_length,
)

__all__ = [
    "sigmoid",
    "softmax",
    "log1pexp",
    "logsumexp",
    "stable_log",
    "pairwise_squared_distances",
    "check_random_state",
    "spawn_children",
    "check_array",
    "check_labels",
    "check_same_length",
    "check_positive_int",
    "check_probability",
]
