"""Input validation helpers.

The public estimators validate their inputs eagerly and raise
:class:`repro.exceptions.ValidationError` with an explicit message instead of
letting numpy broadcasting errors surface deep inside the training loops.
"""

from __future__ import annotations

import numbers

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_array",
    "check_labels",
    "check_same_length",
    "check_positive_int",
    "check_probability",
    "check_in_range",
]


def _all_finite(arr: np.ndarray) -> bool:
    """Whether every element of a float array is finite.

    Fast path: NaN/inf propagate into the sum, so one SIMD reduction decides
    the common all-finite case without materialising an elementwise boolean
    mask.  A sum over genuinely finite values can still overflow to inf, so
    a non-finite sum falls back to the exact elementwise check rather than
    rejecting the data outright.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        total = arr.sum()
    return bool(np.isfinite(total)) or bool(np.all(np.isfinite(arr)))


def check_array(
    x,
    *,
    name: str = "X",
    ndim: int = 2,
    allow_empty: bool = False,
    dtype=float,
) -> np.ndarray:
    """Validate and convert ``x`` to a numpy array of the expected rank.

    Raises
    ------
    ValidationError
        If the array has the wrong dimensionality, contains NaN/inf values or
        is empty while ``allow_empty`` is false.
    """
    arr = np.asarray(x, dtype=dtype)
    if arr.ndim != ndim:
        raise ValidationError(
            f"{name} must be a {ndim}-D array, got shape {arr.shape}"
        )
    if not allow_empty and arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if np.issubdtype(arr.dtype, np.floating) and not _all_finite(arr):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return arr


def check_labels(labels, *, name: str = "labels", n_samples: int | None = None) -> np.ndarray:
    """Validate an integer label vector."""
    arr = np.asarray(labels)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D array, got shape {arr.shape}")
    if arr.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.round(arr)):
            arr = arr.astype(int)
        else:
            raise ValidationError(f"{name} must contain integers")
    if n_samples is not None and arr.shape[0] != n_samples:
        raise ValidationError(
            f"{name} has {arr.shape[0]} entries but {n_samples} samples were expected"
        )
    return arr.astype(int)


def check_same_length(*arrays, names: tuple[str, ...] | None = None) -> None:
    """Raise if the first axis lengths of the given arrays differ."""
    lengths = [np.asarray(a).shape[0] for a in arrays]
    if len(set(lengths)) > 1:
        if names is None:
            names = tuple(f"array{i}" for i in range(len(arrays)))
        detail = ", ".join(f"{n}={l}" for n, l in zip(names, lengths))
        raise ValidationError(f"inconsistent number of samples: {detail}")


def check_positive_int(value, *, name: str) -> int:
    """Validate a strictly positive integer parameter."""
    if isinstance(value, bool) or not isinstance(value, numbers.Integral):
        raise ValidationError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise ValidationError(f"{name} must be positive, got {value}")
    return int(value)


def check_probability(value, *, name: str, inclusive: bool = False) -> float:
    """Validate a scalar in the open interval (0, 1) (or closed if requested)."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ValidationError(f"{name} must lie in [0, 1], got {value}")
    else:
        if not 0.0 < value < 1.0:
            raise ValidationError(f"{name} must lie in (0, 1), got {value}")
    return value


def check_in_range(value, *, name: str, low: float, high: float) -> float:
    """Validate a scalar in the closed interval [low, high]."""
    if not isinstance(value, numbers.Real) or isinstance(value, bool):
        raise ValidationError(f"{name} must be a real number, got {value!r}")
    value = float(value)
    if not low <= value <= high:
        raise ValidationError(f"{name} must lie in [{low}, {high}], got {value}")
    return value
