"""Numerically stable primitives shared by the RBM and clustering code.

The contrastive-divergence updates of the paper are expressed in terms of
sigmoid activations (Eq. 2-3) and squared Euclidean distances between hidden
feature vectors (Eq. 14-15).  These helpers keep those computations stable for
large magnitude pre-activations and large data matrices.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sigmoid",
    "softmax",
    "log1pexp",
    "logsumexp",
    "stable_log",
    "pairwise_squared_distances",
    "squared_norm",
]

_LOG_EPS = 1e-12


def sigmoid(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Elementwise logistic function ``1 / (1 + exp(-x))``.

    Evaluated as ``t / (1 + t)`` with ``t = exp(-|x|)`` (and the numerator
    replaced by 1 where ``x >= 0``), which is the branch-free form of the
    classic two-branch stable sigmoid: neither exponential can overflow, and
    the result is identical bit for bit.

    Parameters
    ----------
    x : array-like
        Pre-activations.  Floating inputs keep their dtype (float32 stays
        float32 — used by the reduced-precision training path); other dtypes
        are promoted to float64.
    out : ndarray, optional
        Preallocated output buffer of the same shape/dtype as ``x``; may be
        ``x`` itself.  Lets hot loops avoid reallocating activation-sized
        arrays every minibatch.
    """
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.floating):
        x = x.astype(float)
    positive = x >= 0  # before any in-place write in case out is x
    if out is None:
        out = np.empty_like(x)
    np.abs(x, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)  # t = exp(-|x|), in (0, 1]
    numerator = np.where(positive, x.dtype.type(1.0), out)
    np.add(out, x.dtype.type(1.0), out=out)
    np.divide(numerator, out, out=out)
    return out


def log1pexp(x: np.ndarray) -> np.ndarray:
    """Stable ``log(1 + exp(x))`` (softplus), used for RBM free energy."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    small = x <= 30.0
    out[small] = np.log1p(np.exp(x[small]))
    out[~small] = x[~small]
    return out


def logsumexp(x: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Stable ``log(sum(exp(x)))`` along ``axis``."""
    x = np.asarray(x, dtype=float)
    x_max = np.max(x, axis=axis, keepdims=True)
    x_max = np.where(np.isfinite(x_max), x_max, 0.0)
    result = np.log(np.sum(np.exp(x - x_max), axis=axis, keepdims=True)) + x_max
    if axis is None:
        return float(result.reshape(()))
    return np.squeeze(result, axis=axis)


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along ``axis``."""
    x = np.asarray(x, dtype=float)
    shifted = x - np.max(x, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def stable_log(x: np.ndarray) -> np.ndarray:
    """``log(max(x, eps))`` so that exact zeros do not produce ``-inf``."""
    return np.log(np.maximum(np.asarray(x, dtype=float), _LOG_EPS))


def squared_norm(x: np.ndarray) -> float:
    """Squared Frobenius / 2-norm of an array."""
    x = np.asarray(x, dtype=float).ravel()
    return float(np.dot(x, x))


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray | None = None) -> np.ndarray:
    """Matrix of squared Euclidean distances between rows of ``a`` and ``b``.

    Parameters
    ----------
    a : ndarray of shape (n, d)
    b : ndarray of shape (m, d), optional
        Defaults to ``a``.

    Returns
    -------
    ndarray of shape (n, m)
        Non-negative squared distances (negatives from floating point
        cancellation are clipped to zero).
    """
    a = np.asarray(a, dtype=float)
    b = a if b is None else np.asarray(b, dtype=float)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError("pairwise_squared_distances expects 2-D arrays")
    if a.shape[1] != b.shape[1]:
        raise ValueError(
            f"dimension mismatch: a has {a.shape[1]} columns, b has {b.shape[1]}"
        )
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    distances = a_sq + b_sq - 2.0 * (a @ b.T)
    np.maximum(distances, 0.0, out=distances)
    return distances
