"""Random-number-generator handling.

Every stochastic component of the library (RBM sampling, K-means restarts,
synthetic dataset generation) accepts a ``random_state`` argument that may be
``None``, an integer seed or a :class:`numpy.random.Generator`.  This module
centralises the conversion so experiments are reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_random_state", "spawn_children"]


def check_random_state(
    random_state: int | np.random.Generator | None,
) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state : None, int or numpy.random.Generator
        ``None`` creates a fresh non-deterministic generator, an ``int`` seeds
        a new generator, and an existing generator is returned unchanged.
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int or a numpy.random.Generator, "
        f"got {type(random_state).__name__}"
    )


def spawn_children(
    random_state: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Derive ``count`` independent child generators from ``random_state``.

    Used when a composite procedure (e.g. the multi-clustering integration)
    needs one independent stream per sub-algorithm while staying reproducible
    from a single seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = check_random_state(random_state)
    seeds = rng.integers(0, 2**63 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
