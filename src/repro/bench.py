"""Tracked performance benchmarks: ``python -m repro bench``.

Times the training-side hot paths against the kept reference
implementations and writes a machine-readable ``BENCH_training.json`` so
every PR leaves a perf trajectory:

* ``gradient_kernel`` — fused constrict/disperse gradient
  (:mod:`repro.rbm.gradients`) vs the loop reference
  (:mod:`repro.rbm.gradients_reference`);
* ``sls_epoch`` — one slsGRBM training epoch with supervision attached,
  fused kernels vs the reference kernels injected into the same code path;
* ``density_peaks`` — chunked :class:`repro.clustering.DensityPeaks` vs the
  pre-optimisation full-matrix implementation (replicated below);
* ``runner_scaling`` — a small experiment grid run sequentially and with
  ``ExperimentRunner(n_jobs=...)``.

All sections use best-of-``repeats`` wall-clock timings.  ``--smoke`` keeps
every section under a few seconds for CI.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np

import repro
from repro.utils.numerics import sigmoid

__all__ = ["run_training_benchmarks", "write_benchmark_report"]


def _best_of(callable_, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        callable_()
        best = min(best, time.perf_counter() - start)
    return best


def _random_clusters(rng, n_samples: int, n_clusters: int) -> dict[int, np.ndarray]:
    labels = rng.integers(0, n_clusters, size=n_samples)
    labels[:n_clusters] = np.arange(n_clusters)  # every cluster non-empty
    return {int(k): np.flatnonzero(labels == k) for k in range(n_clusters)}


# ------------------------------------------------------------ gradient kernel
def bench_gradient_kernel(*, smoke: bool = False, repeats: int = 5) -> dict:
    """Fused vs reference supervision gradient on one covered matrix."""
    from repro.rbm.gradients import constrict_disperse_gradient
    from repro.rbm.gradients_reference import constrict_disperse_gradient_reference

    # n_clusters reflects a realistic multi-clustering supervision: the
    # unanimous intersection of three base partitions yields a few dozen
    # fine-grained local clusters, not one per class.
    n_samples, n_visible, n_hidden, n_clusters = (
        (200, 32, 16, 6) if smoke else (1200, 128, 64, 24)
    )
    rng = np.random.default_rng(0)
    visible = rng.normal(size=(n_samples, n_visible))
    weights = 0.1 * rng.normal(size=(n_visible, n_hidden))
    hidden_bias = 0.1 * rng.normal(size=n_hidden)
    index_sets = _random_clusters(rng, n_samples, n_clusters)

    vectorized = _best_of(
        lambda: constrict_disperse_gradient(visible, weights, hidden_bias, index_sets),
        repeats,
    )
    reference = _best_of(
        lambda: constrict_disperse_gradient_reference(
            visible, weights, hidden_bias, index_sets
        ),
        repeats,
    )
    return {
        "n_samples": n_samples,
        "n_visible": n_visible,
        "n_hidden": n_hidden,
        "n_clusters": n_clusters,
        "vectorized_seconds": vectorized,
        "reference_seconds": reference,
        "speedup": reference / vectorized,
    }


# ----------------------------------------------------------------- sls epoch
def _reference_presorted_adapter(
    visible, weights, hidden_bias, plan, *, hidden=None, return_hidden=False
):
    """Drop-in for ``constrict_disperse_gradient_presorted`` that performs the
    pre-optimisation work: loop/reference gradient over index sets plus a
    separate activation pass for the reconstruction input."""
    from repro.rbm.gradients_reference import constrict_disperse_gradient_reference

    grads = constrict_disperse_gradient_reference(
        visible, weights, hidden_bias, plan.sorted_index_sets()
    )
    if return_hidden:
        return grads, sigmoid(hidden_bias + visible @ weights)
    return grads


def _sls_epoch_setup(smoke: bool):
    from repro.datasets.synthetic import make_high_dimensional_mixture
    from repro.rbm.sls_grbm import SlsGRBM
    from repro.supervision.local_supervision import LocalSupervision

    n_samples, n_features, n_hidden = (240, 30, 16) if smoke else (1500, 100, 64)
    data, labels = make_high_dimensional_mixture(
        n_samples, n_features, 5, separation=2.0, random_state=0
    )
    data = (data - data.mean(axis=0)) / np.maximum(data.std(axis=0), 1e-9)
    # ~80 % coverage and ~5 local clusters per class, like a realistic
    # unanimous-voting supervision (local clusters are intersection cells of
    # the base partitions, finer than the classes themselves).
    rng = np.random.default_rng(1)
    covered_labels = labels * 5 + rng.integers(0, 5, size=n_samples)
    covered_labels[rng.random(n_samples) > 0.8] = -1
    supervision = LocalSupervision.from_labels(covered_labels)

    def make_model():
        model = SlsGRBM(
            n_hidden,
            n_epochs=1,
            batch_size=64,
            random_state=0,
            supervision_learning_rate=1e-3,
        )
        model.initialize(data)
        model.set_supervision(data, supervision)
        return model

    batch_size = 64
    batches = [data[start : start + batch_size] for start in range(0, n_samples, batch_size)]
    return make_model, batches, {"n_samples": n_samples, "n_features": n_features, "n_hidden": n_hidden}


def bench_sls_epoch(*, smoke: bool = False, repeats: int = 3) -> dict:
    """One supervised CD epoch: fused kernels vs the reference kernels."""
    from repro.rbm import gradients

    make_model, batches, params = _sls_epoch_setup(smoke)

    def epoch():
        model = make_model()
        for batch in batches:
            model.partial_fit(batch)

    fused = _best_of(epoch, repeats)

    original = gradients.constrict_disperse_gradient_presorted
    gradients.constrict_disperse_gradient_presorted = _reference_presorted_adapter
    try:
        reference = _best_of(epoch, repeats)
    finally:
        gradients.constrict_disperse_gradient_presorted = original

    return {
        **params,
        "n_batches": len(batches),
        "vectorized_seconds": fused,
        "reference_seconds": reference,
        "speedup": reference / fused,
    }


# -------------------------------------------------------------- density peaks
def _legacy_density_peaks_fit(data: np.ndarray, n_clusters: int) -> np.ndarray:
    """Pre-optimisation DensityPeaks fit (full matrix, eye mask, reorder)."""
    from repro.utils.numerics import pairwise_squared_distances

    distances = np.sqrt(pairwise_squared_distances(data))
    off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
    dc = float(np.percentile(off_diagonal, 2.0))
    if dc <= 0.0:
        dc = float(off_diagonal[off_diagonal > 0].min(initial=1.0))
    rho = np.exp(-((distances / dc) ** 2)).sum(axis=1) - 1.0

    n_samples = distances.shape[0]
    order = np.argsort(rho)[::-1]
    ordered = distances[np.ix_(order, order)]
    mask = np.triu(np.ones((n_samples, n_samples), dtype=bool))
    masked = np.where(mask, np.inf, ordered)
    delta_sorted = np.empty(n_samples)
    nearest_sorted = np.empty(n_samples, dtype=int)
    delta_sorted[1:] = masked[1:].min(axis=1)
    nearest_sorted[1:] = masked[1:].argmin(axis=1)
    delta_sorted[0] = distances.max()
    nearest_sorted[0] = 0
    delta = np.empty(n_samples)
    nearest_higher = np.empty(n_samples, dtype=int)
    delta[order] = delta_sorted
    nearest_higher[order] = order[nearest_sorted]

    decision = rho * delta
    centers = np.sort(np.argsort(decision)[::-1][:n_clusters])
    labels = np.full(n_samples, -1, dtype=int)
    for cluster_id, center in enumerate(centers):
        labels[center] = cluster_id
    for idx in np.argsort(rho)[::-1]:
        if labels[idx] == -1:
            labels[idx] = labels[nearest_higher[idx]]
    return labels


def bench_density_peaks(*, smoke: bool = False, repeats: int = 5) -> dict:
    """Chunked DensityPeaks fit vs the pre-optimisation implementation."""
    from repro.clustering.density_peaks import DensityPeaks

    n_samples, n_features, n_clusters = (400, 16, 3) if smoke else (2000, 16, 5)
    rng = np.random.default_rng(0)
    data = np.vstack(
        [
            rng.normal(center, 1.0, size=(n_samples // n_clusters, n_features))
            for center in range(n_clusters)
        ]
    )

    chunked = _best_of(lambda: DensityPeaks(n_clusters).fit(data), repeats)
    legacy = _best_of(lambda: _legacy_density_peaks_fit(data, n_clusters), repeats)
    identical = bool(
        np.array_equal(
            DensityPeaks(n_clusters).fit_predict(data),
            _legacy_density_peaks_fit(data, n_clusters),
        )
    )
    return {
        "n_samples": data.shape[0],
        "n_features": n_features,
        "n_clusters": n_clusters,
        "vectorized_seconds": chunked,
        "reference_seconds": legacy,
        "speedup": legacy / chunked,
        "labels_identical": identical,
    }


# ------------------------------------------------------------- runner scaling
def bench_runner_scaling(*, smoke: bool = False, n_jobs: int = 4) -> dict:
    """2-dataset x 4-algorithm grid: sequential vs ``n_jobs`` process pool."""
    from repro.datasets import load_uci_suite
    from repro.datasets.base import DatasetSuite
    from repro.experiments.runner import ExperimentRunner

    scale = 0.15 if smoke else 0.3
    n_epochs = 2 if smoke else 3
    suite = load_uci_suite(scale=scale, random_state=0)
    suite = DatasetSuite("bench", list(suite)[:2])
    algorithms = ("DP", "K-means", "K-means+RBM", "K-means+slsRBM")

    def run(jobs: int) -> float:
        runner = ExperimentRunner(
            algorithms,
            n_repeats=2,
            n_hidden=8,
            n_epochs=n_epochs,
            batch_size=32,
            random_state=0,
            n_jobs=jobs,
        )
        start = time.perf_counter()
        runner.run_suite(suite)
        return time.perf_counter() - start

    sequential = run(1)
    parallel = run(n_jobs)
    return {
        "n_datasets": 2,
        "n_algorithms": len(algorithms),
        "n_repeats": 2,
        "n_jobs": n_jobs,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": sequential,
        "parallel_seconds": parallel,
        "parallel_over_sequential": parallel / sequential,
    }


def bench_distributed_scaling(*, smoke: bool = False) -> dict:
    """The runner-scaling grid fanned out over loopback worker processes.

    One wall-clock sample per worker count in {1, 2, 4}: each run spawns
    its own coordinator and worker subprocesses, so the numbers include the
    full distribution overhead (process start-up, dataset transfer, JSON
    round-trips) — the honest cost a user pays for ``workers=N`` on one
    machine.
    """
    from repro.datasets import load_uci_suite
    from repro.datasets.base import DatasetSuite
    from repro.experiments.runner import ExperimentRunner

    scale = 0.15 if smoke else 0.3
    n_epochs = 2 if smoke else 3
    suite = load_uci_suite(scale=scale, random_state=0)
    suite = DatasetSuite("bench", list(suite)[:2])
    algorithms = ("DP", "K-means", "K-means+RBM", "K-means+slsRBM")

    def run(workers: int | None) -> float:
        runner = ExperimentRunner(
            algorithms,
            n_repeats=2,
            n_hidden=8,
            n_epochs=n_epochs,
            batch_size=32,
            random_state=0,
            workers=workers,
        )
        start = time.perf_counter()
        runner.run_suite(suite)
        return time.perf_counter() - start

    sequential = run(None)
    worker_counts = (1, 2, 4)
    seconds = {n: run(n) for n in worker_counts}
    return {
        "n_datasets": 2,
        "n_algorithms": len(algorithms),
        "n_repeats": 2,
        "cpu_count": os.cpu_count(),
        "sequential_seconds": sequential,
        "workers": {
            str(n): {
                "seconds": seconds[n],
                "over_sequential": seconds[n] / sequential,
            }
            for n in worker_counts
        },
    }


# ---------------------------------------------------------------------- entry
def run_training_benchmarks(*, smoke: bool = False, n_jobs: int = 4) -> dict:
    """Run every section and return the report payload."""
    results = {
        "gradient_kernel": bench_gradient_kernel(smoke=smoke),
        "sls_epoch": bench_sls_epoch(smoke=smoke),
        "density_peaks": bench_density_peaks(smoke=smoke),
        "runner_scaling": bench_runner_scaling(smoke=smoke, n_jobs=n_jobs),
        "distributed_scaling": bench_distributed_scaling(smoke=smoke),
    }
    return {
        "benchmark": "training",
        "repro_version": repro.__version__,
        "smoke": bool(smoke),
        "created_unix": time.time(),
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
        },
        "results": results,
    }


def write_benchmark_report(payload: dict, out_path) -> Path:
    """Write the payload as pretty JSON; returns the path written."""
    out_path = Path(out_path)
    if out_path.parent != Path(""):
        out_path.parent.mkdir(parents=True, exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return out_path


def format_summary(payload: dict) -> str:
    """Human-readable one-block summary of a benchmark payload."""
    results = payload["results"]
    lines = [
        f"repro training benchmarks (smoke={payload['smoke']}, "
        f"cpu_count={payload['environment']['cpu_count']})"
    ]
    for key in ("gradient_kernel", "sls_epoch", "density_peaks"):
        section = results[key]
        lines.append(
            f"  {key:<16} {section['vectorized_seconds'] * 1e3:8.1f} ms vs "
            f"{section['reference_seconds'] * 1e3:8.1f} ms reference "
            f"({section['speedup']:.2f}x)"
        )
    scaling = results["runner_scaling"]
    lines.append(
        f"  runner_scaling   n_jobs={scaling['n_jobs']}: "
        f"{scaling['parallel_seconds']:.2f} s vs {scaling['sequential_seconds']:.2f} s "
        f"sequential ({scaling['parallel_over_sequential']:.2f}x wall-clock)"
    )
    distributed = results.get("distributed_scaling")
    if distributed:
        per_count = ", ".join(
            f"{n} worker(s): {entry['seconds']:.2f} s "
            f"({entry['over_sequential']:.2f}x)"
            for n, entry in sorted(
                distributed["workers"].items(), key=lambda item: int(item[0])
            )
        )
        lines.append(
            f"  distributed      loopback {per_count} vs "
            f"{distributed['sequential_seconds']:.2f} s sequential"
        )
    return "\n".join(lines)
