"""The ``LocalSupervision`` value object.

A local supervision is the final product of the multi-clustering integration:
a set of *credible local clusters* — index sets ``V_1 .. V_K`` over the
visible data — that the sls models use to constrict same-cluster hidden
features and disperse the centres of different clusters (Eq. 13-15 of the
paper).  Only a subset of the data is covered; instances on which the base
clusterings disagreed carry no supervision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import SupervisionError
from repro.utils.validation import check_labels

__all__ = ["LocalSupervision"]


@dataclass(frozen=True)
class LocalSupervision:
    """Credible local clusters over a dataset of ``n_samples`` instances.

    Attributes
    ----------
    labels : ndarray of shape (n_samples,)
        Consensus cluster label per instance, ``-1`` for uncovered instances.
    n_samples : int
        Total number of instances in the dataset (covered or not).
    metadata : dict
        Provenance (base clusterers, voting strategy, agreement statistics).
    """

    labels: np.ndarray
    n_samples: int
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        labels = np.asarray(self.labels)
        if labels.ndim != 1:
            raise SupervisionError(
                f"labels must be 1-D, got shape {labels.shape}"
            )
        if labels.shape[0] != self.n_samples:
            raise SupervisionError(
                f"labels has {labels.shape[0]} entries but n_samples={self.n_samples}"
            )
        labels = labels.astype(int)
        covered = labels >= 0
        if not covered.any():
            raise SupervisionError(
                "local supervision covers no instance; unanimous voting removed "
                "everything (try majority voting or fewer base clusterers)"
            )
        object.__setattr__(self, "labels", labels)

    # ------------------------------------------------------------------ views
    @property
    def mask(self) -> np.ndarray:
        """Boolean mask of covered (credible) instances."""
        return self.labels >= 0

    @property
    def covered_indices(self) -> np.ndarray:
        """Indices of covered instances, in dataset order."""
        return np.flatnonzero(self.mask)

    @property
    def coverage(self) -> float:
        """Fraction of the dataset covered by the supervision, in (0, 1]."""
        return float(self.mask.mean())

    @property
    def cluster_ids(self) -> np.ndarray:
        """Sorted distinct local cluster identifiers (excluding -1)."""
        return np.unique(self.labels[self.mask])

    @property
    def n_clusters(self) -> int:
        """Number of credible local clusters ``K``."""
        return int(self.cluster_ids.shape[0])

    def members(self, cluster_id: int) -> np.ndarray:
        """Indices of the instances in local cluster ``cluster_id``."""
        if cluster_id < 0:
            raise SupervisionError("cluster_id must be non-negative")
        indices = np.flatnonzero(self.labels == cluster_id)
        if indices.size == 0:
            raise SupervisionError(f"local cluster {cluster_id} is empty")
        return indices

    def cluster_index_sets(self) -> dict[int, np.ndarray]:
        """Mapping ``cluster_id -> member indices`` for all local clusters."""
        return {int(cid): self.members(int(cid)) for cid in self.cluster_ids}

    def cluster_sizes(self) -> dict[int, int]:
        """Mapping ``cluster_id -> number of members``."""
        return {cid: idx.shape[0] for cid, idx in self.cluster_index_sets().items()}

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_labels(cls, labels, *, metadata: dict | None = None) -> "LocalSupervision":
        """Build a supervision directly from a label vector with -1 gaps."""
        labels = np.asarray(labels, dtype=int)
        return cls(labels=labels, n_samples=labels.shape[0], metadata=metadata or {})

    @classmethod
    def from_full_partition(
        cls, labels, *, metadata: dict | None = None
    ) -> "LocalSupervision":
        """Build a supervision that covers every instance (no -1 entries).

        Useful for oracle experiments where the ground truth plays the role
        of the supervision.
        """
        labels = check_labels(labels, name="labels")
        if (labels < 0).any():
            raise SupervisionError(
                "from_full_partition expects non-negative labels only"
            )
        return cls(labels=labels, n_samples=labels.shape[0], metadata=metadata or {})

    # ---------------------------------------------------------------- utilities
    def restrict_to(self, indices) -> "LocalSupervision":
        """Supervision restricted to a subset of the dataset (e.g. a minibatch).

        Parameters
        ----------
        indices : 1-D integer array
            Positions (in dataset order) of the retained instances.  The
            returned supervision is indexed relative to this subset.

        Raises
        ------
        SupervisionError
            If no covered instance falls inside ``indices``.
        """
        indices = np.asarray(indices, dtype=int)
        if indices.ndim != 1:
            raise SupervisionError("indices must be 1-D")
        sub_labels = self.labels[indices]
        return LocalSupervision(
            labels=sub_labels,
            n_samples=indices.shape[0],
            metadata={**self.metadata, "restricted": True},
        )

    def summary(self) -> dict[str, float | int]:
        """Coverage statistics used in reports and logging."""
        sizes = self.cluster_sizes()
        return {
            "n_samples": self.n_samples,
            "n_covered": int(self.mask.sum()),
            "coverage": self.coverage,
            "n_clusters": self.n_clusters,
            "min_cluster_size": int(min(sizes.values())),
            "max_cluster_size": int(max(sizes.values())),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LocalSupervision(n_samples={self.n_samples}, "
            f"coverage={self.coverage:.2f}, n_clusters={self.n_clusters})"
        )
