"""Partition alignment.

Different clustering algorithms label the same groups with arbitrary integer
identifiers.  Before any voting can take place the partitions have to share a
common labelling; this module aligns each partition to a reference partition
with the Hungarian algorithm on their contingency table (maximum overlap
matching).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.exceptions import ValidationError
from repro.metrics.contingency import contingency_matrix, relabel_consecutive
from repro.utils.validation import check_labels, check_same_length

__all__ = ["align_to_reference", "align_partitions"]


def align_to_reference(reference, partition) -> np.ndarray:
    """Relabel ``partition`` so its clusters maximally overlap ``reference``.

    Clusters of ``partition`` that cannot be matched (more clusters than in
    the reference) keep fresh labels beyond the reference's label range so
    that no two source clusters are merged by the alignment.

    Returns
    -------
    ndarray of shape (n_samples,)
        The relabelled partition.
    """
    reference = check_labels(reference, name="reference")
    partition = check_labels(partition, name="partition")
    check_same_length(reference, partition, names=("reference", "partition"))

    table = contingency_matrix(reference, partition)
    _, reference_uniques = relabel_consecutive(reference)
    _, partition_uniques = relabel_consecutive(partition)

    row_ind, col_ind = linear_sum_assignment(-table)
    mapping: dict[int, int] = {}
    for ref_code, part_code in zip(row_ind, col_ind):
        mapping[int(partition_uniques[part_code])] = int(reference_uniques[ref_code])

    next_free = int(reference_uniques.max()) + 1
    for part_value in partition_uniques:
        if int(part_value) not in mapping:
            mapping[int(part_value)] = next_free
            next_free += 1

    return np.array([mapping[int(label)] for label in partition], dtype=int)


def align_partitions(partitions: list[np.ndarray]) -> list[np.ndarray]:
    """Align a list of partitions to the first one.

    Parameters
    ----------
    partitions : list of 1-D integer arrays, all of the same length.

    Returns
    -------
    list of ndarray
        The first partition unchanged followed by the aligned versions of the
        others.
    """
    if not partitions:
        raise ValidationError("align_partitions needs at least one partition")
    reference = check_labels(partitions[0], name="partitions[0]")
    aligned = [reference]
    for index, partition in enumerate(partitions[1:], start=1):
        partition = check_labels(partition, name=f"partitions[{index}]")
        check_same_length(
            reference, partition, names=("partitions[0]", f"partitions[{index}]")
        )
        aligned.append(align_to_reference(reference, partition))
    return aligned
