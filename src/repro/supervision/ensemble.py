"""Multi-clustering integration: base clusterers -> alignment -> voting.

This is the "self-learning" half of the paper's framework.  Several
unsupervised clustering algorithms partition the visible data, the partitions
are aligned to a common labelling, and a voting strategy (unanimous by
default) keeps only the instances on which the ensemble agrees.  The result
is a :class:`~repro.supervision.local_supervision.LocalSupervision` that
guides the contrastive-divergence learning of the sls models.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.registry import build_clusterer
from repro.exceptions import SupervisionError, ValidationError
from repro.supervision.alignment import align_partitions
from repro.supervision.local_supervision import LocalSupervision
from repro.supervision.voting import majority_vote, unanimous_vote
from repro.utils.rng import spawn_children
from repro.utils.validation import check_array, check_positive_int

__all__ = ["MultiClusteringIntegration"]

#: Base clusterers used in the paper (Section V.A.2): DP, K-means and AP.
DEFAULT_CLUSTERERS = ("dp", "kmeans", "ap")


class MultiClusteringIntegration:
    """Build self-learning local supervisions from an ensemble of clusterers.

    Parameters
    ----------
    n_clusters : int
        Number of clusters each base algorithm is asked for (the paper uses
        the ground-truth class count of each dataset).
    clusterers : sequence of str or BaseClusterer, default ("dp", "kmeans", "ap")
        Base algorithms.  Strings are resolved through
        :func:`repro.registry.build_clusterer` (any registered
        clusterer short name or alias is accepted).
    voting : {"unanimous", "majority"}, default "unanimous"
        Integration strategy; the paper uses unanimous voting.
    min_agreement : float, default 0.5
        Majority-voting threshold (ignored for unanimous voting).
    min_cluster_size : int, default 2
        Credible clusters smaller than this are dropped: a singleton cluster
        contributes nothing to the pairwise constriction term.
    random_state : int, Generator or None
        Seed; each base clusterer receives an independent child stream.

    Attributes
    ----------
    partitions_ : list of ndarray
        Raw partitions produced by the base clusterers (after ``fit``).
    aligned_partitions_ : list of ndarray
        The same partitions after Hungarian alignment.
    supervision_ : LocalSupervision
        The integrated local supervision.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        clusterers: Sequence[str | BaseClusterer] = DEFAULT_CLUSTERERS,
        voting: str = "unanimous",
        min_agreement: float = 0.5,
        min_cluster_size: int = 2,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        if not clusterers:
            raise ValidationError("at least one base clusterer is required")
        self.clusterers = tuple(clusterers)
        if voting not in ("unanimous", "majority"):
            raise ValidationError(
                f"voting must be 'unanimous' or 'majority', got {voting!r}"
            )
        self.voting = voting
        self.min_agreement = float(min_agreement)
        self.min_cluster_size = check_positive_int(
            min_cluster_size, name="min_cluster_size"
        )
        self.random_state = random_state

    # --------------------------------------------------------------------- API
    def fit(self, data) -> "MultiClusteringIntegration":
        """Run the base clusterers on ``data`` and integrate their partitions."""
        data = check_array(data, name="data")
        estimators = self._build_estimators()

        partitions = [np.asarray(est.fit_predict(data)) for est in estimators]
        aligned = align_partitions(partitions)

        if self.voting == "unanimous":
            labels, mask = unanimous_vote(aligned)
        else:
            labels, mask = majority_vote(aligned, min_agreement=self.min_agreement)

        labels = self._drop_small_clusters(labels)
        if not (labels >= 0).any():
            raise SupervisionError(
                "multi-clustering integration produced no credible cluster; "
                "the base clusterings disagree everywhere"
            )

        self.estimators_ = estimators
        self.partitions_ = partitions
        self.aligned_partitions_ = aligned
        self.agreement_rate_ = float(mask.mean())
        self.supervision_ = LocalSupervision(
            labels=labels,
            n_samples=data.shape[0],
            metadata={
                "clusterers": [est.name for est in estimators],
                "voting": self.voting,
                "agreement_rate": self.agreement_rate_,
                "n_clusters_requested": self.n_clusters,
            },
        )
        return self

    def fit_supervision(self, data) -> LocalSupervision:
        """Convenience wrapper returning the integrated supervision directly."""
        return self.fit(data).supervision_

    # ---------------------------------------------------------------- internals
    def _build_estimators(self) -> list[BaseClusterer]:
        streams = spawn_children(self.random_state, len(self.clusterers))
        estimators: list[BaseClusterer] = []
        for spec, stream in zip(self.clusterers, streams):
            if isinstance(spec, BaseClusterer):
                estimators.append(spec)
            else:
                estimators.append(
                    build_clusterer(str(spec), self.n_clusters, random_state=stream)
                )
        return estimators

    def _drop_small_clusters(self, labels: np.ndarray) -> np.ndarray:
        """Remove credible clusters with fewer than ``min_cluster_size`` members."""
        labels = labels.copy()
        values, counts = np.unique(labels[labels >= 0], return_counts=True)
        for value, count in zip(values, counts):
            if count < self.min_cluster_size:
                labels[labels == value] = -1
        return labels

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = [c if isinstance(c, str) else c.name for c in self.clusterers]
        return (
            f"MultiClusteringIntegration(n_clusters={self.n_clusters}, "
            f"clusterers={names}, voting={self.voting!r})"
        )
