"""Self-learning local supervision (multi-clustering integration).

This subpackage implements the paper's core data-side contribution: several
unsupervised clusterings of the visible data are aligned, combined by an
unanimous-voting strategy, and distilled into *local credible clusters* — the
``V_1..V_K`` subsets whose hidden representations the sls models constrict
together and whose centres they disperse.
"""

from repro.supervision.alignment import align_partitions, align_to_reference
from repro.supervision.ensemble import MultiClusteringIntegration
from repro.supervision.local_supervision import LocalSupervision
from repro.supervision.voting import majority_vote, unanimous_vote

__all__ = [
    "align_to_reference",
    "align_partitions",
    "unanimous_vote",
    "majority_vote",
    "LocalSupervision",
    "MultiClusteringIntegration",
]
