"""Voting strategies over aligned partitions.

The paper's self-learning local supervision keeps only the instances on which
*all* base clusterings agree (unanimous voting).  Majority voting is provided
as the ablation alternative discussed in the related-work section.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_labels, check_same_length

__all__ = ["unanimous_vote", "majority_vote", "agreement_mask"]


def _stack_partitions(partitions: list[np.ndarray]) -> np.ndarray:
    if not partitions:
        raise ValidationError("voting requires at least one partition")
    checked = []
    for index, partition in enumerate(partitions):
        checked.append(check_labels(partition, name=f"partitions[{index}]"))
    check_same_length(*checked, names=tuple(f"partitions[{i}]" for i in range(len(checked))))
    return np.vstack(checked)


def agreement_mask(partitions: list[np.ndarray]) -> np.ndarray:
    """Boolean mask of instances on which every aligned partition agrees."""
    stacked = _stack_partitions(partitions)
    return np.all(stacked == stacked[0], axis=0)


def unanimous_vote(partitions: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Unanimous-voting integration of aligned partitions.

    Parameters
    ----------
    partitions : list of aligned label vectors (same length, shared labelling).

    Returns
    -------
    labels : ndarray of shape (n_samples,)
        Consensus label where all partitions agree, ``-1`` elsewhere.
    mask : ndarray of shape (n_samples,) of bool
        True for the credible (unanimously agreed) instances.
    """
    stacked = _stack_partitions(partitions)
    mask = np.all(stacked == stacked[0], axis=0)
    labels = np.where(mask, stacked[0], -1)
    return labels, mask


def majority_vote(
    partitions: list[np.ndarray], *, min_agreement: float = 0.5
) -> tuple[np.ndarray, np.ndarray]:
    """Majority-voting integration of aligned partitions.

    Parameters
    ----------
    partitions : list of aligned label vectors.
    min_agreement : float in (0, 1], default 0.5
        Minimum fraction of partitions that must agree on the winning label
        for an instance to be kept (strictly greater than this fraction).

    Returns
    -------
    labels : ndarray
        Winning label per instance, ``-1`` where the agreement threshold is
        not met.
    mask : ndarray of bool
        True for kept instances.
    """
    if not 0.0 < min_agreement <= 1.0:
        raise ValidationError(
            f"min_agreement must lie in (0, 1], got {min_agreement}"
        )
    stacked = _stack_partitions(partitions)
    n_partitions, n_samples = stacked.shape

    labels = np.full(n_samples, -1, dtype=int)
    mask = np.zeros(n_samples, dtype=bool)
    for index in range(n_samples):
        values, counts = np.unique(stacked[:, index], return_counts=True)
        winner = int(np.argmax(counts))
        fraction = counts[winner] / n_partitions
        if fraction > min_agreement or np.isclose(fraction, 1.0):
            labels[index] = int(values[winner])
            mask[index] = True
    return labels, mask
