"""Cluster purity (Eq. 38 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.metrics.contingency import contingency_matrix

__all__ = ["purity_score"]


def purity_score(labels_true, labels_pred) -> float:
    """Purity of a clustering with respect to ground-truth classes.

    Each cluster is credited with its majority class; purity is the fraction
    of all samples that belong to the majority class of their cluster.  The
    value lies in ``(0, 1]`` and equals 1 when every cluster is pure.
    """
    table = contingency_matrix(labels_true, labels_pred)
    n = table.sum()
    return float(table.max(axis=0).sum() / n)
