"""Normalised mutual information (extra diagnostic, not in the paper's tables)."""

from __future__ import annotations

import numpy as np

from repro.metrics.contingency import contingency_matrix

__all__ = ["normalized_mutual_information"]


def _entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of a count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-np.sum(probabilities * np.log(probabilities)))


def normalized_mutual_information(labels_true, labels_pred) -> float:
    """NMI with arithmetic-mean normalisation, in ``[0, 1]``.

    Returns 1.0 when both partitions are identical single-cluster partitions
    (the degenerate case where both entropies are zero).
    """
    table = contingency_matrix(labels_true, labels_pred).astype(float)
    n = table.sum()
    joint = table / n
    row_marginal = joint.sum(axis=1, keepdims=True)
    col_marginal = joint.sum(axis=0, keepdims=True)

    mask = joint > 0
    mutual_information = float(
        np.sum(
            joint[mask]
            * (np.log(joint[mask]) - np.log((row_marginal @ col_marginal)[mask]))
        )
    )

    h_true = _entropy(table.sum(axis=1))
    h_pred = _entropy(table.sum(axis=0))
    normaliser = 0.5 * (h_true + h_pred)
    if normaliser == 0.0:
        return 1.0
    return float(np.clip(mutual_information / normaliser, 0.0, 1.0))
