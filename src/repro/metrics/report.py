"""Aggregate evaluation report combining every external metric.

The experiment harness evaluates each (dataset, algorithm) cell of the
paper's tables with all metrics at once; this module provides the small value
object used for that purpose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.accuracy import clustering_accuracy
from repro.metrics.fmi import fowlkes_mallows_index
from repro.metrics.nmi import normalized_mutual_information
from repro.metrics.purity import purity_score
from repro.metrics.rand import adjusted_rand_index, rand_index

__all__ = ["ClusteringReport", "evaluate_clustering"]


@dataclass(frozen=True)
class ClusteringReport:
    """All external metrics for one clustering result.

    Attributes mirror the metric names used throughout the paper's tables.
    """

    accuracy: float
    purity: float
    rand: float
    adjusted_rand: float
    fmi: float
    nmi: float
    n_samples: int
    n_clusters: int
    extras: dict = field(default_factory=dict)

    def as_dict(self) -> dict[str, float]:
        """Plain dictionary of the metric values (without metadata)."""
        return {
            "accuracy": self.accuracy,
            "purity": self.purity,
            "rand": self.rand,
            "adjusted_rand": self.adjusted_rand,
            "fmi": self.fmi,
            "nmi": self.nmi,
        }

    def __getitem__(self, key: str) -> float:
        return self.as_dict()[key]

    def to_payload(self) -> dict:
        """JSON-safe dictionary carrying every field of the report.

        Python's JSON encoder emits the shortest float repr that round-trips
        exactly, so ``from_payload(json.loads(json.dumps(to_payload())))``
        reconstructs a bit-identical report — the property the distributed
        experiment protocol and :meth:`ExperimentTable.to_dict` rely on.
        """
        return {
            **self.as_dict(),
            "n_samples": self.n_samples,
            "n_clusters": self.n_clusters,
            "extras": dict(self.extras),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ClusteringReport":
        """Rebuild a report from :meth:`to_payload` output."""
        return cls(
            accuracy=float(payload["accuracy"]),
            purity=float(payload["purity"]),
            rand=float(payload["rand"]),
            adjusted_rand=float(payload["adjusted_rand"]),
            fmi=float(payload["fmi"]),
            nmi=float(payload["nmi"]),
            n_samples=int(payload["n_samples"]),
            n_clusters=int(payload["n_clusters"]),
            extras=dict(payload.get("extras", {})),
        )


def evaluate_clustering(labels_true, labels_pred) -> ClusteringReport:
    """Compute every external metric for a predicted clustering."""
    labels_true = np.asarray(labels_true)
    labels_pred = np.asarray(labels_pred)
    return ClusteringReport(
        accuracy=clustering_accuracy(labels_true, labels_pred),
        purity=purity_score(labels_true, labels_pred),
        rand=rand_index(labels_true, labels_pred),
        adjusted_rand=adjusted_rand_index(labels_true, labels_pred),
        fmi=fowlkes_mallows_index(labels_true, labels_pred),
        nmi=normalized_mutual_information(labels_true, labels_pred),
        n_samples=int(labels_true.shape[0]),
        n_clusters=int(np.unique(labels_pred).shape[0]),
    )
