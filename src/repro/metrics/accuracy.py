"""Clustering accuracy (Eq. 36 of the paper).

The predicted cluster identifiers are mapped onto the ground-truth classes by
the permutation that maximises agreement (solved exactly with the Hungarian
algorithm on the contingency table), after which the fraction of correctly
mapped samples is reported.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linear_sum_assignment

from repro.metrics.contingency import contingency_matrix, relabel_consecutive
from repro.utils.validation import check_labels, check_same_length

__all__ = ["clustering_accuracy", "best_label_mapping"]


def best_label_mapping(labels_true, labels_pred) -> dict[int, int]:
    """Optimal mapping from predicted cluster labels to true class labels.

    Returns a dictionary ``{predicted_label: true_label}``.  When the number
    of predicted clusters exceeds the number of classes, surplus clusters are
    mapped greedily to their majority class.
    """
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, name="labels_pred")
    check_same_length(labels_true, labels_pred, names=("labels_true", "labels_pred"))

    table = contingency_matrix(labels_true, labels_pred)
    _, true_uniques = relabel_consecutive(labels_true)
    _, pred_uniques = relabel_consecutive(labels_pred)

    # Hungarian assignment on the (clusters x classes) transpose.  Each
    # cluster's majority count is subtracted from its row first: a cluster
    # left out of the assignment still contributes its majority class via
    # the fallback below, so the quantity the assignment actually controls
    # is the *gain over majority*, not the raw matched count.  Without this
    # adjustment, ties between surplus clusters are broken by cluster
    # numbering and the resulting accuracy is not invariant to relabelling
    # the predicted clusters.
    cost = -(table.T - table.max(axis=0)[:, None])
    row_ind, col_ind = linear_sum_assignment(cost)
    mapping: dict[int, int] = {}
    for pred_code, true_code in zip(row_ind, col_ind):
        mapping[int(pred_uniques[pred_code])] = int(true_uniques[true_code])

    # Clusters not covered by the assignment (more clusters than classes):
    # fall back to majority class for each.
    for pred_code, pred_value in enumerate(pred_uniques):
        if int(pred_value) not in mapping:
            majority_code = int(np.argmax(table[:, pred_code]))
            mapping[int(pred_value)] = int(true_uniques[majority_code])
    return mapping


def clustering_accuracy(labels_true, labels_pred) -> float:
    """Clustering accuracy ``AC`` in ``[0, 1]`` (Eq. 36).

    Examples
    --------
    >>> clustering_accuracy([0, 0, 1, 1], [1, 1, 0, 0])
    1.0
    """
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, name="labels_pred")
    check_same_length(labels_true, labels_pred, names=("labels_true", "labels_pred"))

    mapping = best_label_mapping(labels_true, labels_pred)
    # Array lookup table over the k distinct predicted labels instead of a
    # Python dict lookup per sample.
    pred_codes, pred_uniques = relabel_consecutive(labels_pred)
    lookup = np.array([mapping[int(value)] for value in pred_uniques])
    mapped = lookup[pred_codes]
    return float(np.mean(mapped == labels_true))
