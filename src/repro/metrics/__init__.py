"""External clustering evaluation metrics used in the paper's evaluation.

The paper evaluates datasets I (MSRA-MM-like) with clustering accuracy,
purity and the Fowlkes–Mallows index, and datasets II (UCI-like) with
accuracy, the Rand index and the Fowlkes–Mallows index.  Adjusted Rand index
and normalised mutual information are provided as extra diagnostics.
"""

from repro.metrics.accuracy import clustering_accuracy, best_label_mapping
from repro.metrics.contingency import contingency_matrix, pair_confusion_matrix
from repro.metrics.fmi import fowlkes_mallows_index
from repro.metrics.nmi import normalized_mutual_information
from repro.metrics.purity import purity_score
from repro.metrics.rand import adjusted_rand_index, rand_index
from repro.metrics.report import ClusteringReport, evaluate_clustering

__all__ = [
    "clustering_accuracy",
    "best_label_mapping",
    "purity_score",
    "rand_index",
    "adjusted_rand_index",
    "fowlkes_mallows_index",
    "normalized_mutual_information",
    "contingency_matrix",
    "pair_confusion_matrix",
    "ClusteringReport",
    "evaluate_clustering",
]
