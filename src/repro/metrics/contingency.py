"""Contingency tables shared by the external clustering metrics."""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_labels, check_same_length

__all__ = ["contingency_matrix", "pair_confusion_matrix", "relabel_consecutive"]


def relabel_consecutive(labels: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map arbitrary integer labels to consecutive ``0..k-1`` codes.

    Returns
    -------
    codes : ndarray of shape (n,)
        Relabelled vector.
    uniques : ndarray of shape (k,)
        Original label value for each code.
    """
    labels = check_labels(labels, name="labels")
    uniques, codes = np.unique(labels, return_inverse=True)
    return codes, uniques


def contingency_matrix(labels_true, labels_pred) -> np.ndarray:
    """Contingency table ``C[i, j]`` counting samples with true class ``i``
    assigned to predicted cluster ``j``.

    Both label vectors may use arbitrary integer identifiers; rows and columns
    follow the sorted unique values of each vector.
    """
    labels_true = check_labels(labels_true, name="labels_true")
    labels_pred = check_labels(labels_pred, name="labels_pred")
    check_same_length(labels_true, labels_pred, names=("labels_true", "labels_pred"))

    true_codes, true_uniques = relabel_consecutive(labels_true)
    pred_codes, pred_uniques = relabel_consecutive(labels_pred)
    n_true = true_uniques.shape[0]
    n_pred = pred_uniques.shape[0]

    table = np.zeros((n_true, n_pred), dtype=np.int64)
    np.add.at(table, (true_codes, pred_codes), 1)
    return table


def pair_confusion_matrix(labels_true, labels_pred) -> np.ndarray:
    """2x2 pair confusion matrix ``[[N_dd, N_ds], [N_sd, N_ss]]``.

    Counts unordered pairs of samples that are placed in the same / different
    groups by the true labelling (rows) and the predicted clustering
    (columns).  ``N_ss`` (both same) corresponds to true positives, ``N_dd``
    to true negatives.
    """
    table = contingency_matrix(labels_true, labels_pred).astype(np.float64)
    n = table.sum()
    sum_squares = (table**2).sum()
    row_sums = table.sum(axis=1)
    col_sums = table.sum(axis=0)

    same_same = 0.5 * (sum_squares - n)
    same_diff = 0.5 * ((row_sums**2).sum() - sum_squares)
    diff_same = 0.5 * ((col_sums**2).sum() - sum_squares)
    total_pairs = n * (n - 1) / 2.0
    diff_diff = total_pairs - same_same - same_diff - diff_same

    return np.array(
        [[diff_diff, diff_same], [same_diff, same_same]], dtype=np.float64
    )
