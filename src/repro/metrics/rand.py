"""Rand index (Eq. 37 of the paper) and adjusted Rand index."""

from __future__ import annotations

from repro.metrics.contingency import pair_confusion_matrix

__all__ = ["rand_index", "adjusted_rand_index"]


def rand_index(labels_true, labels_pred) -> float:
    """Rand index in ``[0, 1]``.

    ``(N_ss + N_dd) / (N_ss + N_sd + N_ds + N_dd)`` where the four counts are
    the pair-level agreements/disagreements between the two partitions.
    """
    pairs = pair_confusion_matrix(labels_true, labels_pred)
    total = pairs.sum()
    if total == 0:  # single sample: the two trivial partitions agree
        return 1.0
    agreements = pairs[0, 0] + pairs[1, 1]
    return float(agreements / total)


def adjusted_rand_index(labels_true, labels_pred) -> float:
    """Adjusted Rand index (chance-corrected), in ``[-1, 1]``."""
    pairs = pair_confusion_matrix(labels_true, labels_pred)
    tn, fp = pairs[0, 0], pairs[0, 1]
    fn, tp = pairs[1, 0], pairs[1, 1]
    numerator = 2.0 * (tp * tn - fn * fp)
    denominator = (tp + fn) * (fn + tn) + (tp + fp) * (fp + tn)
    if denominator == 0:
        # Both partitions are identical trivial partitions.
        return 1.0
    return float(numerator / denominator)
