"""Fowlkes–Mallows index (Eq. 39 of the paper)."""

from __future__ import annotations

import numpy as np

from repro.metrics.contingency import pair_confusion_matrix

__all__ = ["fowlkes_mallows_index"]


def fowlkes_mallows_index(labels_true, labels_pred) -> float:
    """Fowlkes–Mallows index ``sqrt(TP/(TP+FP) * TP/(TP+FN))`` in ``[0, 1]``.

    ``TP`` counts sample pairs grouped together by both partitions, ``FP``
    pairs grouped only by the prediction and ``FN`` pairs grouped only by the
    ground truth.  Returns 0 when the prediction produces no co-clustered
    pair at all.
    """
    pairs = pair_confusion_matrix(labels_true, labels_pred)
    tp = pairs[1, 1]
    fn = pairs[1, 0]
    fp = pairs[0, 1]
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return float(np.sqrt(precision * recall))
