"""The estimator protocol shared by every public component.

Every encoder, clusterer, framework and pipeline in :mod:`repro` follows one
small contract so that the component registry (:mod:`repro.registry`), the
persistence layer and the serving layer can treat them uniformly:

* constructor arguments are plain values stored under the same attribute
  name (``KMeans(n_clusters=3).n_clusters == 3``);
* :meth:`~EstimatorMixin.get_params` / :meth:`~EstimatorMixin.set_params`
  expose those arguments as a dictionary (sklearn-style, with ``deep=True``
  expanding nested estimators as ``name__param`` entries);
* :meth:`~EstimatorMixin.clone` produces an unfitted copy with identical
  parameters;
* :attr:`~EstimatorMixin.is_fitted` reports whether the estimator holds
  fitted state, and fitted-only attributes raise
  :class:`~repro.exceptions.NotFittedError` before ``fit``.

``EstimatorMixin`` implements the whole contract by introspecting the
constructor signature, so concrete classes only need to keep the
"store arguments under their own name" convention.
"""

from __future__ import annotations

import copy
import inspect

from repro.exceptions import NotFittedError, ValidationError

__all__ = ["EstimatorMixin", "clone", "is_estimator", "supports_transform"]


def is_estimator(obj) -> bool:
    """Whether ``obj`` implements the estimator protocol (duck-typed)."""
    return (
        hasattr(obj, "get_params")
        and hasattr(obj, "set_params")
        and hasattr(obj, "clone")
        and hasattr(type(obj), "is_fitted")
    )


def supports_transform(obj) -> bool:
    """Whether ``obj`` can act as an encoder step (``fit_transform`` +
    ``transform``)."""
    return hasattr(obj, "fit_transform") and hasattr(obj, "transform")


def clone(estimator):
    """Unfitted copy of ``estimator`` with identical parameters.

    Functional counterpart of :meth:`EstimatorMixin.clone`; accepts any
    object implementing the protocol.
    """
    if not hasattr(estimator, "clone"):
        raise ValidationError(
            f"{type(estimator).__name__} does not implement the estimator "
            "protocol (no clone method)"
        )
    return estimator.clone()


def _clone_value(value):
    """Deep-copy a parameter value, cloning nested estimators."""
    if is_estimator(value):
        return value.clone()
    if isinstance(value, (list, tuple)):
        cloned = [_clone_value(item) for item in value]
        return type(value)(cloned) if isinstance(value, tuple) else cloned
    return copy.deepcopy(value)


class EstimatorMixin:
    """Default implementation of the estimator protocol.

    Subclasses must store every constructor argument under an attribute of
    the same name and keep fitted state in attributes with a trailing
    underscore (``labels_``, ``weights_``, ...).
    """

    # ------------------------------------------------------------- parameters
    @classmethod
    def _get_param_names(cls) -> tuple[str, ...]:
        """Constructor parameter names, collected across the MRO.

        Walks ``__init__`` signatures from the most-derived class upwards;
        classes that forward ``**kwargs`` pull in the parameters of their
        parents (the sls models forward to the mixin and :class:`BaseRBM`).
        """
        names: list[str] = []
        for klass in cls.__mro__:
            init = vars(klass).get("__init__")
            if init is None or klass is object:
                continue
            try:
                signature = inspect.signature(init)
            except (TypeError, ValueError):  # pragma: no cover - C extensions
                continue
            has_var_keyword = False
            for parameter in signature.parameters.values():
                if parameter.name == "self":
                    continue
                if parameter.kind in (
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY,
                ):
                    if parameter.name not in names:
                        names.append(parameter.name)
                elif parameter.kind is inspect.Parameter.VAR_KEYWORD:
                    has_var_keyword = True
            if not has_var_keyword:
                break
        return tuple(names)

    def _named_children(self) -> dict:
        """Nested estimators exposed for ``deep`` parameter access.

        The default looks for parameters whose value implements the protocol;
        composite estimators (:class:`~repro.core.pipeline.Pipeline`) override
        this to expose their named steps.
        """
        children = {}
        for name in self._get_param_names():
            value = getattr(self, name, None)
            if is_estimator(value):
                children[name] = value
        return children

    def get_params(self, deep: bool = True) -> dict:
        """Constructor parameters of this estimator.

        Parameters
        ----------
        deep : bool, default True
            Also include the parameters of nested estimators as
            ``<child>__<param>`` entries.
        """
        params = {}
        for name in self._get_param_names():
            if not hasattr(self, name):
                raise ValidationError(
                    f"{type(self).__name__} does not store constructor "
                    f"argument {name!r} as an attribute; the estimator "
                    "protocol requires it"
                )
            params[name] = getattr(self, name)
        if deep:
            for child_name, child in self._named_children().items():
                for key, value in child.get_params(deep=True).items():
                    params[f"{child_name}__{key}"] = value
        return params

    def set_params(self, **params) -> "EstimatorMixin":
        """Update constructor parameters in place.

        Values pass through the constructor, so the usual validation and
        coercion apply (``set_params(learning_rate=-1)`` raises exactly like
        construction would).  ``<child>__<param>`` entries are routed to the
        nested estimator's :meth:`set_params`.  Returns ``self``.
        """
        if not params:
            return self
        valid = set(self._get_param_names())
        children = self._named_children()
        nested: dict[str, dict] = {}
        flat: dict = {}
        for key, value in params.items():
            if "__" in key:
                child_name, _, sub_key = key.partition("__")
                if child_name not in children:
                    raise ValidationError(
                        f"invalid parameter {key!r} for {type(self).__name__}: "
                        f"no nested estimator named {child_name!r}"
                    )
                nested.setdefault(child_name, {})[sub_key] = value
            elif key in valid:
                flat[key] = value
            else:
                raise ValidationError(
                    f"invalid parameter {key!r} for {type(self).__name__}; "
                    f"valid parameters: {sorted(valid)}"
                )
        for child_name, child_params in nested.items():
            children[child_name].set_params(**child_params)
        if flat:
            merged = self.get_params(deep=False)
            merged.update(flat)
            fresh = type(self)(**merged)
            for name in self._get_param_names():
                setattr(self, name, getattr(fresh, name))
        return self

    # ------------------------------------------------------------------ clone
    def clone(self) -> "EstimatorMixin":
        """Unfitted copy with identical (deep-copied) parameters."""
        params = {
            name: _clone_value(value)
            for name, value in self.get_params(deep=False).items()
        }
        return type(self)(**params)

    # ---------------------------------------------------------------- fitting
    @property
    def is_fitted(self) -> bool:
        """Whether the estimator holds fitted state.

        The default checks for any public attribute with a trailing
        underscore (the fitted-attribute convention); subclasses with a
        well-known fitted attribute override this with a cheaper check.
        """
        return any(
            key.endswith("_") and not key.startswith("_") for key in vars(self)
        )

    def _check_fitted(self) -> None:
        """Raise :class:`NotFittedError` unless :attr:`is_fitted`."""
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} instance is not fitted yet; "
                "call fit() first"
            )
