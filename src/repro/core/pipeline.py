"""Composable pipelines: preprocess -> encode [-> encode ...] -> cluster.

Two layers live here:

* :class:`Pipeline` — the general N-step estimator.  Every step but the last
  must be a transformer (``fit_transform`` / ``transform``); the final step
  may be a clusterer (``fit_predict``) or another transformer, in which case
  the pipeline itself is an encoder.  Steps are estimators following the
  shared protocol, so a pipeline is buildable from a registry spec —
  including *stacked* encoders (framework feeding framework), a scenario the
  paper's architecture implies but the fixed two-stage pipeline could not
  express.
* :class:`ClusteringPipeline` — the paper-evaluation convenience wrapping
  one cell of the result tables ("<clusterer>[+<model>]"): an optional
  encoding framework, a freshly built downstream clusterer and the external
  metrics.  It is implemented on top of :class:`Pipeline` and the component
  registry.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass

import numpy as np

from repro.core.estimator import EstimatorMixin, is_estimator, supports_transform
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.base import Dataset
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics.report import ClusteringReport, evaluate_clustering
from repro.utils.validation import check_positive_int

__all__ = ["Pipeline", "ClusteringPipeline", "PipelineResult"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one (dataset, algorithm) evaluation cell.

    Attributes
    ----------
    algorithm : str
        Human-readable name, e.g. ``"DP+slsGRBM"``.
    dataset : str
        Dataset abbreviation.
    labels : ndarray
        Predicted cluster assignment.
    report : ClusteringReport
        All external metrics against the ground truth.
    """

    algorithm: str
    dataset: str
    labels: np.ndarray
    report: ClusteringReport


def _accepts_supervision(estimator) -> bool:
    """Whether ``estimator.fit`` takes a ``supervision`` keyword."""
    try:
        signature = inspect.signature(estimator.fit)
    except (AttributeError, TypeError, ValueError):
        return False
    return "supervision" in signature.parameters


class Pipeline(EstimatorMixin):
    """Chain of estimator steps applied in sequence.

    Parameters
    ----------
    steps : sequence
        Estimators, or ``(name, estimator)`` pairs.  Unnamed steps are named
        ``step<i>``.  All but the last step must be transformers; the final
        step is either a clusterer (the pipeline then exposes
        :meth:`fit_predict` and ``labels_``) or a transformer (the pipeline
        is an encoder and :meth:`transform` runs every step).

    Examples
    --------
    Stacked (deep) encoding from one registry spec::

        from repro import registry
        pipeline = registry.build({
            "type": "pipeline",
            "params": {"steps": [
                ["first", {"type": "framework", "params": {...}}],
                ["second", {"type": "framework", "params": {...}}],
                ["cluster", {"type": "kmeans", "params": {"n_clusters": 3}}],
            ]},
        })
        labels = pipeline.fit_predict(data)
    """

    def __init__(self, steps) -> None:
        normalized: list[tuple[str, object]] = []
        if is_estimator(steps):
            steps = [steps]
        for index, step in enumerate(steps):
            if (
                isinstance(step, (tuple, list))
                and len(step) == 2
                and isinstance(step[0], str)
            ):
                name, estimator = step
            else:
                name, estimator = f"step{index}", step
            if not is_estimator(estimator):
                raise ValidationError(
                    f"pipeline step {name!r} does not implement the estimator "
                    f"protocol: {type(estimator).__name__}"
                )
            if any(existing == name for existing, _ in normalized):
                raise ValidationError(f"duplicate pipeline step name {name!r}")
            normalized.append((name, estimator))
        if not normalized:
            raise ValidationError("a pipeline needs at least one step")
        for name, estimator in normalized[:-1]:
            if not supports_transform(estimator):
                raise ValidationError(
                    f"intermediate pipeline step {name!r} must be a "
                    f"transformer; {type(estimator).__name__} has no transform"
                )
        self.steps = normalized

    # ------------------------------------------------------------- introspection
    @property
    def named_steps(self) -> dict:
        """Mapping of step name to estimator."""
        return dict(self.steps)

    def __getitem__(self, key):
        if isinstance(key, int):
            return self.steps[key][1]
        return self.named_steps[key]

    def __len__(self) -> int:
        return len(self.steps)

    def _named_children(self) -> dict:
        return self.named_steps

    @property
    def final_step(self):
        """The last estimator of the chain."""
        return self.steps[-1][1]

    @property
    def is_clustering(self) -> bool:
        """Whether the final step produces a cluster assignment."""
        return hasattr(self.final_step, "fit_predict") and not supports_transform(
            self.final_step
        )

    @property
    def is_fitted(self) -> bool:
        return hasattr(self, "n_features_in_")

    # ------------------------------------------------------------------ fitting
    def _fit_transformers(self, data, supervision):
        features = data
        for name, estimator in self.steps[:-1]:
            if supervision is not None and _accepts_supervision(estimator):
                features = estimator.fit_transform(features, supervision=supervision)
                supervision = None  # consumed by the first supervised encoder
            else:
                features = estimator.fit_transform(features)
        return features, supervision

    def _fit(self, data, supervision) -> np.ndarray:
        """Fit every step and return the output of the last transformer."""
        data = np.asarray(data)
        features, supervision = self._fit_transformers(data, supervision)
        final = self.final_step
        if hasattr(final, "fit_predict") and not supports_transform(final):
            self.labels_ = final.fit_predict(features)
        elif supervision is not None and _accepts_supervision(final):
            features = final.fit_transform(features, supervision=supervision)
        else:
            features = final.fit_transform(features)
        self.n_features_in_ = data.shape[1]
        return features

    def fit(self, data, *, supervision=None) -> "Pipeline":
        """Fit every step in sequence.

        ``supervision`` (a :class:`~repro.supervision.LocalSupervision`) is
        forwarded to the first step whose ``fit`` accepts it — the encoding
        frameworks — and computed internally by that step when omitted.
        """
        self._fit(data, supervision)
        return self

    def fit_predict(self, data, *, supervision=None) -> np.ndarray:
        """Fit the pipeline and return the final clustering assignment."""
        self._fit(data, supervision)
        if not hasattr(self, "labels_"):
            final = self.final_step
            if not hasattr(final, "labels_"):
                raise ValidationError(
                    f"final pipeline step {type(final).__name__} does not "
                    "produce a cluster assignment; use transform() instead"
                )
            self.labels_ = final.labels_
        return self.labels_

    def fit_transform(self, data, *, supervision=None) -> np.ndarray:
        """Fit the pipeline and return the features after the last
        transformer step (computed once, during the fit itself)."""
        return self._fit(data, supervision)

    def transform(self, data) -> np.ndarray:
        """Push new data through every (fitted) transformer step."""
        self._check_fitted()
        features = np.asarray(data)
        transform_steps = (
            self.steps[:-1] if self.is_clustering else self.steps
        )
        for _, estimator in transform_steps:
            features = estimator.transform(features)
        return features

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"({name!r}, {type(est).__name__})" for name, est in self.steps
        )
        return f"Pipeline([{inner}])"


class ClusteringPipeline(EstimatorMixin):
    """Evaluate one algorithm cell of the paper's tables.

    Parameters
    ----------
    clusterer : str
        Downstream clusterer short name ("dp", "kmeans", "ap", ...).
    framework : SelfLearningEncodingFramework or None
        Feature learner applied before clustering; ``None`` clusters the raw
        (preprocessed by the clusterer itself) data, reproducing the "DP",
        "K-means", "AP" baseline columns.
    n_clusters : int
        Number of clusters for the downstream algorithm.
    random_state : int or None
        Seed for the downstream clusterer.
    """

    def __init__(
        self,
        clusterer: str,
        *,
        framework: SelfLearningEncodingFramework | dict | None = None,
        n_clusters: int,
        random_state: int | None = 0,
    ) -> None:
        self.clusterer = str(clusterer)
        if isinstance(framework, dict):
            from repro import registry  # local import to avoid a cycle

            framework = registry.build(framework, kind="framework")
        self.framework = framework
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.random_state = random_state

    @property
    def clusterer_name(self) -> str:
        """Alias for :attr:`clusterer` (pre-protocol attribute name)."""
        return self.clusterer

    @property
    def algorithm_name(self) -> str:
        """Name in the paper's convention, e.g. ``"K-means+slsGRBM"``."""
        base = {
            "dp": "DP",
            "density_peaks": "DP",
            "kmeans": "K-means",
            "k-means": "K-means",
            "minibatch_kmeans": "MB-K-means",
            "ap": "AP",
            "affinity_propagation": "AP",
        }.get(self.clusterer.lower(), self.clusterer)
        if self.framework is None:
            return base
        model = {
            "sls_grbm": "slsGRBM",
            "sls_rbm": "slsRBM",
            "grbm": "GRBM",
            "rbm": "RBM",
        }[self.framework.config.model]
        return f"{base}+{model}"

    def build_clusterer(self):
        """A fresh downstream clusterer built from the registry."""
        from repro import registry  # local import to avoid a cycle

        return registry.build_clusterer(
            self.clusterer, self.n_clusters, random_state=self.random_state
        )

    @property
    def is_fitted(self) -> bool:
        return hasattr(self, "labels_")

    def run(
        self, dataset: Dataset, *, supervision=None, reuse_fitted: bool = False
    ) -> PipelineResult:
        """Fit (optionally) the framework, cluster, and evaluate on ``dataset``.

        Parameters
        ----------
        dataset : Dataset
        supervision : LocalSupervision, optional
            Pre-computed supervision forwarded to the framework fit; lets the
            experiment runner reuse one multi-clustering integration across
            the cells that share it.
        reuse_fitted : bool, default False
            Treat an already-fitted framework (e.g. loaded through
            :func:`repro.persistence.load_framework` for a warm start) as
            final and produce features with :meth:`transform` instead of
            refitting.  Off by default so that reusing one pipeline object
            across datasets keeps refitting per dataset.
        """
        if self.framework is None:
            features = dataset.data
        elif reuse_fitted and self.framework.is_fitted:
            features = self.framework.transform(dataset.data)
        else:
            features = self.framework.fit_transform(
                dataset.data, supervision=supervision
            )

        labels = self.build_clusterer().fit_predict(features)
        report = evaluate_clustering(dataset.labels, labels)
        self.labels_ = labels
        return PipelineResult(
            algorithm=self.algorithm_name,
            dataset=dataset.abbreviation,
            labels=labels,
            report=report,
        )

    def fit_predict(self, data) -> np.ndarray:
        """Encode (fitting the framework if needed) and cluster ``data``.

        The spec-built counterpart of :meth:`run` for unlabelled inputs:
        returns only the assignment, computing no external metrics.
        """
        if self.framework is None:
            features = np.asarray(data)
        else:
            features = self.framework.fit_transform(data)
        self.labels_ = self.build_clusterer().fit_predict(features)
        return self.labels_

    def as_pipeline(self) -> Pipeline:
        """This cell as a general :class:`Pipeline` (encode -> cluster)."""
        steps: list[tuple[str, object]] = []
        if self.framework is not None:
            steps.append(("encode", self.framework))
        steps.append(("cluster", self.build_clusterer()))
        return Pipeline(steps)

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                "ClusteringPipeline has not produced labels yet; "
                "call run() or fit_predict() first"
            )
