"""Clustering pipeline: feature learner -> downstream clusterer -> metrics.

The paper's evaluation compares nine algorithms per dataset, each of the form
"<clusterer>" (raw data), "<clusterer>+<plain model>" or
"<clusterer>+<sls model>".  ``ClusteringPipeline`` expresses one such cell:
an optional encoding framework followed by a downstream clusterer, evaluated
with the external metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.registry import make_clusterer
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.base import Dataset
from repro.metrics.report import ClusteringReport, evaluate_clustering
from repro.utils.validation import check_positive_int

__all__ = ["ClusteringPipeline", "PipelineResult"]


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of one (dataset, algorithm) evaluation cell.

    Attributes
    ----------
    algorithm : str
        Human-readable name, e.g. ``"DP+slsGRBM"``.
    dataset : str
        Dataset abbreviation.
    labels : ndarray
        Predicted cluster assignment.
    report : ClusteringReport
        All external metrics against the ground truth.
    """

    algorithm: str
    dataset: str
    labels: np.ndarray
    report: ClusteringReport


class ClusteringPipeline:
    """Evaluate one algorithm cell of the paper's tables.

    Parameters
    ----------
    clusterer : str
        Downstream clusterer short name ("dp", "kmeans", "ap", ...).
    framework : SelfLearningEncodingFramework or None
        Feature learner applied before clustering; ``None`` clusters the raw
        (preprocessed by the clusterer itself) data, reproducing the "DP",
        "K-means", "AP" baseline columns.
    n_clusters : int
        Number of clusters for the downstream algorithm.
    random_state : int or None
        Seed for the downstream clusterer.
    """

    def __init__(
        self,
        clusterer: str,
        *,
        framework: SelfLearningEncodingFramework | None = None,
        n_clusters: int,
        random_state: int | None = 0,
    ) -> None:
        self.clusterer_name = str(clusterer)
        self.framework = framework
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.random_state = random_state

    @property
    def algorithm_name(self) -> str:
        """Name in the paper's convention, e.g. ``"K-means+slsGRBM"``."""
        base = {
            "dp": "DP",
            "density_peaks": "DP",
            "kmeans": "K-means",
            "k-means": "K-means",
            "ap": "AP",
            "affinity_propagation": "AP",
        }.get(self.clusterer_name.lower(), self.clusterer_name)
        if self.framework is None:
            return base
        model = {
            "sls_grbm": "slsGRBM",
            "sls_rbm": "slsRBM",
            "grbm": "GRBM",
            "rbm": "RBM",
        }[self.framework.config.model]
        return f"{base}+{model}"

    def run(
        self, dataset: Dataset, *, supervision=None, reuse_fitted: bool = False
    ) -> PipelineResult:
        """Fit (optionally) the framework, cluster, and evaluate on ``dataset``.

        Parameters
        ----------
        dataset : Dataset
        supervision : LocalSupervision, optional
            Pre-computed supervision forwarded to the framework fit; lets the
            experiment runner reuse one multi-clustering integration across
            the cells that share it.
        reuse_fitted : bool, default False
            Treat an already-fitted framework (e.g. loaded through
            :func:`repro.persistence.load_framework` for a warm start) as
            final and produce features with :meth:`transform` instead of
            refitting.  Off by default so that reusing one pipeline object
            across datasets keeps refitting per dataset.
        """
        if self.framework is None:
            features = dataset.data
        elif reuse_fitted and self.framework.is_fitted:
            features = self.framework.transform(dataset.data)
        else:
            features = self.framework.fit_transform(dataset.data, supervision=supervision)

        clusterer = make_clusterer(
            self.clusterer_name, self.n_clusters, random_state=self.random_state
        )
        labels = clusterer.fit_predict(features)
        report = evaluate_clustering(dataset.labels, labels)
        return PipelineResult(
            algorithm=self.algorithm_name,
            dataset=dataset.abbreviation,
            labels=labels,
            report=report,
        )
