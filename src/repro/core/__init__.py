"""End-to-end public API of the self-learning local supervision framework."""

from repro.core.config import FrameworkConfig, GRBM_PAPER_CONFIG, RBM_PAPER_CONFIG
from repro.core.estimator import EstimatorMixin, clone
from repro.core.framework import EncodingResult, SelfLearningEncodingFramework
from repro.core.pipeline import ClusteringPipeline, Pipeline, PipelineResult
from repro.core.transformers import (
    IdentityTransform,
    MedianBinarize,
    MinMaxScale,
    Standardize,
)

__all__ = [
    "FrameworkConfig",
    "GRBM_PAPER_CONFIG",
    "RBM_PAPER_CONFIG",
    "SelfLearningEncodingFramework",
    "EncodingResult",
    "ClusteringPipeline",
    "Pipeline",
    "PipelineResult",
    "EstimatorMixin",
    "clone",
    "Standardize",
    "MinMaxScale",
    "MedianBinarize",
    "IdentityTransform",
]
