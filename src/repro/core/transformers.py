"""Stateful preprocessing transformers for pipeline steps.

The functions in :mod:`repro.datasets.preprocessing` compute their statistics
from the array they are given, which is the right behaviour inside
:class:`~repro.core.framework.SelfLearningEncodingFramework` (the paper
preprocesses each dataset as a whole).  Pipeline steps need the *estimator*
form of the same recipes: ``fit`` learns the statistics from the training
data and ``transform`` applies them unchanged to new data, so a served
pipeline preprocesses requests consistently with training.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimator import EstimatorMixin
from repro.exceptions import ValidationError
from repro.utils.validation import check_array

__all__ = ["Standardize", "MinMaxScale", "MedianBinarize", "IdentityTransform"]


class _BaseTransformer(EstimatorMixin):
    """Shared fit/transform plumbing for the preprocessing estimators."""

    def fit(self, data) -> "_BaseTransformer":
        data = check_array(data, name="data")
        self._fit(data)
        self.n_features_ = data.shape[1]
        return self

    def transform(self, data) -> np.ndarray:
        self._check_fitted()
        data = check_array(data, name="data")
        if data.shape[1] != self.n_features_:
            raise ValidationError(
                f"data has {data.shape[1]} features but the transformer was "
                f"fitted with {self.n_features_}"
            )
        return self._transform(data)

    def fit_transform(self, data) -> np.ndarray:
        return self.fit(data).transform(data)

    @property
    def is_fitted(self) -> bool:
        return hasattr(self, "n_features_")

    def _fit(self, data: np.ndarray) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def _transform(self, data: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


class Standardize(_BaseTransformer):
    """Zero-mean, unit-variance scaling with training-set statistics.

    Constant features (variance below ``epsilon``) are centred but not
    scaled, matching :func:`repro.datasets.preprocessing.standardize`.
    """

    def __init__(self, *, epsilon: float = 1e-8) -> None:
        if epsilon <= 0:
            raise ValidationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def _fit(self, data: np.ndarray) -> None:
        self.mean_ = data.mean(axis=0)
        std = data.std(axis=0)
        self.scale_ = np.where(std < self.epsilon, 1.0, std)

    def _transform(self, data: np.ndarray) -> np.ndarray:
        return (data - self.mean_) / self.scale_


class MinMaxScale(_BaseTransformer):
    """Linear scaling of each feature to ``feature_range`` using training
    minima/maxima; constant features map to the midpoint of the range."""

    def __init__(self, *, feature_range: tuple[float, float] = (0.0, 1.0)) -> None:
        low, high = feature_range
        if high <= low:
            raise ValidationError(f"invalid feature_range {feature_range!r}")
        self.feature_range = (float(low), float(high))

    def _fit(self, data: np.ndarray) -> None:
        self.min_ = data.min(axis=0)
        span = data.max(axis=0) - self.min_
        self.constant_ = span == 0
        self.span_ = np.where(self.constant_, 1.0, span)

    def _transform(self, data: np.ndarray) -> np.ndarray:
        low, high = self.feature_range
        scaled = (data - self.min_) / self.span_
        scaled = np.where(self.constant_, 0.5, scaled)
        return low + scaled * (high - low)


class MedianBinarize(_BaseTransformer):
    """Binarise each feature against its training-set median."""

    def _fit(self, data: np.ndarray) -> None:
        self.median_ = np.median(data, axis=0)

    def _transform(self, data: np.ndarray) -> np.ndarray:
        return (data > self.median_).astype(float)


class IdentityTransform(_BaseTransformer):
    """Pass-through step (the ``"none"`` preprocessing as an estimator)."""

    def _fit(self, data: np.ndarray) -> None:
        pass

    def _transform(self, data: np.ndarray) -> np.ndarray:
        return data
