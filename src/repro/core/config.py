"""Configuration objects for the end-to-end framework.

``FrameworkConfig`` bundles every knob of the pipeline
(data preprocessing -> multi-clustering integration -> sls model -> features)
into one serialisable value object; the two constants reproduce the settings
used by the paper's experiments (Section V.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.exceptions import ValidationError

__all__ = ["FrameworkConfig", "GRBM_PAPER_CONFIG", "RBM_PAPER_CONFIG"]

_MODEL_KINDS = ("sls_grbm", "sls_rbm", "grbm", "rbm")
_PREPROCESSING = ("standardize", "minmax", "median_binarize", "none")
_VOTING = ("unanimous", "majority")


@dataclass(frozen=True)
class FrameworkConfig:
    """All hyper-parameters of one framework run.

    Attributes
    ----------
    model : {"sls_grbm", "sls_rbm", "grbm", "rbm"}
        Feature extractor.  The plain variants ignore the supervision and act
        as the paper's baselines.
    n_hidden : int
        Hidden layer width.
    eta : float
        Likelihood-vs-supervision balance of Eq. 13 (ignored by plain models).
    learning_rate : float
        CD learning rate.
    n_epochs, batch_size, cd_steps : int
        Training schedule.
    preprocessing : {"standardize", "minmax", "median_binarize", "none"}
        Applied to the data before RBM training.
    dtype : {"float64", "float32"}
        Compute/storage precision of the RBM (see
        :class:`repro.rbm.base.BaseRBM`); float32 trades ~1e-7 relative
        feature accuracy for roughly half the memory traffic.
    supervision_preprocessing : same choices or None
        Preprocessing applied to the data fed to the base clusterers that
        build the local supervision.  ``None`` reuses ``preprocessing``.  The
        slsRBM experiments cluster the standardised real-valued data while
        training on the binarised version, which keeps the base partitions
        informative.
    clusterers : tuple of str
        Base clusterers feeding the multi-clustering integration.
    voting : {"unanimous", "majority"}
    min_agreement : float
        Majority-vote threshold (unused for unanimous voting).
    random_state : int or None
    extra : dict
        Free-form additional options forwarded to the model constructor.
    """

    model: str = "sls_grbm"
    n_hidden: int = 64
    eta: float = 0.4
    learning_rate: float = 1e-4
    n_epochs: int = 30
    batch_size: int = 64
    cd_steps: int = 1
    dtype: str = "float64"
    preprocessing: str = "standardize"
    supervision_preprocessing: str | None = None
    clusterers: tuple[str, ...] = ("dp", "kmeans", "ap")
    voting: str = "unanimous"
    min_agreement: float = 0.5
    random_state: int | None = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in _MODEL_KINDS:
            raise ValidationError(
                f"model must be one of {_MODEL_KINDS}, got {self.model!r}"
            )
        if self.dtype not in ("float64", "float32"):
            raise ValidationError(
                f"dtype must be 'float64' or 'float32', got {self.dtype!r}"
            )
        if self.preprocessing not in _PREPROCESSING:
            raise ValidationError(
                f"preprocessing must be one of {_PREPROCESSING}, got {self.preprocessing!r}"
            )
        if (
            self.supervision_preprocessing is not None
            and self.supervision_preprocessing not in _PREPROCESSING
        ):
            raise ValidationError(
                "supervision_preprocessing must be one of "
                f"{_PREPROCESSING} or None, got {self.supervision_preprocessing!r}"
            )
        if self.voting not in _VOTING:
            raise ValidationError(f"voting must be one of {_VOTING}, got {self.voting!r}")
        if not 0.0 < self.eta < 1.0:
            raise ValidationError(f"eta must lie in (0, 1), got {self.eta}")
        if self.learning_rate <= 0:
            raise ValidationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        for name in ("n_hidden", "n_epochs", "batch_size", "cd_steps"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValidationError(f"{name} must be a positive integer, got {value!r}")
        if not self.clusterers:
            raise ValidationError("clusterers must not be empty")

    @property
    def uses_supervision(self) -> bool:
        """Whether the configured model consumes local supervisions."""
        return self.model.startswith("sls_")

    @property
    def is_gaussian(self) -> bool:
        """Whether the visible layer is Gaussian (real-valued data)."""
        return self.model in ("sls_grbm", "grbm")

    def with_overrides(self, **overrides) -> "FrameworkConfig":
        """Copy of this configuration with some fields replaced."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        """Serialise to a plain dictionary (for experiment records)."""
        return {
            "model": self.model,
            "n_hidden": self.n_hidden,
            "eta": self.eta,
            "learning_rate": self.learning_rate,
            "n_epochs": self.n_epochs,
            "batch_size": self.batch_size,
            "cd_steps": self.cd_steps,
            "dtype": self.dtype,
            "preprocessing": self.preprocessing,
            "supervision_preprocessing": self.supervision_preprocessing,
            "clusterers": list(self.clusterers),
            "voting": self.voting,
            "min_agreement": self.min_agreement,
            "random_state": self.random_state,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FrameworkConfig":
        """Inverse of :meth:`as_dict` (used by :mod:`repro.persistence`)."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValidationError(
                f"unknown FrameworkConfig fields {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        kwargs = dict(payload)
        if "clusterers" in kwargs:
            kwargs["clusterers"] = tuple(kwargs["clusterers"])
        if "extra" in kwargs:
            kwargs["extra"] = dict(kwargs["extra"])
        return cls(**kwargs)


#: Paper settings for the slsGRBM experiments on the MSRA-MM 2.0 datasets:
#: eta = 0.4, learning rate 1e-4, standardised real-valued input.
GRBM_PAPER_CONFIG = FrameworkConfig(
    model="sls_grbm",
    eta=0.4,
    learning_rate=1e-4,
    preprocessing="standardize",
)

#: Paper settings for the slsRBM experiments on the UCI datasets:
#: eta = 0.5, binary (median-binarised) input.  The paper's learning rate of
#: 1e-5 is tuned for its feature scale; the analogue datasets use a slightly
#: larger default which the experiment harness can override.
RBM_PAPER_CONFIG = FrameworkConfig(
    model="sls_rbm",
    eta=0.5,
    learning_rate=1e-3,
    preprocessing="median_binarize",
    supervision_preprocessing="standardize",
)
