"""The self-learning local supervision encoding framework (Fig. 1).

``SelfLearningEncodingFramework`` wires together the full unsupervised
pipeline of the paper:

1. preprocess the visible data;
2. run several unsupervised clusterers on it and integrate their partitions
   with unanimous voting into a :class:`LocalSupervision`
   (the "self-learning local supervision" of Fig. 1);
3. train the selected RBM variant — slsGRBM/slsRBM with the supervision
   folded into CD learning, or the plain GRBM/RBM baselines without it;
4. expose the hidden-layer features for downstream clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import FrameworkConfig
from repro.core.estimator import EstimatorMixin
from repro.datasets.preprocessing import median_binarize, minmax_scale, standardize
from repro.exceptions import NotFittedError, SupervisionError, ValidationError
from repro.supervision.ensemble import MultiClusteringIntegration
from repro.supervision.local_supervision import LocalSupervision
from repro.utils.validation import check_array, check_positive_int

__all__ = ["SelfLearningEncodingFramework", "EncodingResult"]


@dataclass(frozen=True)
class EncodingResult:
    """Outcome of one framework run.

    Attributes
    ----------
    features : ndarray of shape (n_samples, n_hidden)
        Hidden-layer features of the (preprocessed) input data.
    supervision : LocalSupervision or None
        The integrated local supervision (None for plain baseline models).
    reconstruction_error : float
        Final epoch reconstruction error of the trained model.
    config : FrameworkConfig
    """

    features: np.ndarray
    supervision: LocalSupervision | None
    reconstruction_error: float
    config: FrameworkConfig


class SelfLearningEncodingFramework(EstimatorMixin):
    """End-to-end feature learner of the paper.

    Parameters
    ----------
    config : FrameworkConfig, dict or None
        Full hyper-parameter bundle; see
        :data:`repro.core.config.GRBM_PAPER_CONFIG` and
        :data:`repro.core.config.RBM_PAPER_CONFIG` for the paper's settings.
        A plain dictionary (e.g. from a registry spec or an artifact
        manifest) is converted with :meth:`FrameworkConfig.from_dict`;
        ``None`` uses the default :class:`FrameworkConfig`.
    n_clusters : int, default 2
        Number of clusters requested from the base clusterers (the paper uses
        the ground-truth class count of each dataset).

    Examples
    --------
    >>> from repro.core import FrameworkConfig, SelfLearningEncodingFramework
    >>> from repro.datasets import load_uci_dataset
    >>> dataset = load_uci_dataset("IR", scale=0.5)
    >>> config = FrameworkConfig(model="sls_rbm", preprocessing="median_binarize",
    ...                          n_hidden=16, n_epochs=5)
    >>> framework = SelfLearningEncodingFramework(config, n_clusters=3)
    >>> features = framework.fit_transform(dataset.data)
    >>> features.shape[1]
    16
    """

    def __init__(
        self, config: FrameworkConfig | dict | None = None, n_clusters: int = 2
    ) -> None:
        if config is None:
            config = FrameworkConfig()
        elif isinstance(config, dict):
            config = FrameworkConfig.from_dict(config)
        elif not isinstance(config, FrameworkConfig):
            raise ValidationError(
                f"config must be a FrameworkConfig, a dict or None, "
                f"got {type(config).__name__}"
            )
        self.config = config
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")

    # ------------------------------------------------------------------ stages
    @staticmethod
    def _apply_preprocessing(data: np.ndarray, kind: str) -> np.ndarray:
        if kind == "standardize":
            return standardize(data)
        if kind == "minmax":
            return minmax_scale(data)
        if kind == "median_binarize":
            return median_binarize(data)
        return data

    def preprocess(self, data) -> np.ndarray:
        """Apply the configured model preprocessing to ``data``."""
        data = check_array(data, name="data")
        return self._apply_preprocessing(data, self.config.preprocessing)

    def preprocess_for_supervision(self, data) -> np.ndarray:
        """Preprocessing used for the base clusterers of the supervision."""
        data = check_array(data, name="data")
        kind = self.config.supervision_preprocessing or self.config.preprocessing
        return self._apply_preprocessing(data, kind)

    def build_supervision(self, preprocessed: np.ndarray) -> LocalSupervision:
        """Run the multi-clustering integration on preprocessed data."""
        integration = MultiClusteringIntegration(
            self.n_clusters,
            clusterers=self.config.clusterers,
            voting=self.config.voting,
            min_agreement=self.config.min_agreement,
            random_state=self.config.random_state,
        )
        return integration.fit_supervision(preprocessed)

    def model_spec(self) -> dict:
        """Registry spec of the configured RBM variant (see
        :func:`repro.registry.build`)."""
        config = self.config
        params = dict(
            n_hidden=config.n_hidden,
            learning_rate=config.learning_rate,
            n_epochs=config.n_epochs,
            batch_size=config.batch_size,
            cd_steps=config.cd_steps,
            dtype=config.dtype,
            random_state=config.random_state,
        )
        # Supervision-specific extras (e.g. supervision_learning_rate) only
        # exist on the sls models; forwarding them to the plain baselines
        # would be a TypeError, so they are split out here.
        sls_only_keys = {"supervision_learning_rate", "supervision_grad_clip"}
        params.update(
            {k: v for k, v in config.extra.items() if k not in sls_only_keys}
        )
        if config.uses_supervision:
            params["eta"] = config.eta
            params.update(
                {k: v for k, v in config.extra.items() if k in sls_only_keys}
            )
        return {"kind": "model", "type": config.model, "params": params}

    def build_model(self):
        """Instantiate the configured RBM variant (untrained) via the
        component registry."""
        from repro import registry  # local import: registry registers this class

        return registry.build(self.model_spec())

    # --------------------------------------------------------------------- API
    def fit(self, data, supervision: LocalSupervision | None = None):
        """Run preprocessing, supervision building and model training.

        Parameters
        ----------
        data : array-like of shape (n_samples, n_features)
        supervision : LocalSupervision, optional
            Pre-computed supervision; when omitted and the configured model is
            an sls variant, the framework builds one with the configured
            multi-clustering integration.
        """
        preprocessed = self.preprocess(data)

        if self.config.uses_supervision:
            if supervision is None:
                try:
                    supervision = self.build_supervision(
                        self.preprocess_for_supervision(data)
                    )
                except SupervisionError:
                    # Degenerate ensembles (total disagreement) fall back to
                    # unsupervised training rather than failing the whole run.
                    supervision = None
        else:
            supervision = None

        model = self.build_model()
        if self.config.uses_supervision:
            model.fit(preprocessed, supervision=supervision)
        else:
            model.fit(preprocessed)

        self.model_ = model
        self.supervision_ = supervision
        self.preprocessed_ = preprocessed
        return self

    def transform(self, data) -> np.ndarray:
        """Hidden features of new data (preprocessed with the same recipe)."""
        self._check_fitted()
        return self.model_.transform(self.preprocess(data))

    def fit_transform(self, data, supervision: LocalSupervision | None = None) -> np.ndarray:
        """Fit the framework and return the hidden features of ``data``."""
        self.fit(data, supervision=supervision)
        return self.model_.transform(self.preprocessed_)

    def encode(self, data, supervision: LocalSupervision | None = None) -> EncodingResult:
        """Fit and return a structured :class:`EncodingResult`."""
        features = self.fit_transform(data, supervision=supervision)
        history = getattr(self.model_, "training_history_", None)
        reconstruction_error = (
            history.final_reconstruction_error if history is not None else float("nan")
        )
        return EncodingResult(
            features=features,
            supervision=self.supervision_,
            reconstruction_error=reconstruction_error,
            config=self.config,
        )

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has completed (or the framework was loaded
        from an artifact via :func:`repro.persistence.load_framework`)."""
        return hasattr(self, "model_")

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                "SelfLearningEncodingFramework is not fitted yet; call fit() first"
            )
