"""Gaussian-Bernoulli RBM (the "GRBM" baseline).

Real-valued visible units with unit-variance Gaussian noise (Eq. 4-5),
binary hidden units.  The reconstruction of the visible layer is the *linear*
transformation ``h W^T + a`` — the noise-free mean of the Gaussian
conditional — exactly as used in the slsGRBM instantiation of the framework.
Inputs are expected to be standardised (zero mean, unit variance per
feature), which is what the paper's unit-variance energy assumes.
"""

from __future__ import annotations

import numpy as np

from repro.rbm.base import BaseRBM
from repro.utils.numerics import log1pexp

__all__ = ["GaussianRBM"]


class GaussianRBM(BaseRBM):
    """Gaussian linear visible units, binary hidden units, CD-k learning."""

    model_kind = "grbm"

    @property
    def _binary_visible(self) -> bool:
        return False

    def visible_reconstruction(self, hidden: np.ndarray) -> np.ndarray:
        """Linear reconstruction ``a + h W^T`` (mean of Eq. 5 with sigma=1)."""
        self._check_fitted()
        hidden = np.atleast_2d(np.asarray(hidden, dtype=self.dtype))
        return self.visible_bias_ + hidden @ self.weights_.T

    def sample_visible(self, hidden: np.ndarray) -> np.ndarray:
        """Gaussian sample ``N(a + h W^T, 1)`` of the visible units."""
        mean = self.visible_reconstruction(hidden)
        return mean + self._rng.standard_normal(mean.shape).astype(self.dtype, copy=False)

    def free_energy(self, visible: np.ndarray) -> np.ndarray:
        """``F(v) = ||v - a||^2 / 2 - sum_j log(1 + exp(b_j + v.W_j))``."""
        self._check_fitted()
        visible = np.atleast_2d(np.asarray(visible, dtype=self.dtype))
        quadratic = 0.5 * np.sum((visible - self.visible_bias_) ** 2, axis=1)
        hidden_term = log1pexp(self.hidden_bias_ + visible @ self.weights_).sum(axis=1)
        return quadratic - hidden_term
