"""Classical binary-binary restricted Boltzmann machine (the "RBM" baseline).

Both layers are Bernoulli units; the visible reconstruction uses the sigmoid
transformation of Eq. 3, exactly as in the slsRBM instantiation of the
framework (Fig. 1, right branch) but without the supervision term.
"""

from __future__ import annotations

import numpy as np

from repro.rbm.base import BaseRBM
from repro.utils.numerics import log1pexp, sigmoid

__all__ = ["BernoulliRBM"]


class BernoulliRBM(BaseRBM):
    """Binary visible units, binary hidden units, CD-k learning.

    The energy function is Eq. 1; visible and hidden conditionals are the
    sigmoid expressions of Eq. 2-3.  Inputs are expected in ``[0, 1]`` and are
    interpreted as Bernoulli probabilities.
    """

    model_kind = "rbm"

    @property
    def _binary_visible(self) -> bool:
        return True

    def visible_reconstruction(self, hidden: np.ndarray) -> np.ndarray:
        """``p(v = 1 | h) = sigmoid(a + h W^T)`` (Eq. 3)."""
        self._check_fitted()
        hidden = np.atleast_2d(np.asarray(hidden, dtype=self.dtype))
        pre_activation = hidden @ self.weights_.T
        pre_activation += self.visible_bias_
        return sigmoid(pre_activation, out=pre_activation)

    def sample_visible(self, hidden: np.ndarray) -> np.ndarray:
        """Bernoulli sample of the visible units given hidden states."""
        probabilities = self.visible_reconstruction(hidden)
        return (self._rng.random(probabilities.shape) < probabilities).astype(self.dtype)

    def free_energy(self, visible: np.ndarray) -> np.ndarray:
        """``F(v) = -a.v - sum_j log(1 + exp(b_j + v.W_j))`` per sample."""
        self._check_fitted()
        visible = np.atleast_2d(np.asarray(visible, dtype=self.dtype))
        visible_term = visible @ self.visible_bias_
        hidden_term = log1pexp(self.hidden_bias_ + visible @ self.weights_).sum(axis=1)
        return -visible_term - hidden_term

    def pseudo_log_likelihood(self, visible: np.ndarray) -> float:
        """Stochastic pseudo-log-likelihood proxy (one random bit flipped).

        Useful as a training monitor on binary data; not part of the paper's
        evaluation.
        """
        self._check_fitted()
        visible = np.atleast_2d(np.asarray(visible, dtype=float))
        n_samples, n_features = visible.shape
        flip_index = self._rng.integers(n_features, size=n_samples)
        flipped = visible.copy()
        rows = np.arange(n_samples)
        flipped[rows, flip_index] = 1.0 - flipped[rows, flip_index]
        delta = self.free_energy(flipped) - self.free_energy(visible)
        return float(np.mean(n_features * np.log(sigmoid(delta))))
