"""Analytic gradients of the constrict/disperse loss (Eq. 27-32), fused.

The paper derives, for the hidden features ``h_s = sigmoid(b + v_s W)`` of a
visible matrix and local clusters ``H_1..H_K``,

    dL/dw_ij = (2/N_h) sum_k sum_{s,t in H_k} (h_sj - h_tj)
                   [h_sj (1-h_sj) v_si - h_tj (1-h_tj) v_ti]
             - (2/N_C) sum_{p<q} (C_pj - C_qj)
                   [C_pj (1-C_pj) O_pi - C_qj (1-C_qj) O_qi]          (Eq. 27)

    dL/db_j  = (2/N_h) sum_k sum_{s,t in H_k} (h_sj - h_tj)
                   [h_sj (1-h_sj) - h_tj (1-h_tj)]
             - (2/N_C) sum_{p<q} (C_pj - C_qj)
                   [C_pj (1-C_pj) - C_qj (1-C_qj)]                    (Eq. 31)

    dL/da_i  = 0                                                       (Eq. 32 ff.)

where ``O_k`` is the visible centre of cluster ``V_k`` and ``C_k`` is its
hidden image ``sigmoid(b + O_k W)``.  ``L_recon`` has the same form with
reconstructed visible data (Eq. 28).

This module evaluates both double sums in closed form with **one** hidden
activation and **one** weight-shaped matmul over the whole covered matrix:

* same-cluster pairs: with ``D = H (1 - H)`` and per-cluster hidden sums
  ``s_k = sum_{r in k} h_r``,

      sum_k sum_{s,t in H_k} (...) = V^T [ D * (n_row H - S_row) ]

  where ``n_row``/``S_row`` broadcast each row's cluster size / cluster
  hidden sum — no per-cluster loop, no per-cluster sigmoid;
* centre pairs: summing the unordered p<q loop in closed form gives

      sum_{p<q} (...) = O^T [ D_C * (K C - sum_p C_p) ]

  which removes the O(K^2) Python pair loop;
* the loss uses the identity
  ``sum_{s,t} ||h_s - h_t||^2 = 2 n_k sum_s ||h_s||^2 - 2 ||sum_s h_s||^2``
  instead of an O(n_k^2) Gram matrix.

The covered rows are pre-sorted by cluster once (``SupervisionPlan``, built
in ``SlsBase.set_supervision``), so the per-minibatch hot path is pure
ndarray arithmetic on contiguous segments (``np.add.reduceat``).

The original loop implementations are kept in
:mod:`repro.rbm.gradients_reference` as the correctness anchor and
benchmark baseline.

Normalisation: ``N_h`` is the total number of ordered same-cluster pairs and
``N_C = K(K-1)/2``, matching :mod:`repro.rbm.objective`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.numerics import sigmoid

__all__ = [
    "SupervisionGradients",
    "SupervisionPlan",
    "build_supervision_plan",
    "constrict_disperse_gradient",
    "constrict_disperse_gradient_presorted",
    "constrict_disperse_loss_exact",
    "constrict_disperse_loss_presorted",
]


@dataclass(frozen=True)
class SupervisionGradients:
    """Gradients of the constrict/disperse loss with respect to ``W`` and ``b``.

    ``grad_weights`` has shape ``(n_visible, n_hidden)``; ``grad_hidden_bias``
    has shape ``(n_hidden,)``.  The gradient with respect to the visible bias
    is identically zero (Eq. 32 and following) and is therefore not stored.
    """

    grad_weights: np.ndarray
    grad_hidden_bias: np.ndarray

    def __add__(self, other: "SupervisionGradients") -> "SupervisionGradients":
        return SupervisionGradients(
            grad_weights=self.grad_weights + other.grad_weights,
            grad_hidden_bias=self.grad_hidden_bias + other.grad_hidden_bias,
        )

    def scaled(self, factor: float) -> "SupervisionGradients":
        """Return a copy scaled by ``factor``."""
        return SupervisionGradients(
            grad_weights=factor * self.grad_weights,
            grad_hidden_bias=factor * self.grad_hidden_bias,
        )

    @property
    def max_abs(self) -> float:
        """Largest absolute gradient entry (used for diagnostics/clipping)."""
        return float(
            max(np.abs(self.grad_weights).max(), np.abs(self.grad_hidden_bias).max())
        )


@dataclass(frozen=True)
class SupervisionPlan:
    """Precomputed cluster layout of the covered rows, sorted by cluster.

    Built once per supervision (``build_supervision_plan``) so that the
    per-minibatch kernels never touch Python dictionaries or index sets.

    Attributes
    ----------
    order : ndarray of shape (n_covered,)
        Permutation that sorts the covered rows by ascending cluster id;
        rows of each cluster form one contiguous segment.
    starts : ndarray of shape (n_clusters,)
        Segment start offsets into the sorted rows (for ``np.add.reduceat``).
    counts : ndarray of shape (n_clusters,)
        Members per cluster.
    row_counts : ndarray of shape (n_covered,)
        ``counts`` broadcast to the sorted rows (``repeat(counts, counts)``).
    row_cluster : ndarray of shape (n_covered,)
        Cluster *row index* (0..n_clusters-1) per sorted row, for gathering
        per-cluster aggregates back onto the rows.
    cluster_ids : ndarray of shape (n_clusters,)
        Sorted original cluster identifiers (for round-trips/debugging).
    n_ordered_pairs : int
        ``sum_k n_k (n_k - 1)`` — the constriction normaliser ``N_h``.
    """

    order: np.ndarray
    starts: np.ndarray
    counts: np.ndarray
    row_counts: np.ndarray
    row_cluster: np.ndarray
    cluster_ids: np.ndarray
    n_ordered_pairs: int

    @property
    def n_clusters(self) -> int:
        return int(self.counts.shape[0])

    @property
    def n_covered(self) -> int:
        return int(self.order.shape[0])

    @property
    def n_center_pairs(self) -> float:
        k = self.n_clusters
        return k * (k - 1) / 2.0

    def sorted_index_sets(self) -> dict[int, np.ndarray]:
        """Index sets relative to the *sorted* covered matrix (contiguous)."""
        return {
            int(cid): np.arange(start, start + count)
            for cid, start, count in zip(self.cluster_ids, self.starts, self.counts)
        }


def build_supervision_plan(index_sets: dict[int, np.ndarray]) -> SupervisionPlan:
    """Validate ``index_sets`` and precompute the sorted cluster layout."""
    if not index_sets:
        raise ValidationError("index_sets must contain at least one cluster")
    cluster_ids = sorted(index_sets)
    segments = []
    counts = np.empty(len(cluster_ids), dtype=int)
    for row, cluster_id in enumerate(cluster_ids):
        indices = np.asarray(index_sets[cluster_id], dtype=int)
        if indices.ndim != 1 or indices.size == 0:
            raise ValidationError(f"cluster {cluster_id} has an invalid index set")
        segments.append(indices)
        counts[row] = indices.shape[0]
    order = np.concatenate(segments)
    starts = np.concatenate(([0], np.cumsum(counts[:-1])))
    return SupervisionPlan(
        order=order,
        starts=starts,
        counts=counts,
        row_counts=np.repeat(counts, counts),
        row_cluster=np.repeat(np.arange(counts.shape[0]), counts),
        cluster_ids=np.asarray(cluster_ids, dtype=int),
        n_ordered_pairs=int((counts * counts - counts).sum()),
    )


def _cluster_centers(visible_sorted: np.ndarray, plan: SupervisionPlan) -> np.ndarray:
    sums = np.add.reduceat(visible_sorted, plan.starts, axis=0)
    return sums / plan.counts[:, None]


def constrict_disperse_gradient_presorted(
    visible_sorted: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    plan: SupervisionPlan,
    *,
    hidden: np.ndarray | None = None,
    return_hidden: bool = False,
):
    """Fused gradient kernel over a cluster-sorted covered matrix.

    ``visible_sorted`` must hold the covered rows in ``plan.order`` (each
    cluster contiguous).  ``hidden`` may pass in an already computed
    activation matrix ``sigmoid(b + V W)`` to skip the matmul; with
    ``return_hidden=True`` the activation is returned alongside the
    gradients so callers can reuse it (e.g. for the reconstruction term).
    """
    if hidden is None:
        hidden = sigmoid(hidden_bias + visible_sorted @ weights)
    derivative = hidden * (1.0 - hidden)

    # Constriction: V^T [D * (n_row H - S_row)] in one matmul.
    if plan.n_ordered_pairs > 0:
        cluster_sums = np.add.reduceat(hidden, plan.starts, axis=0)
        fused = derivative * (
            plan.row_counts[:, None] * hidden - cluster_sums[plan.row_cluster]
        )
        scale = 4.0 / plan.n_ordered_pairs
        grad_w_pairs = scale * (visible_sorted.T @ fused)
        grad_b_pairs = scale * fused.sum(axis=0)
    else:
        grad_w_pairs = np.zeros_like(weights)
        grad_b_pairs = np.zeros_like(hidden_bias)

    # Dispersion: O^T [D_C * (K C - sum_p C_p)], no pair loop.
    if plan.n_clusters >= 2:
        centers = _cluster_centers(visible_sorted, plan)
        hidden_centers = sigmoid(hidden_bias + centers @ weights)
        center_derivative = hidden_centers * (1.0 - hidden_centers)
        fused_centers = center_derivative * (
            plan.n_clusters * hidden_centers - hidden_centers.sum(axis=0)
        )
        scale = 2.0 / plan.n_center_pairs
        grad_w_centers = scale * (centers.T @ fused_centers)
        grad_b_centers = scale * fused_centers.sum(axis=0)
    else:
        grad_w_centers = np.zeros_like(grad_w_pairs)
        grad_b_centers = np.zeros_like(grad_b_pairs)

    grads = SupervisionGradients(
        grad_weights=grad_w_pairs - grad_w_centers,
        grad_hidden_bias=grad_b_pairs - grad_b_centers,
    )
    if return_hidden:
        return grads, hidden
    return grads


def constrict_disperse_loss_presorted(
    visible_sorted: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    plan: SupervisionPlan,
    *,
    hidden: np.ndarray | None = None,
) -> float:
    """Fused loss over a cluster-sorted covered matrix (see the module doc).

    Uses ``sum_{s,t} ||h_s - h_t||^2 = 2 n sum ||h_s||^2 - 2 ||sum h_s||^2``
    per cluster instead of a Gram matrix.
    """
    if hidden is None:
        hidden = sigmoid(hidden_bias + visible_sorted @ weights)

    constrict = 0.0
    if plan.n_ordered_pairs > 0:
        row_norms = (hidden * hidden).sum(axis=1)
        norm_sums = np.add.reduceat(row_norms, plan.starts)
        cluster_sums = np.add.reduceat(hidden, plan.starts, axis=0)
        per_cluster = 2.0 * (
            plan.counts * norm_sums - (cluster_sums * cluster_sums).sum(axis=1)
        )
        # Floating cancellation can leave tiny negatives; distances are >= 0.
        constrict = float(np.maximum(per_cluster, 0.0).sum()) / plan.n_ordered_pairs

    disperse = 0.0
    if plan.n_clusters >= 2:
        centers = _cluster_centers(visible_sorted, plan)
        hidden_centers = sigmoid(hidden_bias + centers @ weights)
        center_norms = (hidden_centers * hidden_centers).sum(axis=1)
        total = hidden_centers.sum(axis=0)
        disperse = float(
            max(plan.n_clusters * center_norms.sum() - total @ total, 0.0)
        ) / plan.n_center_pairs
    return constrict - disperse


def _validate_inputs(visible, weights, hidden_bias) -> None:
    if visible.ndim != 2:
        raise ValidationError("visible must be a 2-D array")
    if weights.shape[0] != visible.shape[1]:
        raise ValidationError(
            f"weights expect {weights.shape[0]} visible units, data has {visible.shape[1]}"
        )
    if hidden_bias.shape[0] != weights.shape[1]:
        raise ValidationError("hidden_bias length does not match weights")


def constrict_disperse_gradient(
    visible: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    index_sets: dict[int, np.ndarray],
) -> SupervisionGradients:
    """Exact gradient of Eq. 14 (or Eq. 15) with respect to ``W`` and ``b``.

    Parameters
    ----------
    visible : ndarray of shape (n_samples, n_visible)
        Visible data (or reconstructed visible data for ``L_recon``).
    weights : ndarray of shape (n_visible, n_hidden)
    hidden_bias : ndarray of shape (n_hidden,)
    index_sets : dict mapping cluster id -> member row indices
        The credible local clusters ``V_1..V_K``.

    Returns
    -------
    SupervisionGradients
        ``dL/dW`` and ``dL/db``; ``dL/da`` is zero by Eq. 32.

    Notes
    -----
    This convenience wrapper sorts the covered rows on every call.  The
    training hot path precomputes the :class:`SupervisionPlan` once and goes
    through :func:`constrict_disperse_gradient_presorted` instead.
    """
    visible = np.asarray(visible, dtype=float)
    weights = np.asarray(weights, dtype=float)
    hidden_bias = np.asarray(hidden_bias, dtype=float)
    _validate_inputs(visible, weights, hidden_bias)
    plan = build_supervision_plan(index_sets)
    return constrict_disperse_gradient_presorted(
        visible[plan.order], weights, hidden_bias, plan
    )


def constrict_disperse_loss_exact(
    visible: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    index_sets: dict[int, np.ndarray],
) -> float:
    """Reference loss whose exact gradient is :func:`constrict_disperse_gradient`.

    ``L = (1/N_h) sum_k sum_{ordered s,t in H_k} ||h_s - h_t||^2
        - (1/N_C) sum_{p<q} ||C_p - C_q||^2``

    with ``h = sigmoid(b + v W)`` and ``C_k = sigmoid(b + O_k W)`` where
    ``O_k`` is the visible centre of cluster ``k``.  Used by the gradient
    checks and as a training monitor.
    """
    visible = np.asarray(visible, dtype=float)
    weights = np.asarray(weights, dtype=float)
    hidden_bias = np.asarray(hidden_bias, dtype=float)
    plan = build_supervision_plan(index_sets)
    return constrict_disperse_loss_presorted(
        visible[plan.order], weights, hidden_bias, plan
    )
