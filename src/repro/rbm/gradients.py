"""Analytic gradients of the constrict/disperse loss (Eq. 27-32).

The paper derives, for the hidden features ``h_s = sigmoid(b + v_s W)`` of a
visible matrix and local clusters ``H_1..H_K``,

    dL/dw_ij = (2/N_h) sum_k sum_{s,t in H_k} (h_sj - h_tj)
                   [h_sj (1-h_sj) v_si - h_tj (1-h_tj) v_ti]
             - (2/N_C) sum_{p<q} (C_pj - C_qj)
                   [C_pj (1-C_pj) O_pi - C_qj (1-C_qj) O_qi]          (Eq. 27)

    dL/db_j  = (2/N_h) sum_k sum_{s,t in H_k} (h_sj - h_tj)
                   [h_sj (1-h_sj) - h_tj (1-h_tj)]
             - (2/N_C) sum_{p<q} (C_pj - C_qj)
                   [C_pj (1-C_pj) - C_qj (1-C_qj)]                    (Eq. 31)

    dL/da_i  = 0                                                       (Eq. 32 ff.)

where ``O_k`` is the visible centre of cluster ``V_k`` and (following the
derivative structure of Eq. 25) ``C_k = sigmoid(b + O_k W)`` is its hidden
image.  ``L_recon`` has the same form with reconstructed visible data (Eq. 28).

The inner double sum over same-cluster pairs is evaluated in closed form:
for each cluster with members ``(V, H)`` and derivative factors
``D = H * (1 - H)``,

    sum_{s,t} (h_sj - h_tj)(d_sj v_si - d_tj v_ti)
        = 2 [ n_k (V^T (H*D))_{ij} - (sum_s h_sj) (V^T D)_{ij} ],

which turns an O(n_k^2) pair loop into two matrix products.

Normalisation: ``N_h`` is the total number of ordered same-cluster pairs and
``N_C = K(K-1)/2``, matching :mod:`repro.rbm.objective`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.numerics import sigmoid

__all__ = [
    "SupervisionGradients",
    "constrict_disperse_gradient",
    "constrict_disperse_loss_exact",
]


@dataclass(frozen=True)
class SupervisionGradients:
    """Gradients of the constrict/disperse loss with respect to ``W`` and ``b``.

    ``grad_weights`` has shape ``(n_visible, n_hidden)``; ``grad_hidden_bias``
    has shape ``(n_hidden,)``.  The gradient with respect to the visible bias
    is identically zero (Eq. 32 and following) and is therefore not stored.
    """

    grad_weights: np.ndarray
    grad_hidden_bias: np.ndarray

    def __add__(self, other: "SupervisionGradients") -> "SupervisionGradients":
        return SupervisionGradients(
            grad_weights=self.grad_weights + other.grad_weights,
            grad_hidden_bias=self.grad_hidden_bias + other.grad_hidden_bias,
        )

    def scaled(self, factor: float) -> "SupervisionGradients":
        """Return a copy scaled by ``factor``."""
        return SupervisionGradients(
            grad_weights=factor * self.grad_weights,
            grad_hidden_bias=factor * self.grad_hidden_bias,
        )

    @property
    def max_abs(self) -> float:
        """Largest absolute gradient entry (used for diagnostics/clipping)."""
        return float(
            max(np.abs(self.grad_weights).max(), np.abs(self.grad_hidden_bias).max())
        )


def _pairwise_terms(
    visible: np.ndarray, hidden: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form constriction term of one cluster.

    Returns the weight-shaped and bias-shaped contributions of
    ``sum_{s,t in cluster}`` *before* any normalisation.
    """
    count = visible.shape[0]
    derivative = hidden * (1.0 - hidden)  # d_sj = h_sj (1 - h_sj)
    hidden_sum = hidden.sum(axis=0)  # (n_hidden,)
    weighted = hidden * derivative  # h_sj d_sj

    grad_w = 2.0 * (count * (visible.T @ weighted) - (visible.T @ derivative) * hidden_sum)
    grad_b = 2.0 * (
        count * (hidden * derivative).sum(axis=0) - hidden_sum * derivative.sum(axis=0)
    )
    return grad_w, grad_b


def _center_terms(
    visible_centers: np.ndarray, hidden_centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dispersion term summed over all centre pairs ``p < q`` (unnormalised)."""
    n_clusters, n_hidden = hidden_centers.shape
    n_visible = visible_centers.shape[1]
    grad_w = np.zeros((n_visible, n_hidden))
    grad_b = np.zeros(n_hidden)
    derivative = hidden_centers * (1.0 - hidden_centers)
    for p in range(n_clusters - 1):
        for q in range(p + 1, n_clusters):
            delta = hidden_centers[p] - hidden_centers[q]  # (n_hidden,)
            grad_w += np.outer(visible_centers[p], delta * derivative[p]) - np.outer(
                visible_centers[q], delta * derivative[q]
            )
            grad_b += delta * (derivative[p] - derivative[q])
    return grad_w, grad_b


def constrict_disperse_gradient(
    visible: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    index_sets: dict[int, np.ndarray],
) -> SupervisionGradients:
    """Exact gradient of Eq. 14 (or Eq. 15) with respect to ``W`` and ``b``.

    Parameters
    ----------
    visible : ndarray of shape (n_samples, n_visible)
        Visible data (or reconstructed visible data for ``L_recon``).
    weights : ndarray of shape (n_visible, n_hidden)
    hidden_bias : ndarray of shape (n_hidden,)
    index_sets : dict mapping cluster id -> member row indices
        The credible local clusters ``V_1..V_K``.

    Returns
    -------
    SupervisionGradients
        ``dL/dW`` and ``dL/db``; ``dL/da`` is zero by Eq. 32.
    """
    visible = np.asarray(visible, dtype=float)
    weights = np.asarray(weights, dtype=float)
    hidden_bias = np.asarray(hidden_bias, dtype=float)
    if visible.ndim != 2:
        raise ValidationError("visible must be a 2-D array")
    if weights.shape[0] != visible.shape[1]:
        raise ValidationError(
            f"weights expect {weights.shape[0]} visible units, data has {visible.shape[1]}"
        )
    if hidden_bias.shape[0] != weights.shape[1]:
        raise ValidationError("hidden_bias length does not match weights")
    if not index_sets:
        raise ValidationError("index_sets must contain at least one cluster")

    n_visible, n_hidden = weights.shape
    grad_w_pairs = np.zeros((n_visible, n_hidden))
    grad_b_pairs = np.zeros(n_hidden)
    n_ordered_pairs = 0

    cluster_ids = sorted(index_sets)
    visible_centers = np.zeros((len(cluster_ids), n_visible))

    for row, cluster_id in enumerate(cluster_ids):
        indices = np.asarray(index_sets[cluster_id], dtype=int)
        if indices.ndim != 1 or indices.size == 0:
            raise ValidationError(f"cluster {cluster_id} has an invalid index set")
        members_visible = visible[indices]
        visible_centers[row] = members_visible.mean(axis=0)
        count = indices.shape[0]
        if count < 2:
            continue
        members_hidden = sigmoid(hidden_bias + members_visible @ weights)
        grad_w, grad_b = _pairwise_terms(members_visible, members_hidden)
        grad_w_pairs += grad_w
        grad_b_pairs += grad_b
        n_ordered_pairs += count * count - count

    if n_ordered_pairs > 0:
        # Chain-rule factor 2 of d||h_s - h_t||^2 / dW, then the 1/N_h average.
        grad_w_pairs = 2.0 * grad_w_pairs / n_ordered_pairs
        grad_b_pairs = 2.0 * grad_b_pairs / n_ordered_pairs

    n_clusters = len(cluster_ids)
    if n_clusters >= 2:
        hidden_centers = sigmoid(hidden_bias + visible_centers @ weights)
        grad_w_centers, grad_b_centers = _center_terms(visible_centers, hidden_centers)
        n_center_pairs = n_clusters * (n_clusters - 1) / 2.0
        grad_w_centers = 2.0 * grad_w_centers / n_center_pairs
        grad_b_centers = 2.0 * grad_b_centers / n_center_pairs
    else:
        grad_w_centers = np.zeros_like(grad_w_pairs)
        grad_b_centers = np.zeros_like(grad_b_pairs)

    return SupervisionGradients(
        grad_weights=grad_w_pairs - grad_w_centers,
        grad_hidden_bias=grad_b_pairs - grad_b_centers,
    )


def constrict_disperse_loss_exact(
    visible: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    index_sets: dict[int, np.ndarray],
) -> float:
    """Reference loss whose exact gradient is :func:`constrict_disperse_gradient`.

    ``L = (1/N_h) sum_k sum_{ordered s,t in H_k} ||h_s - h_t||^2
        - (1/N_C) sum_{p<q} ||C_p - C_q||^2``

    with ``h = sigmoid(b + v W)`` and ``C_k = sigmoid(b + O_k W)`` where
    ``O_k`` is the visible centre of cluster ``k``.  Used by the gradient
    checks and as a training monitor.
    """
    visible = np.asarray(visible, dtype=float)
    weights = np.asarray(weights, dtype=float)
    hidden_bias = np.asarray(hidden_bias, dtype=float)
    if not index_sets:
        raise ValidationError("index_sets must contain at least one cluster")

    cluster_ids = sorted(index_sets)
    constrict_total = 0.0
    n_ordered_pairs = 0
    visible_centers = np.zeros((len(cluster_ids), visible.shape[1]))
    for row, cluster_id in enumerate(cluster_ids):
        indices = np.asarray(index_sets[cluster_id], dtype=int)
        members_visible = visible[indices]
        visible_centers[row] = members_visible.mean(axis=0)
        count = indices.shape[0]
        if count < 2:
            continue
        hidden = sigmoid(hidden_bias + members_visible @ weights)
        squared_norms = np.sum(hidden**2, axis=1)
        gram = hidden @ hidden.T
        pair_distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
        constrict_total += float(np.maximum(pair_distances, 0.0).sum())
        n_ordered_pairs += count * count - count
    constrict = constrict_total / n_ordered_pairs if n_ordered_pairs else 0.0

    n_clusters = len(cluster_ids)
    disperse = 0.0
    if n_clusters >= 2:
        hidden_centers = sigmoid(hidden_bias + visible_centers @ weights)
        total = 0.0
        for p in range(n_clusters - 1):
            for q in range(p + 1, n_clusters):
                diff = hidden_centers[p] - hidden_centers[q]
                total += float(diff @ diff)
        disperse = total / (n_clusters * (n_clusters - 1) / 2.0)
    return constrict - disperse
