"""Shared machinery of the self-learning local supervision (sls) models.

The sls models keep the CD-1 likelihood update of their plain counterparts
and add the analytic gradients of the constrict/disperse loss computed over
the credible local clusters, both for the hidden features of the data
(``L_data``) and for the hidden features of the reconstructed data
(``L_recon``), as in Eq. 33-35.

Two deliberate deviations from the literal update rules of the paper (both
recorded in DESIGN.md):

* Eq. 33-34 *add* the gradient of ``L_data + L_recon``; since the stated goal
  is to *minimise* the within-cluster spread and *maximise* the centre
  separation (i.e. minimise the loss), we apply the gradient with a descent
  sign.  Adding it as printed ascends the loss and undoes the constriction.
* Eq. 33-34 apply no learning rate to the supervision term.  Taking the raw
  gradient step diverges for any realistic dataset, so the term is scaled by
  ``supervision_learning_rate`` (defaults to the CD learning rate) and
  optionally clipped.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.rbm.base import BaseRBM
from repro.rbm import gradients
from repro.rbm.gradients import SupervisionGradients, build_supervision_plan
from repro.supervision.local_supervision import LocalSupervision
from repro.utils.validation import check_array, check_probability

__all__ = ["SupervisedCDMixin"]


class SupervisedCDMixin(BaseRBM):
    """Adds supervision-guided CD learning on top of :class:`BaseRBM`.

    Additional parameters
    ---------------------
    eta : float in (0, 1)
        Scale coefficient of Eq. 13 balancing the likelihood term (``eta``)
        against the constrict/disperse terms (``1 - eta``).  The paper uses
        0.4 for slsGRBM and 0.5 for slsRBM.
    supervision_learning_rate : float or None
        Step size applied to the supervision gradient; defaults to the CD
        learning rate.
    supervision_grad_clip : float or None, default 1.0
        Elementwise clip applied to the supervision gradients before the
        update (None disables clipping).
    """

    def __init__(
        self,
        n_hidden: int,
        *,
        eta: float = 0.5,
        supervision_learning_rate: float | None = None,
        supervision_grad_clip: float | None = 1.0,
        **kwargs,
    ) -> None:
        super().__init__(n_hidden, **kwargs)
        self.eta = check_probability(eta, name="eta")
        if supervision_learning_rate is not None and supervision_learning_rate <= 0:
            raise ValidationError(
                "supervision_learning_rate must be positive, got "
                f"{supervision_learning_rate}"
            )
        self.supervision_learning_rate = supervision_learning_rate
        if supervision_grad_clip is not None and supervision_grad_clip <= 0:
            raise ValidationError(
                f"supervision_grad_clip must be positive, got {supervision_grad_clip}"
            )
        self.supervision_grad_clip = supervision_grad_clip

    # ------------------------------------------------------------- supervision
    def set_supervision(self, data, supervision: LocalSupervision | None) -> None:
        """Attach the local supervision used during training.

        ``data`` is the full training matrix; only the covered rows are kept
        for the supervision gradients.  Passing ``None`` clears the
        supervision, in which case the model trains exactly like its plain
        counterpart (useful for the ``eta -> 1`` ablation).
        """
        if supervision is None:
            self._supervision_visible = None
            self._supervision_index_sets = None
            self._supervision_plan = None
            self._supervision_sorted = None
            return
        if not isinstance(supervision, LocalSupervision):
            raise ValidationError(
                "supervision must be a LocalSupervision instance or None, got "
                f"{type(supervision).__name__}"
            )
        data = check_array(data, name="data")
        if supervision.n_samples != data.shape[0]:
            raise ValidationError(
                f"supervision covers {supervision.n_samples} samples but the "
                f"training data has {data.shape[0]} rows"
            )
        covered = supervision.covered_indices
        # Re-index the cluster members relative to the covered submatrix so the
        # gradient code never touches uncovered rows.
        position = {int(original): local for local, original in enumerate(covered)}
        index_sets = {
            cluster_id: np.array([position[int(i)] for i in members], dtype=int)
            for cluster_id, members in supervision.cluster_index_sets().items()
        }
        self._supervision_visible = np.asarray(data[covered], dtype=self.dtype)
        self._supervision_index_sets = index_sets
        self._attach_plan()
        self.supervision_ = supervision

    def _attach_plan(self) -> None:
        """Precompute the cluster layout and the cluster-sorted covered rows.

        Done once per supervision so that every minibatch's gradient call is
        pure contiguous-segment arithmetic (see
        :class:`repro.rbm.gradients.SupervisionPlan`).
        """
        plan = build_supervision_plan(self._supervision_index_sets)
        self._supervision_plan = plan
        self._supervision_sorted = np.ascontiguousarray(
            self._supervision_visible[plan.order]
        )

    @property
    def has_supervision(self) -> bool:
        """Whether a local supervision is currently attached."""
        return getattr(self, "_supervision_visible", None) is not None

    def supervision_gradients(self) -> SupervisionGradients:
        """Gradient of ``L_data + L_recon`` at the current parameters."""
        if not self.has_supervision:
            raise ValidationError("no supervision attached; call set_supervision first")
        plan = self._supervision_plan
        visible = self._supervision_sorted

        # One fused kernel per term; the data term's hidden activations are
        # reused as the input of the reconstruction term instead of being
        # recomputed (module is indirected so benchmarks can time the
        # reference kernels through the same code path).
        grad_data, hidden = gradients.constrict_disperse_gradient_presorted(
            visible, self.weights_, self.hidden_bias_, plan, return_hidden=True
        )
        visible_recon = self.visible_reconstruction(hidden)
        grad_recon = gradients.constrict_disperse_gradient_presorted(
            visible_recon, self.weights_, self.hidden_bias_, plan
        )
        combined = grad_data + grad_recon
        if self.supervision_grad_clip is not None:
            combined = SupervisionGradients(
                grad_weights=np.clip(
                    combined.grad_weights,
                    -self.supervision_grad_clip,
                    self.supervision_grad_clip,
                ),
                grad_hidden_bias=np.clip(
                    combined.grad_hidden_bias,
                    -self.supervision_grad_clip,
                    self.supervision_grad_clip,
                ),
            )
        return combined

    def supervision_loss(self) -> float:
        """``L_data + L_recon`` of the attached supervision at the current
        parameters, via the same fused kernels as the gradients."""
        if not self.has_supervision:
            raise ValidationError("no supervision attached; call set_supervision first")
        plan = self._supervision_plan
        visible = self._supervision_sorted
        hidden = self.hidden_probabilities(visible)
        l_data = gradients.constrict_disperse_loss_presorted(
            visible, self.weights_, self.hidden_bias_, plan, hidden=hidden
        )
        visible_recon = self.visible_reconstruction(hidden)
        l_recon = gradients.constrict_disperse_loss_presorted(
            visible_recon, self.weights_, self.hidden_bias_, plan
        )
        return float(l_data + l_recon)

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Fitted state extended with the attached supervision (if any).

        The supervision state comprises the covered visible submatrix, the
        per-covered-row local cluster labels (from which the gradient index
        sets are rebuilt) and, when available, the full
        :class:`LocalSupervision` labels and metadata.
        """
        params = super().get_state()
        if not self.has_supervision:
            return params
        index_sets = self._supervision_index_sets
        n_covered = self._supervision_visible.shape[0]
        covered_labels = np.full(n_covered, -1, dtype=int)
        for cluster_id, members in index_sets.items():
            covered_labels[members] = cluster_id
        params["arrays"]["supervision_visible"] = self._supervision_visible.copy()
        params["arrays"]["supervision_covered_labels"] = covered_labels
        supervision = getattr(self, "supervision_", None)
        if supervision is not None:
            params["arrays"]["supervision_labels"] = supervision.labels.copy()
            params["supervision"] = {
                "n_samples": supervision.n_samples,
                "metadata": dict(supervision.metadata),
            }
        else:
            params["supervision"] = {}
        return params

    def set_state(self, params: dict) -> "SupervisedCDMixin":
        """Restore fitted state and re-attach the serialised supervision."""
        super().set_state(params)
        arrays = params["arrays"]
        if "supervision_visible" not in arrays:
            self._supervision_visible = None
            self._supervision_index_sets = None
            self._supervision_plan = None
            self._supervision_sorted = None
            return self
        visible = np.asarray(arrays["supervision_visible"], dtype=self.dtype)
        covered_labels = np.asarray(arrays["supervision_covered_labels"], dtype=int)
        if covered_labels.shape[0] != visible.shape[0]:
            raise ValidationError(
                f"supervision_covered_labels has {covered_labels.shape[0]} entries "
                f"but supervision_visible has {visible.shape[0]} rows"
            )
        self._supervision_visible = visible
        self._supervision_index_sets = {
            int(cid): np.flatnonzero(covered_labels == cid)
            for cid in np.unique(covered_labels[covered_labels >= 0])
        }
        self._attach_plan()
        meta = params.get("supervision") or {}
        if "supervision_labels" in arrays and meta.get("n_samples"):
            self.supervision_ = LocalSupervision(
                labels=np.asarray(arrays["supervision_labels"], dtype=int),
                n_samples=int(meta["n_samples"]),
                metadata=dict(meta.get("metadata", {})),
            )
        return self

    # ------------------------------------------------------------- training step
    def partial_fit(self, batch: np.ndarray) -> float:
        """CD update blended with the supervision gradient (Eq. 33-35)."""
        stats = self.contrastive_divergence(batch)

        if not self.has_supervision:
            self.apply_update(
                stats.grad_weights, stats.grad_visible_bias, stats.grad_hidden_bias
            )
            return stats.reconstruction_error

        supervision = self.supervision_gradients()
        sup_lr = (
            self.supervision_learning_rate
            if self.supervision_learning_rate is not None
            else self.learning_rate
        )
        # Likelihood ascent scaled by eta, supervision descent scaled by
        # (1 - eta); apply_update multiplies by self.learning_rate, so the
        # supervision term is pre-divided to honour its own step size.
        ratio = sup_lr / self.learning_rate
        grad_weights = (
            self.eta * stats.grad_weights
            - (1.0 - self.eta) * ratio * supervision.grad_weights
        )
        grad_hidden_bias = (
            self.eta * stats.grad_hidden_bias
            - (1.0 - self.eta) * ratio * supervision.grad_hidden_bias
        )
        # Eq. 35: the visible bias keeps the plain CD update (no eta scaling,
        # no supervision contribution).
        grad_visible_bias = stats.grad_visible_bias

        self.apply_update(grad_weights, grad_visible_bias, grad_hidden_bias)
        return stats.reconstruction_error

    # ------------------------------------------------------------------- fitting
    def fit(self, data, supervision: LocalSupervision | None = None, **fit_params):
        """Train with an optional local supervision.

        Parameters
        ----------
        data : array-like of shape (n_samples, n_features)
        supervision : LocalSupervision or None
            Credible local clusters produced by
            :class:`repro.supervision.MultiClusteringIntegration`.  ``None``
            trains the model as a plain RBM/GRBM.
        """
        return super().fit(data, supervision=supervision, **fit_params)
