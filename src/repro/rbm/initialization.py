"""Parameter initialisation schemes for RBMs.

Hinton's practical guide recommends small zero-mean Gaussian weights and
visible biases set to the log-odds of the empirical activation rates; both
are provided here together with a Xavier-style alternative.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import check_random_state

__all__ = ["initialize_weights", "visible_bias_from_data"]

_SCHEMES = ("gaussian", "xavier", "zeros")


def initialize_weights(
    n_visible: int,
    n_hidden: int,
    *,
    scheme: str = "gaussian",
    sigma: float = 0.01,
    random_state=None,
) -> np.ndarray:
    """Initial weight matrix of shape ``(n_visible, n_hidden)``.

    Parameters
    ----------
    scheme : {"gaussian", "xavier", "zeros"}
        "gaussian" draws N(0, sigma^2); "xavier" scales by
        ``sqrt(2 / (n_visible + n_hidden))``; "zeros" is occasionally useful
        for debugging gradient code.
    """
    if scheme not in _SCHEMES:
        raise ValidationError(f"scheme must be one of {_SCHEMES}, got {scheme!r}")
    rng = check_random_state(random_state)
    if scheme == "zeros":
        return np.zeros((n_visible, n_hidden))
    if scheme == "xavier":
        sigma = float(np.sqrt(2.0 / (n_visible + n_hidden)))
    return sigma * rng.standard_normal((n_visible, n_hidden))


def visible_bias_from_data(data: np.ndarray, *, binary: bool) -> np.ndarray:
    """Data-driven visible bias initialisation.

    For binary units the bias is the empirical log-odds ``log(p / (1 - p))``
    of each visible unit being on (clipped away from 0 and 1); for Gaussian
    units it is the feature mean.
    """
    data = np.asarray(data, dtype=float)
    if binary:
        mean_activation = np.clip(data.mean(axis=0), 1e-3, 1.0 - 1e-3)
        return np.log(mean_activation / (1.0 - mean_activation))
    return data.mean(axis=0)
