"""slsGRBM: self-learning local supervision GRBM with Gaussian visible units.

Instantiation of the framework with Gaussian linear visible units, binary
hidden units and the linear transformation for the visible reconstruction
(Fig. 1, Section IV).  The paper trains it with ``eta = 0.4`` and learning
rate ``1e-4`` on the MSRA-MM 2.0 datasets; those are the defaults here.
"""

from __future__ import annotations

from repro.rbm.grbm import GaussianRBM
from repro.rbm.sls_base import SupervisedCDMixin

__all__ = ["SlsGRBM"]


class SlsGRBM(SupervisedCDMixin, GaussianRBM):
    """Gaussian-Bernoulli RBM whose CD learning is guided by local supervisions.

    See :class:`repro.rbm.sls_base.SupervisedCDMixin` for the supervision
    parameters and :class:`repro.rbm.grbm.GaussianRBM` for the energy model.
    """

    model_kind = "sls_grbm"

    def __init__(
        self,
        n_hidden: int,
        *,
        eta: float = 0.4,
        learning_rate: float = 1e-4,
        **kwargs,
    ) -> None:
        super().__init__(n_hidden, eta=eta, learning_rate=learning_rate, **kwargs)
