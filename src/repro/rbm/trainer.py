"""Epoch/minibatch training driver shared by all RBM variants.

Separating the loop from the models keeps the models focused on the
per-minibatch mathematics (CD statistics, supervision gradients) while the
trainer handles shuffling, batching, history recording and optional early
stopping on the reconstruction error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import NotFittedError, ValidationError
from repro.supervision.local_supervision import LocalSupervision
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array

__all__ = ["RBMTrainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch training statistics.

    Attributes
    ----------
    reconstruction_errors : list of float
        Mean squared reconstruction error per epoch.
    supervision_losses : list of float
        ``L_data + L_recon`` per epoch (empty for plain models or when no
        supervision is attached).
    n_epochs_run : int
    stopped_early : bool
    """

    reconstruction_errors: list[float] = field(default_factory=list)
    supervision_losses: list[float] = field(default_factory=list)
    n_epochs_run: int = 0
    stopped_early: bool = False

    @property
    def final_reconstruction_error(self) -> float:
        if not self.reconstruction_errors:
            raise NotFittedError("no epoch has been recorded yet")
        return self.reconstruction_errors[-1]

    def to_dict(self) -> dict:
        """JSON-serialisable form (used by :mod:`repro.persistence`)."""
        return {
            "reconstruction_errors": [float(e) for e in self.reconstruction_errors],
            "supervision_losses": [float(e) for e in self.supervision_losses],
            "n_epochs_run": int(self.n_epochs_run),
            "stopped_early": bool(self.stopped_early),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrainingHistory":
        """Inverse of :meth:`to_dict`."""
        return cls(
            reconstruction_errors=[float(e) for e in payload.get("reconstruction_errors", [])],
            supervision_losses=[float(e) for e in payload.get("supervision_losses", [])],
            n_epochs_run=int(payload.get("n_epochs_run", 0)),
            stopped_early=bool(payload.get("stopped_early", False)),
        )


class RBMTrainer:
    """Minibatch trainer for :class:`repro.rbm.base.BaseRBM` models.

    Parameters
    ----------
    model : BaseRBM
        The model to train (modified in place).
    shuffle : bool, default True
        Reshuffle the data every epoch.
    early_stopping_tol : float or None, default None
        Stop when the relative improvement of the epoch reconstruction error
        falls below this tolerance for ``patience`` consecutive epochs.
    patience : int, default 3
    verbose : bool, default False
        Print one line per epoch.
    """

    def __init__(
        self,
        model,
        *,
        shuffle: bool = True,
        early_stopping_tol: float | None = None,
        patience: int = 3,
        verbose: bool = False,
    ) -> None:
        self.model = model
        self.shuffle = bool(shuffle)
        if early_stopping_tol is not None and early_stopping_tol < 0:
            raise ValidationError(
                f"early_stopping_tol must be non-negative, got {early_stopping_tol}"
            )
        self.early_stopping_tol = early_stopping_tol
        if patience < 1:
            raise ValidationError(f"patience must be >= 1, got {patience}")
        self.patience = int(patience)
        self.verbose = bool(verbose)

    def fit(self, data, supervision: LocalSupervision | None = None) -> "RBMTrainer":
        """Run the full training loop on ``data``."""
        data = check_array(data, name="data")
        model = self.model
        dtype = getattr(model, "dtype", None)
        if dtype is not None and data.dtype != dtype:
            # Cast once up front so the minibatch slices below reach
            # partial_fit in the model's compute dtype without per-batch copies.
            data = data.astype(dtype)
        model.initialize(data)
        if supervision is not None or hasattr(model, "set_supervision"):
            if hasattr(model, "set_supervision"):
                model.set_supervision(data, supervision)
            elif supervision is not None:
                raise ValidationError(
                    f"{type(model).__name__} does not accept a supervision; "
                    "use SlsRBM or SlsGRBM"
                )

        n_samples = data.shape[0]
        batch_size = min(model.batch_size, n_samples)
        rng = check_random_state(model.random_state)
        history = TrainingHistory()
        stall_count = 0

        for epoch in range(1, model.n_epochs + 1):
            order = rng.permutation(n_samples) if self.shuffle else np.arange(n_samples)
            errors = []
            for start in range(0, n_samples, batch_size):
                batch = data[order[start : start + batch_size]]
                errors.append(model.partial_fit(batch))
            epoch_error = float(np.mean(errors))
            history.reconstruction_errors.append(epoch_error)
            history.n_epochs_run = epoch

            if getattr(model, "has_supervision", False):
                history.supervision_losses.append(self._supervision_loss(model))

            if self.verbose:  # pragma: no cover - logging only
                extra = (
                    f", supervision loss {history.supervision_losses[-1]:.5f}"
                    if history.supervision_losses
                    else ""
                )
                print(
                    f"[{type(model).__name__}] epoch {epoch}/{model.n_epochs}: "
                    f"reconstruction error {epoch_error:.5f}{extra}"
                )

            if self.early_stopping_tol is not None and epoch > 1:
                previous = history.reconstruction_errors[-2]
                improvement = (previous - epoch_error) / max(abs(previous), 1e-12)
                if improvement < self.early_stopping_tol:
                    stall_count += 1
                else:
                    stall_count = 0
                if stall_count >= self.patience:
                    history.stopped_early = True
                    break

        self.history_ = history
        return self

    @staticmethod
    def _supervision_loss(model) -> float:
        """``L_data + L_recon`` of the attached supervision at the current params."""
        return model.supervision_loss()
