"""slsRBM: self-learning local supervision RBM with binary visible units.

Instantiation of the framework with binary visible and hidden units and the
sigmoid transformation for the visible reconstruction (Fig. 1, Section IV).
The paper trains it with ``eta = 0.5`` and learning rate ``1e-5`` on the UCI
datasets; those are the defaults here.
"""

from __future__ import annotations

from repro.rbm.rbm import BernoulliRBM
from repro.rbm.sls_base import SupervisedCDMixin

__all__ = ["SlsRBM"]


class SlsRBM(SupervisedCDMixin, BernoulliRBM):
    """Binary-binary RBM whose CD learning is guided by local supervisions.

    See :class:`repro.rbm.sls_base.SupervisedCDMixin` for the supervision
    parameters and :class:`repro.rbm.rbm.BernoulliRBM` for the energy model.
    """

    model_kind = "sls_rbm"

    def __init__(
        self,
        n_hidden: int,
        *,
        eta: float = 0.5,
        learning_rate: float = 1e-3,
        **kwargs,
    ) -> None:
        super().__init__(n_hidden, eta=eta, learning_rate=learning_rate, **kwargs)
