"""Restricted Boltzmann machines and the self-learning local supervision models.

Contents
--------
* :class:`BernoulliRBM` — classical binary-binary RBM trained with CD-k
  (the "RBM" baseline of the paper).
* :class:`GaussianRBM` — Gaussian linear visible units, binary hidden units
  (the "GRBM" baseline).
* :class:`SlsRBM` / :class:`SlsGRBM` — the paper's contribution: the CD update
  is augmented with the analytic gradient of the constrict/disperse loss
  computed over the self-learning local supervisions (Eq. 27-35).
* :mod:`repro.rbm.objective` / :mod:`repro.rbm.gradients` — the loss
  ``L_data`` / ``L_recon`` of Eq. 14-15 and its exact gradients.
* :class:`RBMTrainer` — epoch/minibatch training driver with history
  recording.
"""

from repro.rbm.base import BaseRBM, CDStatistics
from repro.rbm.gradients import constrict_disperse_gradient, SupervisionGradients
from repro.rbm.grbm import GaussianRBM
from repro.rbm.objective import (
    constrict_disperse_loss,
    constrict_loss,
    disperse_loss,
    sls_objective,
)
from repro.rbm.rbm import BernoulliRBM
from repro.rbm.sls_grbm import SlsGRBM
from repro.rbm.sls_rbm import SlsRBM
from repro.rbm.trainer import RBMTrainer, TrainingHistory

__all__ = [
    "BaseRBM",
    "CDStatistics",
    "BernoulliRBM",
    "GaussianRBM",
    "SlsRBM",
    "SlsGRBM",
    "constrict_loss",
    "disperse_loss",
    "constrict_disperse_loss",
    "sls_objective",
    "constrict_disperse_gradient",
    "SupervisionGradients",
    "RBMTrainer",
    "TrainingHistory",
]
