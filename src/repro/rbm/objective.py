"""Constrict/disperse loss of the self-learning local supervision framework.

Eq. 14 of the paper defines, for hidden features of the visible data,

    L_data = (1/N_h) sum_k sum_{h_s, h_t in H_k} ||h_s - h_t||^2
           - (1/N_C) sum_{p<q} ||C_p - C_q||^2,

and Eq. 15 the analogous ``L_recon`` over the hidden features of the
reconstructed data.  ``H_k`` are the hidden images of the credible local
clusters ``V_k``; ``C_k`` are the hidden cluster centres; ``N_C = K(K-1)/2``.
The first term *constricts* same-cluster features, the second *disperses*
the centres of different clusters.

Normalisation conventions (the paper leaves them implicit): ``N_h`` is the
total number of ordered same-cluster pairs, ``N_C`` the number of centre
pairs, so both terms are per-pair averages of comparable magnitude.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.numerics import pairwise_squared_distances

__all__ = [
    "constrict_loss",
    "disperse_loss",
    "constrict_disperse_loss",
    "cluster_centers",
    "sls_objective",
]


def _check_index_sets(index_sets: dict[int, np.ndarray], n_samples: int) -> None:
    if not index_sets:
        raise ValidationError("index_sets must contain at least one cluster")
    for cluster_id, indices in index_sets.items():
        indices = np.asarray(indices)
        if indices.ndim != 1 or indices.size == 0:
            raise ValidationError(f"cluster {cluster_id} has an invalid index set")
        if indices.min() < 0 or indices.max() >= n_samples:
            raise ValidationError(
                f"cluster {cluster_id} references rows outside the feature matrix"
            )


def cluster_centers(
    features: np.ndarray, index_sets: dict[int, np.ndarray]
) -> np.ndarray:
    """Mean feature vector of each local cluster, ordered by cluster id."""
    features = np.asarray(features, dtype=float)
    _check_index_sets(index_sets, features.shape[0])
    return np.vstack(
        [features[np.asarray(index_sets[cid])].mean(axis=0) for cid in sorted(index_sets)]
    )


def constrict_loss(features: np.ndarray, index_sets: dict[int, np.ndarray]) -> float:
    """Average squared distance between same-cluster feature pairs.

    This is the first (constriction) term of Eq. 14; smaller is better.
    """
    features = np.asarray(features, dtype=float)
    _check_index_sets(index_sets, features.shape[0])
    total = 0.0
    n_pairs = 0
    for cluster_id in sorted(index_sets):
        members = features[np.asarray(index_sets[cluster_id])]
        count = members.shape[0]
        if count < 2:
            continue
        distances = pairwise_squared_distances(members)
        total += float(distances.sum())
        n_pairs += count * count - count
    if n_pairs == 0:
        return 0.0
    return total / n_pairs


def disperse_loss(features: np.ndarray, index_sets: dict[int, np.ndarray]) -> float:
    """Average squared distance between the centres of different clusters.

    This is the second (dispersion) term of Eq. 14; larger is better, so it
    enters the combined loss with a negative sign.
    """
    centers = cluster_centers(features, index_sets)
    n_clusters = centers.shape[0]
    if n_clusters < 2:
        return 0.0
    distances = pairwise_squared_distances(centers)
    upper = np.triu_indices(n_clusters, k=1)
    return float(distances[upper].mean())


def constrict_disperse_loss(
    features: np.ndarray, index_sets: dict[int, np.ndarray]
) -> float:
    """``L = constrict - disperse`` (Eq. 14 / Eq. 15 for a feature matrix)."""
    return constrict_loss(features, index_sets) - disperse_loss(features, index_sets)


def sls_objective(
    model,
    data: np.ndarray,
    index_sets: dict[int, np.ndarray],
    *,
    eta: float,
) -> dict[str, float]:
    """Evaluate the full objective of Eq. 16 for a fitted (sls)RBM model.

    The intractable average log-likelihood is replaced by the negative mean
    free energy (a standard monitoring proxy), so the returned ``objective``
    is comparable across training stages of the same model but not across
    models with different energy functions.

    Returns
    -------
    dict with keys ``log_likelihood_proxy``, ``l_data``, ``l_recon`` and
    ``objective``.
    """
    if not 0.0 < eta < 1.0:
        raise ValidationError(f"eta must lie in (0, 1), got {eta}")
    data = np.asarray(data, dtype=float)
    hidden_data = model.hidden_probabilities(data)
    visible_recon = model.visible_reconstruction(hidden_data)
    hidden_recon = model.hidden_probabilities(visible_recon)

    l_data = constrict_disperse_loss(hidden_data, index_sets)
    l_recon = constrict_disperse_loss(hidden_recon, index_sets)
    log_likelihood_proxy = float(-np.mean(model.free_energy(data)))
    objective = -eta * log_likelihood_proxy + (1.0 - eta) * (l_data + l_recon)
    return {
        "log_likelihood_proxy": log_likelihood_proxy,
        "l_data": l_data,
        "l_recon": l_recon,
        "objective": objective,
    }
