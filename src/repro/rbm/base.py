"""Shared RBM machinery: parameters, Gibbs sampling and CD-k statistics.

An RBM is parameterised by the weight matrix ``W`` (``n_visible x n_hidden``),
the visible bias ``a`` and the hidden bias ``b`` (Eq. 1).  The hidden
conditional is always ``p(h_j = 1 | v) = sigmoid(b_j + sum_i v_i w_ij)``
(Eq. 2); the visible conditional differs between the binary
(:class:`~repro.rbm.rbm.BernoulliRBM`) and Gaussian
(:class:`~repro.rbm.grbm.GaussianRBM`) models and is supplied by subclasses.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass

import numpy as np

from repro.core.estimator import EstimatorMixin
from repro.exceptions import NotFittedError, ValidationError
from repro.rbm.initialization import initialize_weights, visible_bias_from_data
from repro.utils.numerics import sigmoid
from repro.utils.rng import check_random_state
from repro.utils.validation import check_array, check_positive_int

__all__ = ["BaseRBM", "CDStatistics"]


@dataclass(frozen=True)
class CDStatistics:
    """Sufficient statistics of one contrastive-divergence step.

    Attributes
    ----------
    visible_data, hidden_data : ndarray
        Positive-phase visible batch and hidden probabilities driven by it.
    visible_recon, hidden_recon : ndarray
        Negative-phase (reconstructed) visible batch and its hidden
        probabilities.
    grad_weights, grad_visible_bias, grad_hidden_bias : ndarray
        The CD-k likelihood-gradient estimates
        ``<v h>_data - <v h>_recon`` etc. (Eq. 7-9), already averaged over the
        batch.
    """

    visible_data: np.ndarray
    hidden_data: np.ndarray
    visible_recon: np.ndarray
    hidden_recon: np.ndarray
    grad_weights: np.ndarray
    grad_visible_bias: np.ndarray
    grad_hidden_bias: np.ndarray

    @property
    def reconstruction_error(self) -> float:
        """Mean squared reconstruction error of the batch."""
        diff = self.visible_data - self.visible_recon
        return float(np.mean(diff**2))


class BaseRBM(EstimatorMixin, abc.ABC):
    """Common implementation shared by all four RBM variants.

    Parameters
    ----------
    n_hidden : int
        Number of binary hidden units.
    learning_rate : float
        CD learning rate ``epsilon`` (Eq. 7).
    n_epochs : int
        Training epochs over the full dataset.
    batch_size : int
        Minibatch size.
    cd_steps : int, default 1
        Number of Gibbs half-steps ``k`` in CD-k; the paper uses CD-1.
    weight_sigma : float, default 0.01
        Standard deviation of the initial Gaussian weights.
    momentum : float, default 0.0
        Classical momentum applied to all parameter updates.
    weight_decay : float, default 0.0
        L2 penalty coefficient on the weights.
    sample_hidden_states : bool, default True
        Whether to binarise hidden states between the positive and negative
        phase (standard CD-1).  The hidden *probabilities* are always used for
        the gradient statistics, as recommended by Hinton's practical guide.
    dtype : {"float64", "float32"} or numpy dtype, default "float64"
        Compute/storage precision of the parameters, activations and
        gradients.  float32 halves memory traffic and roughly doubles matmul
        throughput on most CPUs; CD training is stochastic-noise dominated,
        so the reduced precision does not measurably change feature quality
        (see the README "Performance" section for the trade-offs).
    random_state : int, Generator or None
        Seed controlling initialisation and sampling.
    verbose : bool, default False
        Print one line per epoch when fitting through :class:`RBMTrainer`.
    """

    def __init__(
        self,
        n_hidden: int,
        *,
        learning_rate: float = 1e-3,
        n_epochs: int = 20,
        batch_size: int = 64,
        cd_steps: int = 1,
        weight_sigma: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        sample_hidden_states: bool = True,
        dtype="float64",
        random_state=None,
        verbose: bool = False,
    ) -> None:
        self.n_hidden = check_positive_int(n_hidden, name="n_hidden")
        if learning_rate <= 0:
            raise ValidationError(f"learning_rate must be positive, got {learning_rate}")
        self.learning_rate = float(learning_rate)
        self.n_epochs = check_positive_int(n_epochs, name="n_epochs")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.cd_steps = check_positive_int(cd_steps, name="cd_steps")
        if weight_sigma <= 0:
            raise ValidationError(f"weight_sigma must be positive, got {weight_sigma}")
        self.weight_sigma = float(weight_sigma)
        if not 0.0 <= momentum < 1.0:
            raise ValidationError(f"momentum must lie in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        if weight_decay < 0:
            raise ValidationError(f"weight_decay must be non-negative, got {weight_decay}")
        self.weight_decay = float(weight_decay)
        self.sample_hidden_states = bool(sample_hidden_states)
        try:
            self.dtype = np.dtype(dtype)
        except TypeError as exc:
            raise ValidationError(f"dtype {dtype!r} is not a numpy dtype") from exc
        if self.dtype not in (np.dtype(np.float32), np.dtype(np.float64)):
            raise ValidationError(
                f"dtype must be float32 or float64, got {self.dtype.name!r}"
            )
        self.random_state = random_state
        self.verbose = bool(verbose)

    #: Registry key of the concrete variant ("rbm", "grbm", "sls_rbm",
    #: "sls_grbm"); used by :mod:`repro.persistence` to rebuild the right
    #: class from an artifact manifest.
    model_kind: str = ""

    # -------------------------------------------------------------- properties
    @property
    def is_fitted(self) -> bool:
        return hasattr(self, "weights_")

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} is not fitted yet; call fit() first"
            )

    # ------------------------------------------------------------ initialisation
    def initialize(self, data: np.ndarray) -> None:
        """Initialise parameters for data with ``data.shape[1]`` visible units."""
        data = check_array(data, name="data")
        self._rng = check_random_state(self.random_state)
        self.n_visible_ = data.shape[1]
        self.weights_ = initialize_weights(
            self.n_visible_,
            self.n_hidden,
            sigma=self.weight_sigma,
            random_state=self._rng,
        ).astype(self.dtype, copy=False)
        self.visible_bias_ = visible_bias_from_data(
            data, binary=self._binary_visible
        ).astype(self.dtype, copy=False)
        self.hidden_bias_ = np.zeros(self.n_hidden, dtype=self.dtype)
        self._velocity_weights = np.zeros_like(self.weights_)
        self._velocity_visible_bias = np.zeros_like(self.visible_bias_)
        self._velocity_hidden_bias = np.zeros_like(self.hidden_bias_)

    # -------------------------------------------------------------- conditionals
    def hidden_probabilities(self, visible: np.ndarray) -> np.ndarray:
        """``p(h = 1 | v) = sigmoid(b + v W)`` (Eq. 2), row per sample."""
        self._check_fitted()
        visible = np.atleast_2d(np.asarray(visible, dtype=self.dtype))
        pre_activation = visible @ self.weights_
        pre_activation += self.hidden_bias_
        return sigmoid(pre_activation, out=pre_activation)

    def sample_hidden(self, hidden_probabilities: np.ndarray) -> np.ndarray:
        """Bernoulli sample of the hidden units from their probabilities."""
        self._check_fitted()
        return (
            self._rng.random(hidden_probabilities.shape) < hidden_probabilities
        ).astype(self.dtype)

    @property
    @abc.abstractmethod
    def _binary_visible(self) -> bool:
        """Whether the visible layer is binary (affects bias initialisation)."""

    @abc.abstractmethod
    def visible_reconstruction(self, hidden: np.ndarray) -> np.ndarray:
        """Deterministic reconstruction of the visible layer from hidden units.

        Binary models use the sigmoid transformation (Eq. 3); Gaussian models
        use the linear transformation ``h W^T + a`` (Eq. 5 with unit variance).
        """

    @abc.abstractmethod
    def sample_visible(self, hidden: np.ndarray) -> np.ndarray:
        """Stochastic reconstruction of the visible layer from hidden units."""

    @abc.abstractmethod
    def free_energy(self, visible: np.ndarray) -> np.ndarray:
        """Free energy ``F(v)`` per sample (lower is more probable)."""

    # ------------------------------------------------------------------ CD step
    def contrastive_divergence(self, batch: np.ndarray) -> CDStatistics:
        """Run CD-k on one minibatch and return the gradient statistics."""
        self._check_fitted()
        batch = np.atleast_2d(np.asarray(batch, dtype=self.dtype))

        hidden_data = self.hidden_probabilities(batch)
        hidden_states = (
            self.sample_hidden(hidden_data) if self.sample_hidden_states else hidden_data
        )

        visible_recon = batch
        hidden_recon = hidden_data
        for step in range(self.cd_steps):
            visible_recon = self.visible_reconstruction(hidden_states)
            hidden_recon = self.hidden_probabilities(visible_recon)
            if step + 1 < self.cd_steps:
                hidden_states = self.sample_hidden(hidden_recon)

        batch_size = batch.shape[0]
        grad_weights = (batch.T @ hidden_data - visible_recon.T @ hidden_recon) / batch_size
        grad_visible_bias = (batch - visible_recon).mean(axis=0)
        grad_hidden_bias = (hidden_data - hidden_recon).mean(axis=0)

        return CDStatistics(
            visible_data=batch,
            hidden_data=hidden_data,
            visible_recon=visible_recon,
            hidden_recon=hidden_recon,
            grad_weights=grad_weights,
            grad_visible_bias=grad_visible_bias,
            grad_hidden_bias=grad_hidden_bias,
        )

    # ----------------------------------------------------------- parameter update
    def apply_update(
        self,
        grad_weights: np.ndarray,
        grad_visible_bias: np.ndarray,
        grad_hidden_bias: np.ndarray,
    ) -> None:
        """Gradient-ascent step with momentum and weight decay.

        The gradients are likelihood gradients (to be *added*); any descent
        direction must be passed already negated.
        """
        self._check_fitted()
        step_w = self.learning_rate * (grad_weights - self.weight_decay * self.weights_)
        step_a = self.learning_rate * grad_visible_bias
        step_b = self.learning_rate * grad_hidden_bias

        if self.momentum > 0.0:
            self._velocity_weights = self.momentum * self._velocity_weights + step_w
            self._velocity_visible_bias = (
                self.momentum * self._velocity_visible_bias + step_a
            )
            self._velocity_hidden_bias = (
                self.momentum * self._velocity_hidden_bias + step_b
            )
            self.weights_ += self._velocity_weights
            self.visible_bias_ += self._velocity_visible_bias
            self.hidden_bias_ += self._velocity_hidden_bias
        else:
            self.weights_ += step_w
            self.visible_bias_ += step_a
            self.hidden_bias_ += step_b

    def partial_fit(self, batch: np.ndarray) -> float:
        """One CD update on one minibatch; returns its reconstruction error.

        Subclasses with extra loss terms (the sls models) override this to
        inject the supervision gradients.
        """
        stats = self.contrastive_divergence(batch)
        self.apply_update(
            stats.grad_weights, stats.grad_visible_bias, stats.grad_hidden_bias
        )
        return stats.reconstruction_error

    # ------------------------------------------------------------------ fitting
    def fit(self, data, **fit_params) -> "BaseRBM":
        """Train the model; delegated to :class:`repro.rbm.trainer.RBMTrainer`."""
        from repro.rbm.trainer import RBMTrainer  # local import to avoid a cycle

        trainer = RBMTrainer(self, verbose=self.verbose)
        trainer.fit(data, **fit_params)
        self.training_history_ = trainer.history_
        return self

    def transform(self, data) -> np.ndarray:
        """Hidden-layer features (probabilities) for ``data``."""
        self._check_fitted()
        data = check_array(data, name="data")
        if data.shape[1] != self.n_visible_:
            raise ValidationError(
                f"data has {data.shape[1]} features but the model was trained "
                f"with {self.n_visible_} visible units"
            )
        return self.hidden_probabilities(data)

    def fit_transform(self, data, **fit_params) -> np.ndarray:
        """Fit the model and return the hidden features of ``data``."""
        return self.fit(data, **fit_params).transform(data)

    def reconstruct(self, data) -> np.ndarray:
        """Deterministic one-step reconstruction of ``data``."""
        self._check_fitted()
        data = check_array(data, name="data")
        hidden = self.hidden_probabilities(data)
        return self.visible_reconstruction(hidden)

    def reconstruction_error(self, data) -> float:
        """Mean squared one-step reconstruction error over ``data``."""
        data = check_array(data, name="data")
        return float(np.mean((data - self.reconstruct(data)) ** 2))

    def score(self, data) -> float:
        """Average negative free energy (higher means the data is more probable
        under the model); a cheap proxy for the log-likelihood."""
        data = check_array(data, name="data")
        return float(-np.mean(self.free_energy(data)))

    # ------------------------------------------------------------- persistence
    def get_config(self) -> dict:
        """Constructor keyword arguments reproducing this estimator.

        The JSON-safe twin of ``get_params(deep=False)``: the ``dtype`` is
        returned by name and a ``random_state`` given as a
        ``numpy.random.Generator`` cannot be round-tripped, so it is replaced
        by ``None``.
        """
        config = self.get_params(deep=False)
        config["dtype"] = self.dtype.name
        if not isinstance(config["random_state"], (int, type(None))):
            config["random_state"] = None
        return config

    def get_state(self) -> dict:
        """Complete fitted state of the model, split by storage medium.

        Returns a dictionary with:

        * ``"arrays"`` — mapping of name to ndarray (weights, biases and the
          momentum velocities), suitable for ``numpy.savez``;
        * ``"history"`` — :meth:`TrainingHistory.to_dict` payload or ``None``
          when the model was initialised but never trained through the
          trainer;
        * ``"supervision"`` — always ``None`` for the plain models; the sls
          mixin overrides this with the attached supervision state.

        (Before the unified estimator protocol this was called
        ``get_params()``; ``get_params`` now returns the constructor
        parameters as everywhere else in the package.)
        """
        self._check_fitted()
        history = getattr(self, "training_history_", None)
        return {
            "arrays": {
                "weights": self.weights_.copy(),
                "visible_bias": self.visible_bias_.copy(),
                "hidden_bias": self.hidden_bias_.copy(),
                "velocity_weights": self._velocity_weights.copy(),
                "velocity_visible_bias": self._velocity_visible_bias.copy(),
                "velocity_hidden_bias": self._velocity_hidden_bias.copy(),
            },
            "history": history.to_dict() if history is not None else None,
            "supervision": None,
        }

    def set_state(self, params: dict) -> "BaseRBM":
        """Restore the state captured by :meth:`get_state`.

        Inference (:meth:`transform`, :meth:`reconstruct`, :meth:`score`) is
        bitwise-identical after a round-trip; the sampling stream is reseeded
        from ``random_state``, so stochastic continuations may diverge from an
        uninterrupted run.
        """
        from repro.rbm.trainer import TrainingHistory  # local import, avoids a cycle

        arrays = params["arrays"]
        weights = np.asarray(arrays["weights"], dtype=self.dtype)
        if weights.ndim != 2:
            raise ValidationError(f"weights must be 2-D, got shape {weights.shape}")
        if weights.shape[1] != self.n_hidden:
            raise ValidationError(
                f"weights have {weights.shape[1]} hidden columns but the model "
                f"was constructed with n_hidden={self.n_hidden}"
            )
        self.n_visible_ = weights.shape[0]
        self.weights_ = weights
        self.visible_bias_ = np.asarray(arrays["visible_bias"], dtype=self.dtype)
        self.hidden_bias_ = np.asarray(arrays["hidden_bias"], dtype=self.dtype)
        if self.visible_bias_.shape != (self.n_visible_,):
            raise ValidationError(
                f"visible_bias has shape {self.visible_bias_.shape}, "
                f"expected ({self.n_visible_},)"
            )
        if self.hidden_bias_.shape != (self.n_hidden,):
            raise ValidationError(
                f"hidden_bias has shape {self.hidden_bias_.shape}, "
                f"expected ({self.n_hidden},)"
            )
        self._velocity_weights = np.asarray(
            arrays.get("velocity_weights", np.zeros_like(weights)), dtype=self.dtype
        )
        self._velocity_visible_bias = np.asarray(
            arrays.get("velocity_visible_bias", np.zeros_like(self.visible_bias_)),
            dtype=self.dtype,
        )
        self._velocity_hidden_bias = np.asarray(
            arrays.get("velocity_hidden_bias", np.zeros_like(self.hidden_bias_)),
            dtype=self.dtype,
        )
        self._rng = check_random_state(self.random_state)
        history = params.get("history")
        if history is not None:
            self.training_history_ = TrainingHistory.from_dict(history)
        return self

    def set_params(self, *args, **params):
        """Estimator-protocol parameter update (see :class:`EstimatorMixin`).

        Calling it with a single positional state dictionary — the pre-protocol
        persistence signature — still works but is deprecated in favour of
        :meth:`set_state`.
        """
        if args:
            if len(args) == 1 and isinstance(args[0], dict) and not params:
                warnings.warn(
                    "set_params(state_dict) is deprecated; use set_state() for "
                    "fitted state and set_params(**params) for constructor "
                    "parameters",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return self.set_state(args[0])
            raise TypeError(
                "set_params takes keyword parameters only "
                "(or one legacy state dictionary)"
            )
        return super().set_params(**params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_hidden={self.n_hidden}, "
            f"learning_rate={self.learning_rate}, n_epochs={self.n_epochs}, "
            f"batch_size={self.batch_size}, cd_steps={self.cd_steps})"
        )
