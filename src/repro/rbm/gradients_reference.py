"""Reference (loop-based) constrict/disperse kernels.

These are the original, straightforward implementations of the supervision
gradient (Eq. 27-32) and its loss: a closed-form constriction term evaluated
cluster by cluster, an O(K^2) Python loop over centre pairs for the
dispersion term, and an O(n_k^2) Gram matrix for the loss.  They are kept —
verbatim in structure — for two reasons:

* correctness anchor: the vectorized kernels in :mod:`repro.rbm.gradients`
  must match them to ~1e-10 (see ``tests/rbm/test_gradient_equivalence.py``);
* measuring stick: ``python -m repro bench`` times the fused kernels against
  these to keep the speedup trajectory visible in ``BENCH_training.json``.

Do not optimise this module; optimise :mod:`repro.rbm.gradients` instead.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.numerics import sigmoid

__all__ = [
    "constrict_disperse_gradient_reference",
    "constrict_disperse_loss_reference",
]


def _pairwise_terms_reference(
    visible: np.ndarray, hidden: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Closed-form constriction term of one cluster (unnormalised)."""
    count = visible.shape[0]
    derivative = hidden * (1.0 - hidden)  # d_sj = h_sj (1 - h_sj)
    hidden_sum = hidden.sum(axis=0)  # (n_hidden,)
    weighted = hidden * derivative  # h_sj d_sj

    grad_w = 2.0 * (count * (visible.T @ weighted) - (visible.T @ derivative) * hidden_sum)
    grad_b = 2.0 * (
        count * (hidden * derivative).sum(axis=0) - hidden_sum * derivative.sum(axis=0)
    )
    return grad_w, grad_b


def _center_terms_reference(
    visible_centers: np.ndarray, hidden_centers: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dispersion term summed over all centre pairs ``p < q`` (unnormalised)."""
    n_clusters, n_hidden = hidden_centers.shape
    n_visible = visible_centers.shape[1]
    grad_w = np.zeros((n_visible, n_hidden))
    grad_b = np.zeros(n_hidden)
    derivative = hidden_centers * (1.0 - hidden_centers)
    for p in range(n_clusters - 1):
        for q in range(p + 1, n_clusters):
            delta = hidden_centers[p] - hidden_centers[q]  # (n_hidden,)
            grad_w += np.outer(visible_centers[p], delta * derivative[p]) - np.outer(
                visible_centers[q], delta * derivative[q]
            )
            grad_b += delta * (derivative[p] - derivative[q])
    return grad_w, grad_b


def constrict_disperse_gradient_reference(
    visible: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    index_sets: dict[int, np.ndarray],
):
    """Loop-based gradient of Eq. 14/15; see :mod:`repro.rbm.gradients`."""
    from repro.rbm.gradients import SupervisionGradients

    visible = np.asarray(visible, dtype=float)
    weights = np.asarray(weights, dtype=float)
    hidden_bias = np.asarray(hidden_bias, dtype=float)
    if not index_sets:
        raise ValidationError("index_sets must contain at least one cluster")

    n_visible, n_hidden = weights.shape
    grad_w_pairs = np.zeros((n_visible, n_hidden))
    grad_b_pairs = np.zeros(n_hidden)
    n_ordered_pairs = 0

    cluster_ids = sorted(index_sets)
    visible_centers = np.zeros((len(cluster_ids), n_visible))

    for row, cluster_id in enumerate(cluster_ids):
        indices = np.asarray(index_sets[cluster_id], dtype=int)
        if indices.ndim != 1 or indices.size == 0:
            raise ValidationError(f"cluster {cluster_id} has an invalid index set")
        members_visible = visible[indices]
        visible_centers[row] = members_visible.mean(axis=0)
        count = indices.shape[0]
        if count < 2:
            continue
        members_hidden = sigmoid(hidden_bias + members_visible @ weights)
        grad_w, grad_b = _pairwise_terms_reference(members_visible, members_hidden)
        grad_w_pairs += grad_w
        grad_b_pairs += grad_b
        n_ordered_pairs += count * count - count

    if n_ordered_pairs > 0:
        grad_w_pairs = 2.0 * grad_w_pairs / n_ordered_pairs
        grad_b_pairs = 2.0 * grad_b_pairs / n_ordered_pairs

    n_clusters = len(cluster_ids)
    if n_clusters >= 2:
        hidden_centers = sigmoid(hidden_bias + visible_centers @ weights)
        grad_w_centers, grad_b_centers = _center_terms_reference(
            visible_centers, hidden_centers
        )
        n_center_pairs = n_clusters * (n_clusters - 1) / 2.0
        grad_w_centers = 2.0 * grad_w_centers / n_center_pairs
        grad_b_centers = 2.0 * grad_b_centers / n_center_pairs
    else:
        grad_w_centers = np.zeros_like(grad_w_pairs)
        grad_b_centers = np.zeros_like(grad_b_pairs)

    return SupervisionGradients(
        grad_weights=grad_w_pairs - grad_w_centers,
        grad_hidden_bias=grad_b_pairs - grad_b_centers,
    )


def constrict_disperse_loss_reference(
    visible: np.ndarray,
    weights: np.ndarray,
    hidden_bias: np.ndarray,
    index_sets: dict[int, np.ndarray],
) -> float:
    """Loop/Gram-matrix evaluation of the constrict/disperse loss."""
    visible = np.asarray(visible, dtype=float)
    weights = np.asarray(weights, dtype=float)
    hidden_bias = np.asarray(hidden_bias, dtype=float)
    if not index_sets:
        raise ValidationError("index_sets must contain at least one cluster")

    cluster_ids = sorted(index_sets)
    constrict_total = 0.0
    n_ordered_pairs = 0
    visible_centers = np.zeros((len(cluster_ids), visible.shape[1]))
    for row, cluster_id in enumerate(cluster_ids):
        indices = np.asarray(index_sets[cluster_id], dtype=int)
        members_visible = visible[indices]
        visible_centers[row] = members_visible.mean(axis=0)
        count = indices.shape[0]
        if count < 2:
            continue
        hidden = sigmoid(hidden_bias + members_visible @ weights)
        squared_norms = np.sum(hidden**2, axis=1)
        gram = hidden @ hidden.T
        pair_distances = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
        constrict_total += float(np.maximum(pair_distances, 0.0).sum())
        n_ordered_pairs += count * count - count
    constrict = constrict_total / n_ordered_pairs if n_ordered_pairs else 0.0

    n_clusters = len(cluster_ids)
    disperse = 0.0
    if n_clusters >= 2:
        hidden_centers = sigmoid(hidden_bias + visible_centers @ weights)
        total = 0.0
        for p in range(n_clusters - 1):
            for q in range(p + 1, n_clusters):
                diff = hidden_centers[p] - hidden_centers[q]
                total += float(diff @ diff)
        disperse = total / (n_clusters * (n_clusters - 1) / 2.0)
    return constrict - disperse
