"""Lloyd's K-means with k-means++ initialisation and multiple restarts."""

from __future__ import annotations

import warnings

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.utils.numerics import pairwise_squared_distances
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int

__all__ = ["KMeans", "kmeans_plus_plus"]


def kmeans_plus_plus(
    data: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: return ``n_clusters`` initial centres.

    The first centre is drawn uniformly; each subsequent centre is drawn with
    probability proportional to its squared distance to the closest centre
    chosen so far.
    """
    n_samples = data.shape[0]
    centers = np.empty((n_clusters, data.shape[1]), dtype=float)
    first = int(rng.integers(n_samples))
    centers[0] = data[first]
    closest_sq = pairwise_squared_distances(data, centers[:1]).ravel()
    for index in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0.0:
            # All remaining points coincide with an existing centre; pick
            # uniformly at random.
            choice = int(rng.integers(n_samples))
        else:
            probabilities = closest_sq / total
            choice = int(rng.choice(n_samples, p=probabilities))
        centers[index] = data[choice]
        new_sq = pairwise_squared_distances(data, centers[index : index + 1]).ravel()
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


class KMeans(BaseClusterer):
    """Lloyd's algorithm with k-means++ initialisation.

    Parameters
    ----------
    n_clusters : int
        Number of clusters ``K``.
    n_init : int, default 10
        Number of random restarts; the solution with the lowest inertia
        (within-cluster sum of squared distances) is kept.
    max_iter : int, default 300
        Maximum Lloyd iterations per restart.
    tol : float, default 1e-6
        Relative centre-movement tolerance for declaring convergence.
    random_state : int, Generator or None
        Seed for initialisation.

    Attributes
    ----------
    labels_ : ndarray of shape (n_samples,)
    cluster_centers_ : ndarray of shape (n_clusters, n_features)
    inertia_ : float
    n_iter_ : int
        Iterations used by the best restart.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        n_init: int = 10,
        max_iter: int = 300,
        tol: float = 1e-6,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.n_init = check_positive_int(n_init, name="n_init")
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        if tol < 0:
            raise ValidationError(f"tol must be non-negative, got {tol}")
        self.tol = float(tol)
        self.random_state = random_state

    @property
    def name(self) -> str:
        return "K-means"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if self.n_clusters > n_samples:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )
        rng = check_random_state(self.random_state)

        best_inertia = np.inf
        best_labels = None
        best_centers = None
        best_iterations = 0
        for _ in range(self.n_init):
            labels, centers, inertia, iterations = self._single_run(data, rng)
            if inertia < best_inertia:
                best_inertia = inertia
                best_labels = labels
                best_centers = centers
                best_iterations = iterations

        self.labels_ = best_labels
        self.cluster_centers_ = best_centers
        self.inertia_ = float(best_inertia)
        self.n_iter_ = int(best_iterations)

    def _single_run(
        self, data: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float, int]:
        n_samples = data.shape[0]
        centers = kmeans_plus_plus(data, self.n_clusters, rng)
        labels = np.zeros(n_samples, dtype=int)
        one_hot = np.zeros((n_samples, self.n_clusters), dtype=data.dtype)
        sample_rows = np.arange(n_samples)
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = pairwise_squared_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            # Per-cluster sums/means as one matmul against the assignment
            # indicator instead of a Python loop over clusters.
            one_hot[:] = 0.0
            one_hot[sample_rows, labels] = 1.0
            counts = np.bincount(labels, minlength=self.n_clusters)
            sums = one_hot.T @ data
            new_centers = sums / np.maximum(counts, 1)[:, None]
            empty = counts == 0
            if empty.any():
                # Re-seed empty clusters at the point farthest from its
                # assigned centre to keep exactly K clusters alive.
                farthest = int(np.argmax(np.min(distances, axis=1)))
                new_centers[empty] = data[farthest]
            shift = float(np.sqrt(((new_centers - centers) ** 2).sum()))
            centers = new_centers
            scale = float(np.sqrt((centers**2).sum())) + 1e-12
            if shift / scale <= self.tol:
                break
        else:
            warnings.warn(
                "KMeans reached max_iter without converging", ConvergenceWarning
            )

        distances = pairwise_squared_distances(data, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(data.shape[0]), labels].sum())
        return labels, centers, inertia, iteration

    def predict(self, data) -> np.ndarray:
        """Assign new samples to the nearest fitted centre."""
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        distances = pairwise_squared_distances(data, self.cluster_centers_)
        return np.argmin(distances, axis=1)
