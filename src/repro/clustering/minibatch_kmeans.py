"""Mini-batch K-means (Sculley, WWW 2010) for large-sample clustering.

A streaming variant of Lloyd's algorithm: each iteration samples a small
batch, assigns it to the nearest centres and moves those centres by a
per-centre learning rate ``1 / count``.  Memory stays bounded by the batch
size, which makes it the clusterer of choice when the full ``n x n`` or
``n x k`` sweeps of the exact algorithms no longer fit — the serving-scale
counterpart of :class:`repro.clustering.kmeans.KMeans`.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.clustering.kmeans import kmeans_plus_plus
from repro.exceptions import ValidationError
from repro.utils.numerics import pairwise_squared_distances
from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int

__all__ = ["MiniBatchKMeans"]


class MiniBatchKMeans(BaseClusterer):
    """K-means on random mini-batches with per-centre learning rates.

    Parameters
    ----------
    n_clusters : int
        Number of clusters ``K``.
    batch_size : int, default 256
        Samples drawn per update step (clipped to ``n_samples``).
    max_iter : int, default 100
        Number of mini-batch update steps.
    n_init : int, default 3
        Random restarts; the run with the lowest final inertia is kept.
    reassignment_ratio : float, default 0.01
        Centres whose assignment count falls below this fraction of the
        largest count are re-seeded at a random sample, keeping all ``K``
        clusters alive.
    random_state : int, Generator or None
        Seed for initialisation and batch sampling.

    Attributes
    ----------
    labels_ : ndarray of shape (n_samples,)
    cluster_centers_ : ndarray of shape (n_clusters, n_features)
    inertia_ : float
        Within-cluster sum of squared distances of the final full assignment.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        batch_size: int = 256,
        max_iter: int = 100,
        n_init: int = 3,
        reassignment_ratio: float = 0.01,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.batch_size = check_positive_int(batch_size, name="batch_size")
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        self.n_init = check_positive_int(n_init, name="n_init")
        if not 0.0 <= reassignment_ratio <= 1.0:
            raise ValidationError(
                f"reassignment_ratio must lie in [0, 1], got {reassignment_ratio}"
            )
        self.reassignment_ratio = float(reassignment_ratio)
        self.random_state = random_state

    @property
    def name(self) -> str:
        return "MiniBatchKMeans"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if self.n_clusters > n_samples:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )
        rng = check_random_state(self.random_state)
        batch_size = min(self.batch_size, n_samples)

        best_inertia = np.inf
        best_centers = None
        best_labels = None
        for _ in range(self.n_init):
            centers = self._single_run(data, batch_size, rng)
            distances = pairwise_squared_distances(data, centers)
            labels = np.argmin(distances, axis=1)
            inertia = float(
                distances[np.arange(n_samples), labels].sum()
            )
            if inertia < best_inertia:
                best_inertia = inertia
                best_centers = centers
                best_labels = labels

        self.labels_ = best_labels
        self.cluster_centers_ = best_centers
        self.inertia_ = float(best_inertia)

    def _single_run(
        self, data: np.ndarray, batch_size: int, rng: np.random.Generator
    ) -> np.ndarray:
        n_samples = data.shape[0]
        centers = kmeans_plus_plus(data, self.n_clusters, rng)
        counts = np.zeros(self.n_clusters, dtype=float)
        one_hot = np.zeros((batch_size, self.n_clusters), dtype=data.dtype)
        batch_rows = np.arange(batch_size)
        for _ in range(self.max_iter):
            batch = data[rng.integers(n_samples, size=batch_size)]
            assignment = np.argmin(
                pairwise_squared_distances(batch, centers), axis=1
            )
            batch_counts = np.bincount(assignment, minlength=self.n_clusters)
            counts += batch_counts
            # Per-centre gradient step towards the batch mean with learning
            # rate 1/count (the streaming average of Sculley's update), as
            # one one-hot matmul instead of a Python loop over clusters —
            # the same vectorisation as the exact KMeans centroid update.
            one_hot[:] = 0.0
            one_hot[batch_rows, assignment] = 1.0
            sums = one_hot.T @ batch
            hit = batch_counts > 0
            means = sums[hit] / batch_counts[hit, None]
            rate = (batch_counts[hit] / counts[hit])[:, None]
            centers[hit] += rate * (means - centers[hit])
            if self.reassignment_ratio > 0 and counts.max() > 0:
                starved = counts < self.reassignment_ratio * counts.max()
                n_starved = int(starved.sum())
                if n_starved:
                    picks = rng.integers(n_samples, size=n_starved)
                    centers[starved] = data[picks]
                    counts[starved] = counts.max() * self.reassignment_ratio
        return centers

    def predict(self, data) -> np.ndarray:
        """Assign new samples to the nearest fitted centre."""
        self._check_fitted()
        data = np.asarray(data, dtype=float)
        distances = pairwise_squared_distances(data, self.cluster_centers_)
        return np.argmin(distances, axis=1)
