"""Common interface for the clustering algorithms.

Every clusterer follows a small ``fit`` / ``fit_predict`` protocol and stores
its assignment in ``labels_`` so that the multi-clustering integration and the
experiment harness can treat all algorithms uniformly.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.estimator import EstimatorMixin
from repro.exceptions import NotFittedError
from repro.utils.validation import check_array

__all__ = ["BaseClusterer"]


class BaseClusterer(EstimatorMixin, abc.ABC):
    """Abstract base class for clustering estimators.

    Subclasses implement :meth:`_fit` which must set ``labels_`` (an integer
    vector of cluster assignments) and may set additional fitted attributes
    (cluster centres, exemplars, ...).  Through :class:`EstimatorMixin`
    every clusterer also implements the shared estimator protocol
    (``get_params`` / ``set_params`` / ``clone`` / ``is_fitted``).
    """

    #: set by :meth:`fit`; integer cluster assignment per sample
    labels_: np.ndarray

    @property
    def name(self) -> str:
        """Short human-readable algorithm name (class name by default)."""
        return type(self).__name__

    def fit(self, data) -> "BaseClusterer":
        """Cluster ``data`` (shape ``(n_samples, n_features)``) in place."""
        data = check_array(data, name="data")
        self._fit(data)
        if not hasattr(self, "labels_"):
            raise RuntimeError(
                f"{type(self).__name__}._fit() did not set labels_"
            )
        self.labels_ = np.asarray(self.labels_, dtype=int)
        self.n_samples_ = data.shape[0]
        self.n_features_ = data.shape[1]
        return self

    def fit_predict(self, data) -> np.ndarray:
        """Cluster ``data`` and return the label vector."""
        return self.fit(data).labels_

    @property
    def n_clusters_found_(self) -> int:
        """Number of distinct clusters in the fitted assignment."""
        self._check_fitted()
        return int(np.unique(self.labels_).shape[0])

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has produced a cluster assignment."""
        return hasattr(self, "labels_")

    def _check_fitted(self) -> None:
        if not self.is_fitted:
            raise NotFittedError(
                f"{type(self).__name__} instance is not fitted yet; call fit() first"
            )

    @abc.abstractmethod
    def _fit(self, data: np.ndarray) -> None:
        """Algorithm-specific fitting logic; must set ``self.labels_``."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{key}={value!r}"
            for key, value in sorted(vars(self).items())
            if not key.endswith("_")
        )
        return f"{type(self).__name__}({params})"
