"""Agglomerative (hierarchical) clustering.

Not part of the paper's evaluation grid, but an optional extra member of the
multi-clustering integration ensemble: adding a structurally different base
clusterer increases the diversity of the partitions fed to unanimous voting.
"""

from __future__ import annotations

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from repro.clustering.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["AgglomerativeClustering"]

_VALID_LINKAGE = ("ward", "complete", "average", "single")


class AgglomerativeClustering(BaseClusterer):
    """Bottom-up hierarchical clustering cut at ``n_clusters``.

    Parameters
    ----------
    n_clusters : int
        Number of flat clusters extracted from the dendrogram.
    linkage : {"ward", "complete", "average", "single"}, default "ward"
        Merge criterion.
    """

    def __init__(self, n_clusters: int, *, linkage: str = "ward") -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        if linkage not in _VALID_LINKAGE:
            raise ValidationError(
                f"linkage must be one of {_VALID_LINKAGE}, got {linkage!r}"
            )
        self.linkage = linkage

    @property
    def name(self) -> str:
        return f"Agglomerative({self.linkage})"

    def _fit(self, data: np.ndarray) -> None:
        if self.n_clusters > data.shape[0]:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={data.shape[0]}"
            )
        merge_tree = linkage(data, method=self.linkage)
        labels = fcluster(merge_tree, t=self.n_clusters, criterion="maxclust")
        self.labels_ = labels - 1  # fcluster labels start at 1
