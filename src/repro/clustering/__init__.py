"""Unsupervised clustering algorithms implemented from scratch.

The paper uses three base clusterers — Density Peaks (DP), K-means and
Affinity Propagation (AP) — both as producers of the self-learning local
supervisions and as the downstream algorithms evaluated on the learned hidden
features.  Agglomerative and spectral clustering are additionally provided as
optional members of a larger integration ensemble.
"""

from repro.clustering.affinity_propagation import AffinityPropagation
from repro.clustering.base import BaseClusterer
from repro.clustering.density_peaks import DensityPeaks
from repro.clustering.hierarchical import AgglomerativeClustering
from repro.clustering.kmeans import KMeans
from repro.clustering.minibatch_kmeans import MiniBatchKMeans
from repro.clustering.registry import available_clusterers, make_clusterer
from repro.clustering.spectral import SpectralClustering

__all__ = [
    "BaseClusterer",
    "KMeans",
    "MiniBatchKMeans",
    "AffinityPropagation",
    "DensityPeaks",
    "AgglomerativeClustering",
    "SpectralClustering",
    "make_clusterer",
    "available_clusterers",
]
