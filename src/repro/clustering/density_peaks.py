"""Density Peaks clustering (Rodriguez & Laio, Science 2014).

Cluster centres are points with high local density that lie far from any
point of higher density.  The remaining points are assigned to the same
cluster as their nearest neighbour of higher density.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.utils.numerics import pairwise_squared_distances
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["DensityPeaks"]


class DensityPeaks(BaseClusterer):
    """Clustering by fast search and find of density peaks.

    Parameters
    ----------
    n_clusters : int or None
        Number of centres to select (points with the largest ``rho * delta``
        decision value).  The paper evaluates DP with the ground-truth number
        of classes; ``None`` selects the number automatically from the gap in
        the sorted decision values.
    dc_percentile : float, default 2.0
        Percentile of the pairwise distance distribution used as the cutoff
        distance ``d_c`` (the original paper suggests 1-2 %).
    kernel : {"gaussian", "cutoff"}, default "gaussian"
        Local density estimator: a smooth Gaussian kernel or the original
        hard-cutoff count.

    Attributes
    ----------
    labels_ : ndarray of shape (n_samples,)
    center_indices_ : ndarray
        Indices of the selected density peaks.
    rho_ : ndarray
        Local density per sample.
    delta_ : ndarray
        Distance to the nearest sample of higher density.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        dc_percentile: float = 2.0,
        kernel: str = "gaussian",
    ) -> None:
        if n_clusters is not None:
            n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.n_clusters = n_clusters
        self.dc_percentile = check_in_range(
            dc_percentile, name="dc_percentile", low=0.1, high=100.0
        )
        if kernel not in ("gaussian", "cutoff"):
            raise ValidationError(
                f"kernel must be 'gaussian' or 'cutoff', got {kernel!r}"
            )
        self.kernel = kernel

    @property
    def name(self) -> str:
        return "DP"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if self.n_clusters is not None and self.n_clusters > n_samples:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )
        distances = np.sqrt(pairwise_squared_distances(data))

        rho = self._local_density(distances)
        delta, nearest_higher = self._delta(distances, rho)

        self.rho_ = rho
        self.delta_ = delta
        decision = rho * delta

        if self.n_clusters is None:
            n_centers = self._auto_select_centers(decision)
        else:
            n_centers = self.n_clusters
        center_indices = np.argsort(decision)[::-1][:n_centers]
        self.center_indices_ = np.sort(center_indices)

        labels = np.full(n_samples, -1, dtype=int)
        for cluster_id, center in enumerate(self.center_indices_):
            labels[center] = cluster_id

        # Assign remaining points in order of decreasing density to the
        # cluster of their nearest higher-density neighbour.
        order = np.argsort(rho)[::-1]
        for idx in order:
            if labels[idx] == -1:
                labels[idx] = labels[nearest_higher[idx]]
        self.labels_ = labels

    def _local_density(self, distances: np.ndarray) -> np.ndarray:
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        dc = float(np.percentile(off_diagonal, self.dc_percentile))
        if dc <= 0.0:
            dc = float(off_diagonal[off_diagonal > 0].min(initial=1.0))
        self.dc_ = dc
        if self.kernel == "gaussian":
            rho = np.exp(-((distances / dc) ** 2)).sum(axis=1) - 1.0
        else:
            rho = (distances < dc).sum(axis=1).astype(float) - 1.0
        return rho

    @staticmethod
    def _delta(
        distances: np.ndarray, rho: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        n_samples = distances.shape[0]
        order = np.argsort(rho)[::-1]
        # Reorder so that row/column i is the sample with the i-th highest
        # density; then the "higher density" candidates of row i are exactly
        # the columns j < i, and the whole search vectorises with a mask.
        ordered = distances[np.ix_(order, order)]
        mask = np.triu(np.ones((n_samples, n_samples), dtype=bool))
        masked = np.where(mask, np.inf, ordered)

        delta_sorted = np.empty(n_samples, dtype=float)
        nearest_sorted = np.empty(n_samples, dtype=int)
        if n_samples > 1:
            delta_sorted[1:] = masked[1:].min(axis=1)
            nearest_sorted[1:] = masked[1:].argmin(axis=1)
        delta_sorted[0] = distances.max()
        nearest_sorted[0] = 0

        delta = np.empty(n_samples, dtype=float)
        nearest_higher = np.empty(n_samples, dtype=int)
        delta[order] = delta_sorted
        nearest_higher[order] = order[nearest_sorted]
        return delta, nearest_higher

    @staticmethod
    def _auto_select_centers(decision: np.ndarray) -> int:
        """Pick the number of centres from the largest relative gap in the
        sorted decision values (bounded to at most 10 clusters)."""
        sorted_decision = np.sort(decision)[::-1]
        limit = min(10, sorted_decision.shape[0] - 1)
        if limit < 1:
            return 1
        gaps = sorted_decision[:limit] - sorted_decision[1 : limit + 1]
        return int(np.argmax(gaps)) + 1
