"""Density Peaks clustering (Rodriguez & Laio, Science 2014).

Cluster centres are points with high local density that lie far from any
point of higher density.  The remaining points are assigned to the same
cluster as their nearest neighbour of higher density.

The implementation keeps one ``n x n`` array alive — the squared-distance
workspace that the exact ``d_c`` percentile inherently needs — and builds it
chunk by chunk; rho, delta and the label assignment are chunked/vectorised
sweeps over it using ``chunk_size * n`` scratch (plus one transient
flattened copy inside the ``d_c`` partition).  The original implementation
materialised an ``n x n`` eye mask plus an off-diagonal copy (for ``d_c``),
a fully reordered distance matrix, a triangular mask and a masked copy (for
delta), roughly quadrupling peak memory and dominating the runtime with
fancy-indexing copies.
"""

from __future__ import annotations

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.exceptions import ValidationError
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["DensityPeaks"]


class DensityPeaks(BaseClusterer):
    """Clustering by fast search and find of density peaks.

    Parameters
    ----------
    n_clusters : int or None
        Number of centres to select (points with the largest ``rho * delta``
        decision value).  The paper evaluates DP with the ground-truth number
        of classes; ``None`` selects the number automatically from the gap in
        the sorted decision values.
    dc_percentile : float, default 2.0
        Percentile of the pairwise distance distribution used as the cutoff
        distance ``d_c`` (the original paper suggests 1-2 %).
    kernel : {"gaussian", "cutoff"}, default "gaussian"
        Local density estimator: a smooth Gaussian kernel or the original
        hard-cutoff count.
    chunk_size : int, default 512
        Rows per block of the chunked sweeps; bounds every temporary to
        roughly ``chunk_size * n_samples`` elements.

    Attributes
    ----------
    labels_ : ndarray of shape (n_samples,)
    center_indices_ : ndarray
        Indices of the selected density peaks.
    rho_ : ndarray
        Local density per sample.
    delta_ : ndarray
        Distance to the nearest sample of higher density.
    """

    def __init__(
        self,
        n_clusters: int | None = None,
        *,
        dc_percentile: float = 2.0,
        kernel: str = "gaussian",
        chunk_size: int = 512,
    ) -> None:
        if n_clusters is not None:
            n_clusters = check_positive_int(n_clusters, name="n_clusters")
        self.n_clusters = n_clusters
        self.dc_percentile = check_in_range(
            dc_percentile, name="dc_percentile", low=0.1, high=100.0
        )
        if kernel not in ("gaussian", "cutoff"):
            raise ValidationError(
                f"kernel must be 'gaussian' or 'cutoff', got {kernel!r}"
            )
        self.kernel = kernel
        self.chunk_size = check_positive_int(chunk_size, name="chunk_size")

    @property
    def name(self) -> str:
        return "DP"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if self.n_clusters is not None and self.n_clusters > n_samples:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )

        squared = self._squared_distance_workspace(data)
        # One chunk-sized scratch buffer, reused by the rho kernel blocks and
        # the delta masking blocks.
        chunk = max(1, min(self.chunk_size, n_samples))
        scratch = np.empty(chunk * n_samples, dtype=float)
        rho = self._local_density(squared, scratch)
        delta, nearest_higher = self._delta(squared, rho, scratch)
        del scratch

        self.rho_ = rho
        self.delta_ = delta
        decision = rho * delta

        if self.n_clusters is None:
            n_centers = self._auto_select_centers(decision)
        else:
            n_centers = self.n_clusters
        center_indices = np.argsort(decision)[::-1][:n_centers]
        self.center_indices_ = np.sort(center_indices)

        self.labels_ = self._assign_labels(
            n_samples, self.center_indices_, nearest_higher
        )

    # ------------------------------------------------------------- distances
    def _row_chunks(self, n_samples: int):
        chunk = max(1, min(self.chunk_size, n_samples))
        for start in range(0, n_samples, chunk):
            yield start, min(start + chunk, n_samples)

    def _squared_distance_workspace(self, data: np.ndarray) -> np.ndarray:
        """Squared Euclidean distance workspace, built chunk by chunk.

        The full matrix (and nothing else of that size) is kept because the
        exact ``d_c`` percentile consumes the whole pairwise distance
        distribution; all further passes stream over its rows.  Distances
        stay *squared* end to end — rho's Gaussian kernel and delta's argmin
        never need the root, so the only square roots taken are the ``d_c``
        bracketing values and the final n-vector of deltas.
        """
        n_samples = data.shape[0]
        squared_norms = np.einsum("ij,ij->i", data, data)
        # x.x + y.y - 2 x.y leaves O(ulp * |x|^2) residue on coincident rows;
        # snap it (and the tiny negatives np.maximum used to clip) to an
        # exact zero so duplicates behave as duplicates — the d_c
        # percentile/fallback and the delta minima rely on true zeros being
        # zero.
        noise_floor = 1e-12 * float(squared_norms.max(initial=0.0))
        squared = np.empty((n_samples, n_samples), dtype=float)
        for start, stop in self._row_chunks(n_samples):
            block = squared[start:stop]
            np.matmul(data[start:stop], data.T, out=block)
            block *= -2.0
            block += squared_norms[start:stop, None]
            block += squared_norms[None, :]
            block[block <= noise_floor] = 0.0
        np.fill_diagonal(squared, 0.0)
        return squared

    def _cutoff_distance(self, squared: np.ndarray) -> float:
        """Exact off-diagonal ``dc_percentile`` from the squared workspace.

        Equals ``np.percentile`` of the off-diagonal *root* distances without
        materialising either the off-diagonal copy or a rooted matrix: the
        ``n`` diagonal zeros are the smallest entries, so the percentile rank
        is shifted past them, and the two bracketing order statistics (order
        is preserved under sqrt) are rooted before the linear interpolation.
        """
        n = squared.shape[0]
        n_off = n * n - n
        position = n + self.dc_percentile / 100.0 * (n_off - 1)
        k = int(np.floor(position))
        fraction = position - k
        k_next = min(k + 1, n * n - 1)
        bracket = np.partition(squared, (k, k_next), axis=None)
        low = float(np.sqrt(bracket[k]))
        high = float(np.sqrt(bracket[k_next]))
        dc = low + fraction * (high - low)
        if dc <= 0.0:
            positive = squared[squared > 0.0]
            dc = float(np.sqrt(positive.min())) if positive.size else 1.0
        return dc

    def _local_density(self, squared: np.ndarray, scratch: np.ndarray) -> np.ndarray:
        """Rho per sample (chunked kernel sums; diagonal contribution removed)."""
        n_samples = squared.shape[0]
        if n_samples == 1:
            self.dc_ = 1.0
            return np.zeros(1)
        dc = self._cutoff_distance(squared)
        self.dc_ = dc

        rho = np.empty(n_samples, dtype=float)
        chunk = max(1, min(self.chunk_size, n_samples))
        blocks = scratch[: chunk * n_samples].reshape(chunk, n_samples)
        for start, stop in self._row_chunks(n_samples):
            block = squared[start:stop]
            rows = stop - start
            if self.kernel == "gaussian":
                # exp(-(d / dc)^2) evaluated as exp(-d^2 / dc^2).
                kernel = np.multiply(block, -1.0 / (dc * dc), out=blocks[:rows])
                np.exp(kernel, out=kernel)
                # The diagonal contributes exp(0) = 1.
                rho[start:stop] = kernel.sum(axis=1) - 1.0
            else:
                rho[start:stop] = (block < dc * dc).sum(axis=1) - 1.0
        return rho

    def _delta(
        self, squared: np.ndarray, rho: np.ndarray, scratch: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Distance to (and index of) the nearest higher-density sample.

        "Higher density" uses the descending-rho argsort position as a total
        order, so exact density ties break deterministically.  Each chunk
        gathers its rows with the *columns permuted into density order*: the
        candidates of row i are then exactly the first ``rank[i]`` columns
        (one contiguous inf-fill masks the rest — no boolean mask), and
        argmin's first-occurrence rule resolves equidistant candidates to
        the densest one, the same tie-break as the original scan of the
        fully reordered matrix.
        """
        n_samples = rho.shape[0]
        order = np.argsort(rho)[::-1]
        rank = np.empty(n_samples, dtype=int)
        rank[order] = np.arange(n_samples)

        delta = np.empty(n_samples, dtype=float)
        nearest_higher = np.empty(n_samples, dtype=int)
        if n_samples == 1:
            delta[0] = 0.0
            nearest_higher[0] = 0
            return delta, nearest_higher

        chunk = max(1, min(self.chunk_size, n_samples))
        masked = scratch[: chunk * n_samples].reshape(chunk, n_samples)
        local_rows = np.arange(chunk)
        for start, stop in self._row_chunks(n_samples):
            rows = stop - start
            np.take(squared[start:stop], order, axis=1, out=masked[:rows])
            for row in range(rows):
                # Positions >= own rank are lower-or-equal density (own
                # column included): one contiguous fill per row.
                masked[row, rank[start + row] :] = np.inf
            argmin_position = masked[:rows].argmin(axis=1)
            delta[start:stop] = masked[local_rows[:rows], argmin_position]
            nearest_higher[start:stop] = order[argmin_position]

        top = order[0]
        delta[top] = squared.max()
        nearest_higher[top] = top
        np.sqrt(delta, out=delta)
        return delta, nearest_higher

    # ------------------------------------------------------------ assignment
    @staticmethod
    def _assign_labels(
        n_samples: int, center_indices: np.ndarray, nearest_higher: np.ndarray
    ) -> np.ndarray:
        """Propagate centre labels along the nearest-higher-density forest.

        Every non-centre points to a strictly higher-ranked sample and the
        top-density sample points to itself, so the pointer graph is a forest
        rooted at the centres (plus possibly the top sample).  Pointer
        doubling resolves every root in O(log n) vectorised passes instead of
        a Python loop over samples.
        """
        parent = nearest_higher.copy()
        parent[center_indices] = center_indices
        while True:
            grandparent = parent[parent]
            if np.array_equal(grandparent, parent):
                break
            parent = grandparent

        labels = np.full(n_samples, -1, dtype=int)
        labels[center_indices] = np.arange(center_indices.shape[0])
        return labels[parent]

    @staticmethod
    def _auto_select_centers(decision: np.ndarray) -> int:
        """Pick the number of centres from the largest relative gap in the
        sorted decision values (bounded to at most 10 clusters)."""
        sorted_decision = np.sort(decision)[::-1]
        limit = min(10, sorted_decision.shape[0] - 1)
        if limit < 1:
            return 1
        gaps = sorted_decision[:limit] - sorted_decision[1 : limit + 1]
        return int(np.argmax(gaps)) + 1
