"""Affinity Propagation (Frey & Dueck, Science 2007).

Clusters by passing responsibility and availability messages between data
points until a stable set of exemplars emerges.  The number of clusters is
determined by the ``preference`` (self-similarity); the paper uses the
algorithm with its conventional default of the median pairwise similarity.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.clustering.base import BaseClusterer
from repro.exceptions import ConvergenceWarning, ValidationError
from repro.utils.numerics import pairwise_squared_distances
from repro.utils.rng import check_random_state
from repro.utils.validation import check_in_range, check_positive_int

__all__ = ["AffinityPropagation"]


class AffinityPropagation(BaseClusterer):
    """Affinity Propagation clustering on negative squared Euclidean similarity.

    Parameters
    ----------
    damping : float, default 0.7
        Message damping factor in ``[0.5, 1)`` (the starting value when a
        schedule is active).
    damping_schedule : {"constant", "adaptive"}, default "constant"
        ``"adaptive"`` raises the damping by ``damping_increment`` whenever a
        full convergence window passes with the exemplar set still
        oscillating, up to ``max_damping``.  Oscillation — not slow drift —
        is the classic AP failure mode that otherwise runs straight into
        ``max_iter``; heavier damping settles it at the cost of slower
        message updates, so paying it only when needed keeps the common case
        fast.
    damping_increment : float, default 0.05
        Step the adaptive schedule adds per stalled window.
    max_damping : float, default 0.95
        Ceiling of the adaptive schedule.
    max_iter : int, default 200
        Maximum number of message-passing iterations.
    convergence_iter : int, default 15
        Stop when the exemplar set is unchanged for this many iterations.
    preference : float or None
        Self-similarity; ``None`` uses the median of the off-diagonal
        similarities (the standard choice).
    target_n_clusters : int or None
        When set, the preference is tuned by bisection so that the number of
        exemplars approaches this target.  The paper's evaluation compares
        against partitions with the ground-truth number of classes, so the
        experiment harness sets this to ``K``.
    random_state : int, Generator or None
        Used only for the tiny symmetry-breaking noise added to the
        similarity matrix.

    Attributes
    ----------
    labels_ : ndarray of shape (n_samples,)
    cluster_centers_indices_ : ndarray
        Indices of the exemplar samples.
    n_iter_ : int
    converged_ : bool
    final_damping_ : float
        Damping in effect when message passing stopped (equals ``damping``
        for the constant schedule).
    """

    def __init__(
        self,
        *,
        damping: float = 0.7,
        damping_schedule: str = "constant",
        damping_increment: float = 0.05,
        max_damping: float = 0.95,
        max_iter: int = 200,
        convergence_iter: int = 15,
        preference: float | None = None,
        target_n_clusters: int | None = None,
        random_state=None,
    ) -> None:
        self.damping = check_in_range(damping, name="damping", low=0.5, high=0.999)
        if damping_schedule not in ("constant", "adaptive"):
            raise ValidationError(
                "damping_schedule must be 'constant' or 'adaptive', got "
                f"{damping_schedule!r}"
            )
        self.damping_schedule = damping_schedule
        if damping_increment <= 0:
            raise ValidationError(
                f"damping_increment must be positive, got {damping_increment}"
            )
        self.damping_increment = float(damping_increment)
        self.max_damping = check_in_range(
            max_damping, name="max_damping", low=0.5, high=0.999
        )
        self.max_iter = check_positive_int(max_iter, name="max_iter")
        self.convergence_iter = check_positive_int(
            convergence_iter, name="convergence_iter"
        )
        self.preference = None if preference is None else float(preference)
        if target_n_clusters is not None:
            target_n_clusters = check_positive_int(
                target_n_clusters, name="target_n_clusters"
            )
        self.target_n_clusters = target_n_clusters
        self.random_state = random_state

    @property
    def name(self) -> str:
        return "AP"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if n_samples < 2:
            raise ValidationError("AffinityPropagation requires at least 2 samples")
        similarity = -pairwise_squared_distances(data)
        rng = check_random_state(self.random_state)
        # Tiny noise removes degeneracies that cause oscillations.
        noise_scale = 1e-12 * (np.abs(similarity).max() + 1.0)
        similarity = similarity + noise_scale * rng.standard_normal(similarity.shape)

        off_diagonal = similarity[~np.eye(n_samples, dtype=bool)]
        median_preference = float(np.median(off_diagonal))

        if self.target_n_clusters is not None:
            preference = self._tune_preference(similarity, median_preference)
        elif self.preference is not None:
            preference = self.preference
        else:
            preference = median_preference

        labels, exemplars, n_iter, converged, final_damping = self._message_passing(
            similarity, preference
        )
        self.preference_ = float(preference)
        self.labels_ = labels
        self.cluster_centers_indices_ = exemplars
        self.n_iter_ = n_iter
        self.converged_ = converged
        self.final_damping_ = final_damping
        if not converged:
            hint = (
                "the adaptive damping schedule already reached "
                f"damping={final_damping:.2f}; raise max_iter or max_damping"
                if self.damping_schedule == "adaptive"
                else "consider damping_schedule='adaptive' or a larger damping"
            )
            warnings.warn(
                f"AffinityPropagation hit max_iter={self.max_iter} without the "
                f"exemplar set converging; results may be unstable ({hint})",
                ConvergenceWarning,
            )

    def _tune_preference(
        self, similarity: np.ndarray, median_preference: float
    ) -> float:
        """Bisection search for a preference yielding ~target_n_clusters exemplars."""
        target = self.target_n_clusters
        low = median_preference * 64.0 if median_preference < 0 else -64.0
        high = median_preference / 64.0 if median_preference < 0 else -1e-6
        best_pref = median_preference
        best_gap = np.inf
        for _ in range(6):
            mid = 0.5 * (low + high)
            labels, exemplars, _, _, _ = self._message_passing(similarity, mid)
            n_found = exemplars.shape[0]
            gap = abs(n_found - target)
            if gap < best_gap:
                best_gap = gap
                best_pref = mid
            if gap == 0:
                break
            if n_found > target:
                # too many clusters: decrease (more negative) the preference
                high = mid if mid < high else high
                low, high = low, mid
            else:
                low, high = mid, high
        return best_pref

    def _message_passing(
        self, similarity: np.ndarray, preference: float
    ) -> tuple[np.ndarray, np.ndarray, int, bool, float]:
        n_samples = similarity.shape[0]
        s = similarity.copy()
        np.fill_diagonal(s, preference)

        responsibility = np.zeros_like(s)
        availability = np.zeros_like(s)
        exemplar_history = np.zeros((self.convergence_iter, n_samples), dtype=bool)
        converged = False
        iteration = 0
        damping = self.damping
        damping_ceiling = max(self.damping, self.max_damping)

        index = np.arange(n_samples)
        for iteration in range(1, self.max_iter + 1):
            # --- responsibilities -------------------------------------------------
            combined = availability + s
            first_max_idx = np.argmax(combined, axis=1)
            first_max = combined[index, first_max_idx]
            combined[index, first_max_idx] = -np.inf
            second_max = np.max(combined, axis=1)

            new_responsibility = s - first_max[:, None]
            new_responsibility[index, first_max_idx] = (
                s[index, first_max_idx] - second_max
            )
            responsibility = (
                damping * responsibility + (1.0 - damping) * new_responsibility
            )

            # --- availabilities ---------------------------------------------------
            positive_resp = np.maximum(responsibility, 0.0)
            np.fill_diagonal(positive_resp, responsibility.diagonal())
            column_sums = positive_resp.sum(axis=0)
            new_availability = column_sums[None, :] - positive_resp
            diagonal = new_availability.diagonal().copy()
            new_availability = np.minimum(new_availability, 0.0)
            np.fill_diagonal(new_availability, diagonal)
            availability = (
                damping * availability + (1.0 - damping) * new_availability
            )

            # --- convergence check ------------------------------------------------
            exemplars_mask = (availability + responsibility).diagonal() > 0
            exemplar_history[(iteration - 1) % self.convergence_iter] = exemplars_mask
            if iteration >= self.convergence_iter:
                stable = np.all(exemplar_history == exemplar_history[0], axis=0).all()
                if stable and exemplars_mask.any():
                    converged = True
                    break
                if (
                    self.damping_schedule == "adaptive"
                    and damping < damping_ceiling
                    and iteration % self.convergence_iter == 0
                    and np.any(exemplar_history != exemplar_history[0])
                ):
                    # The exemplar set flipped within the whole window:
                    # oscillation, not drift — damp the messages harder.
                    damping = min(damping + self.damping_increment, damping_ceiling)

        exemplars = np.flatnonzero(
            (availability + responsibility).diagonal() > 0
        )
        if exemplars.size == 0:
            # Degenerate outcome: fall back to the sample with the strongest
            # evidence of being an exemplar so that at least one cluster exists.
            exemplars = np.array(
                [int(np.argmax((availability + responsibility).diagonal()))]
            )

        assignment = np.argmax(s[:, exemplars], axis=1)
        assignment[exemplars] = np.arange(exemplars.shape[0])
        return assignment.astype(int), exemplars, iteration, converged, damping
