"""Spectral clustering on a Gaussian-kernel affinity graph.

Another optional member of the integration ensemble (see
:mod:`repro.clustering.hierarchical`).  Embeds the samples with the leading
eigenvectors of the normalised graph Laplacian and clusters the embedding
with K-means.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh

from repro.clustering.base import BaseClusterer
from repro.clustering.kmeans import KMeans
from repro.exceptions import ValidationError
from repro.utils.numerics import pairwise_squared_distances
from repro.utils.validation import check_positive_int

__all__ = ["SpectralClustering"]


class SpectralClustering(BaseClusterer):
    """Normalised-cut spectral clustering.

    Parameters
    ----------
    n_clusters : int
        Number of clusters and of Laplacian eigenvectors used.
    gamma : float or None
        Gaussian kernel width ``exp(-gamma * d^2)``; ``None`` uses
        ``1 / median(d^2)`` which adapts to the data scale.
    random_state : int, Generator or None
        Passed to the K-means step on the spectral embedding.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        gamma: float | None = None,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        if gamma is not None and gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        self.random_state = random_state

    @property
    def name(self) -> str:
        return "Spectral"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if self.n_clusters > n_samples:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )
        squared = pairwise_squared_distances(data)
        if self.gamma is None:
            off_diagonal = squared[~np.eye(n_samples, dtype=bool)]
            median = float(np.median(off_diagonal))
            gamma = 1.0 / median if median > 0 else 1.0
        else:
            gamma = self.gamma
        self.gamma_ = gamma

        affinity = np.exp(-gamma * squared)
        np.fill_diagonal(affinity, 0.0)
        degree = affinity.sum(axis=1)
        degree[degree <= 0] = 1e-12
        inv_sqrt_degree = 1.0 / np.sqrt(degree)
        normalised = affinity * inv_sqrt_degree[:, None] * inv_sqrt_degree[None, :]

        # Leading eigenvectors of the normalised affinity == smallest of the
        # normalised Laplacian I - D^-1/2 W D^-1/2.
        _, vectors = eigh(
            normalised,
            subset_by_index=[n_samples - self.n_clusters, n_samples - 1],
        )
        embedding = vectors[:, ::-1]
        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        embedding = embedding / norms

        kmeans = KMeans(
            self.n_clusters, n_init=10, random_state=self.random_state
        )
        self.labels_ = kmeans.fit_predict(embedding)
        self.embedding_ = embedding
