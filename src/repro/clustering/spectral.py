"""Spectral clustering on a Gaussian-kernel affinity graph.

Another optional member of the integration ensemble (see
:mod:`repro.clustering.hierarchical`).  Embeds the samples with the leading
eigenvectors of the normalised graph Laplacian and clusters the embedding
with K-means.

Two affinity back ends are provided:

* **dense** — the full ``n x n`` Gaussian kernel and a partial dense
  eigendecomposition; exact, but quadratic in memory and cubic-ish in time.
* **sparse** — a symmetrised k-nearest-neighbour affinity held in CSR form
  and the leading eigenvectors from ``scipy.sparse.linalg.eigsh`` (Lanczos).
  The distance sweep is chunked, so peak memory is ``chunk x n`` instead of
  ``n x n``, and the eigensolver touches only ``n x k`` state.

``affinity="auto"`` (the default) picks dense for small inputs — where the
exact kernel is cheap and slightly more faithful — and the sparse path above
``dense_threshold`` samples.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh
from scipy.sparse import coo_matrix, identity
from scipy.sparse.linalg import ArpackNoConvergence, eigsh

from repro.clustering.base import BaseClusterer
from repro.clustering.kmeans import KMeans
from repro.exceptions import ValidationError
from repro.utils.numerics import pairwise_squared_distances
from repro.utils.validation import check_positive_int

__all__ = ["SpectralClustering"]

_AFFINITIES = ("auto", "dense", "sparse")


class SpectralClustering(BaseClusterer):
    """Normalised-cut spectral clustering.

    Parameters
    ----------
    n_clusters : int
        Number of clusters and of Laplacian eigenvectors used.
    gamma : float or None
        Gaussian kernel width ``exp(-gamma * d^2)``; ``None`` adapts to the
        data scale (``1 / median(d^2)`` over all pairs on the dense path,
        over the k-NN pairs on the sparse path).
    affinity : {"auto", "dense", "sparse"}, default "auto"
        Affinity construction.  ``"sparse"`` builds a symmetrised
        k-nearest-neighbour graph and solves the eigenproblem with Lanczos
        iteration; ``"auto"`` uses it above ``dense_threshold`` samples and
        the exact dense kernel below.
    n_neighbors : int, default 10
        Neighbours per sample of the sparse affinity graph.
    dense_threshold : int, default 512
        Sample count up to which ``"auto"`` stays on the dense path.
    chunk_size : int, default 512
        Rows per block of the chunked k-NN distance sweep.
    random_state : int, Generator or None
        Passed to the K-means step on the spectral embedding.

    Attributes
    ----------
    labels_ : ndarray of shape (n_samples,)
    embedding_ : ndarray of shape (n_samples, n_clusters)
        Row-normalised spectral embedding.
    gamma_ : float
        Kernel width actually used.
    affinity_mode_ : str
        ``"dense"`` or ``"sparse"`` — the back end the fit resolved to.
    """

    def __init__(
        self,
        n_clusters: int,
        *,
        gamma: float | None = None,
        affinity: str = "auto",
        n_neighbors: int = 10,
        dense_threshold: int = 512,
        chunk_size: int = 512,
        random_state=None,
    ) -> None:
        self.n_clusters = check_positive_int(n_clusters, name="n_clusters")
        if gamma is not None and gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        if affinity not in _AFFINITIES:
            raise ValidationError(
                f"affinity must be one of {_AFFINITIES}, got {affinity!r}"
            )
        self.affinity = affinity
        self.n_neighbors = check_positive_int(n_neighbors, name="n_neighbors")
        self.dense_threshold = check_positive_int(
            dense_threshold, name="dense_threshold"
        )
        self.chunk_size = check_positive_int(chunk_size, name="chunk_size")
        self.random_state = random_state

    @property
    def name(self) -> str:
        return "Spectral"

    def _fit(self, data: np.ndarray) -> None:
        n_samples = data.shape[0]
        if self.n_clusters > n_samples:
            raise ValidationError(
                f"n_clusters={self.n_clusters} exceeds n_samples={n_samples}"
            )
        mode = self.affinity
        if mode == "auto":
            mode = "dense" if n_samples <= self.dense_threshold else "sparse"
        if mode == "sparse" and (
            self.n_clusters >= n_samples - 1
            or self.n_neighbors >= n_samples - 1
        ):
            # Lanczos needs k < n and a meaningful neighbourhood; tiny inputs
            # fall back to the exact dense path.
            mode = "dense"
        self.affinity_mode_ = mode

        if mode == "dense":
            embedding = self._dense_embedding(data, n_samples)
        else:
            embedding = self._sparse_embedding(data, n_samples)

        norms = np.linalg.norm(embedding, axis=1, keepdims=True)
        norms[norms == 0] = 1.0
        embedding = embedding / norms

        kmeans = KMeans(
            self.n_clusters, n_init=10, random_state=self.random_state
        )
        self.labels_ = kmeans.fit_predict(embedding)
        self.embedding_ = embedding

    # ------------------------------------------------------------- dense path
    def _dense_embedding(self, data: np.ndarray, n_samples: int) -> np.ndarray:
        squared = pairwise_squared_distances(data)
        if self.gamma is None:
            off_diagonal = squared[~np.eye(n_samples, dtype=bool)]
            median = float(np.median(off_diagonal))
            gamma = 1.0 / median if median > 0 else 1.0
        else:
            gamma = self.gamma
        self.gamma_ = gamma

        affinity = np.exp(-gamma * squared)
        np.fill_diagonal(affinity, 0.0)
        degree = affinity.sum(axis=1)
        degree[degree <= 0] = 1e-12
        inv_sqrt_degree = 1.0 / np.sqrt(degree)
        normalised = affinity * inv_sqrt_degree[:, None] * inv_sqrt_degree[None, :]

        # Leading eigenvectors of the normalised affinity == smallest of the
        # normalised Laplacian I - D^-1/2 W D^-1/2.
        _, vectors = eigh(
            normalised,
            subset_by_index=[n_samples - self.n_clusters, n_samples - 1],
        )
        return vectors[:, ::-1]

    # ------------------------------------------------------------ sparse path
    def _knn_graph(self, data: np.ndarray, n_samples: int):
        """Chunked k-NN sweep: per-row neighbour indices and squared
        distances without materialising the full ``n x n`` matrix."""
        k = min(self.n_neighbors, n_samples - 1)
        neighbor_idx = np.empty((n_samples, k), dtype=np.int64)
        neighbor_sq = np.empty((n_samples, k), dtype=float)
        for start in range(0, n_samples, self.chunk_size):
            chunk = data[start : start + self.chunk_size]
            squared = pairwise_squared_distances(chunk, data)
            rows = np.arange(chunk.shape[0])
            # Exclude the self-distance before the partial sort.
            squared[rows, start + rows] = np.inf
            idx = np.argpartition(squared, k - 1, axis=1)[:, :k]
            sq = np.take_along_axis(squared, idx, axis=1)
            order = np.argsort(sq, axis=1, kind="stable")
            neighbor_idx[start : start + chunk.shape[0]] = np.take_along_axis(
                idx, order, axis=1
            )
            neighbor_sq[start : start + chunk.shape[0]] = np.take_along_axis(
                sq, order, axis=1
            )
        return neighbor_idx, neighbor_sq

    def _sparse_embedding(self, data: np.ndarray, n_samples: int) -> np.ndarray:
        neighbor_idx, neighbor_sq = self._knn_graph(data, n_samples)
        if self.gamma is None:
            positive = neighbor_sq[neighbor_sq > 0]
            median = float(np.median(positive)) if positive.size else 0.0
            gamma = 1.0 / median if median > 0 else 1.0
        else:
            gamma = self.gamma
        self.gamma_ = gamma

        k = neighbor_idx.shape[1]
        rows = np.repeat(np.arange(n_samples), k)
        cols = neighbor_idx.ravel()
        values = np.exp(-gamma * neighbor_sq.ravel())
        affinity = coo_matrix(
            (values, (rows, cols)), shape=(n_samples, n_samples)
        ).tocsr()
        # Symmetrise with the elementwise maximum so that an edge found in
        # either direction survives with its full weight.
        transpose = affinity.T.tocsr()
        affinity = affinity.maximum(transpose)

        degree = np.asarray(affinity.sum(axis=1)).ravel()
        degree[degree <= 0] = 1e-12
        inv_sqrt_degree = 1.0 / np.sqrt(degree)
        normalised = affinity.multiply(inv_sqrt_degree[:, None]).multiply(
            inv_sqrt_degree[None, :]
        ).tocsr()

        # Smallest eigenvectors of the normalised Laplacian I - N via
        # shift-invert Lanczos.  The small negative shift keeps the
        # factorised operator non-singular (a disconnected k-NN graph has one
        # exactly-zero eigenvalue per component) and maps the tightly
        # clustered small eigenvalues to well-separated large ones.  The
        # explicit tolerance matters: ARPACK's machine-precision default
        # cannot certify the degenerate zero eigenvalues of a disconnected
        # graph and spins to its iteration cap.  A fixed start vector keeps
        # the iteration deterministic.
        laplacian = (identity(n_samples, format="csr") - normalised).tocsc()
        v0 = np.full(n_samples, 1.0 / np.sqrt(n_samples))
        try:
            _, vectors = eigsh(
                laplacian,
                k=self.n_clusters,
                sigma=-1e-3,
                which="LM",
                v0=v0,
                tol=1e-6,
            )
        except ArpackNoConvergence:
            return self._dense_embedding(np.asarray(data), n_samples)
        # eigsh returns ascending Laplacian eigenvalues; column 0 is already
        # the leading (largest-affinity-eigenvalue) direction.
        return vectors
