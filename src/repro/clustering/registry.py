"""Deprecated clusterer factory — superseded by :mod:`repro.registry`.

This module predates the unified component registry; it is kept as a thin
shim so existing imports and call signatures keep working.  New code should
use::

    from repro import registry
    registry.build({"type": "kmeans", "params": {"n_clusters": 3}})
    registry.build_clusterer("ap", 3, random_state=0)
"""

from __future__ import annotations

import warnings

from repro.clustering.base import BaseClusterer
from repro.registry import available as _available
from repro.registry import build_clusterer as _build_clusterer

__all__ = ["make_clusterer", "available_clusterers"]


def available_clusterers() -> tuple[str, ...]:
    """Canonical short names accepted by :func:`make_clusterer`.

    Deprecated alias of ``repro.registry.available("clusterer")``.
    """
    return _available("clusterer")


def make_clusterer(name: str, n_clusters: int, *, random_state=None) -> BaseClusterer:
    """Instantiate a clusterer from its short name.

    Deprecated alias of :func:`repro.registry.build_clusterer`; the component
    registry additionally accepts full JSON specs via
    :func:`repro.registry.build`.
    """
    warnings.warn(
        "repro.clustering.registry.make_clusterer is deprecated; use "
        "repro.registry.build_clusterer (or repro.registry.build with a spec)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _build_clusterer(name, n_clusters, random_state=random_state)
