"""Factory helpers mapping short algorithm names to clusterer instances.

The experiment harness describes the paper's algorithm grid with the short
names used in the tables ("DP", "K-means", "AP"); this registry turns those
names into configured estimator objects.
"""

from __future__ import annotations

from typing import Callable

from repro.clustering.affinity_propagation import AffinityPropagation
from repro.clustering.base import BaseClusterer
from repro.clustering.density_peaks import DensityPeaks
from repro.clustering.hierarchical import AgglomerativeClustering
from repro.clustering.kmeans import KMeans
from repro.clustering.spectral import SpectralClustering
from repro.exceptions import ValidationError

__all__ = ["make_clusterer", "available_clusterers"]

_FACTORIES: dict[str, Callable[..., BaseClusterer]] = {
    "kmeans": lambda n_clusters, random_state=None: KMeans(
        n_clusters, random_state=random_state
    ),
    "k-means": lambda n_clusters, random_state=None: KMeans(
        n_clusters, random_state=random_state
    ),
    "ap": lambda n_clusters, random_state=None: AffinityPropagation(
        target_n_clusters=n_clusters, random_state=random_state
    ),
    "affinity_propagation": lambda n_clusters, random_state=None: AffinityPropagation(
        target_n_clusters=n_clusters, random_state=random_state
    ),
    "dp": lambda n_clusters, random_state=None: DensityPeaks(n_clusters),
    "density_peaks": lambda n_clusters, random_state=None: DensityPeaks(n_clusters),
    "agglomerative": lambda n_clusters, random_state=None: AgglomerativeClustering(
        n_clusters
    ),
    "spectral": lambda n_clusters, random_state=None: SpectralClustering(
        n_clusters, random_state=random_state
    ),
}


def available_clusterers() -> tuple[str, ...]:
    """Canonical short names accepted by :func:`make_clusterer`."""
    return ("dp", "kmeans", "ap", "agglomerative", "spectral")


def make_clusterer(name: str, n_clusters: int, *, random_state=None) -> BaseClusterer:
    """Instantiate a clusterer from its short name.

    Parameters
    ----------
    name : str
        One of :func:`available_clusterers` (case insensitive; "k-means" and
        "density_peaks"/"affinity_propagation" aliases are accepted).
    n_clusters : int
        Target number of clusters.
    random_state : int, Generator or None
        Seed forwarded to stochastic algorithms.
    """
    key = name.strip().lower()
    if key not in _FACTORIES:
        raise ValidationError(
            f"unknown clusterer {name!r}; available: {sorted(set(_FACTORIES))}"
        )
    return _FACTORIES[key](n_clusters, random_state=random_state)
