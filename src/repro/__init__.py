"""repro: unsupervised feature learning with multi-clustering integration RBMs.

Reproduction of "Unsupervised Feature Learning Architecture with
Multi-clustering Integration RBM" (slsRBM / slsGRBM): restricted Boltzmann
machines whose contrastive-divergence learning is guided by self-learning
local supervisions — credible local clusters obtained by integrating several
unsupervised clusterings with an unanimous-voting strategy — so that hidden
features of the same local cluster constrict together while the centres of
different clusters disperse.

Beyond the paper pipeline, the package provides a production train/serve
split: :mod:`repro.persistence` persists fitted frameworks as versioned
artifact bundles, :mod:`repro.serving` loads them into an
:class:`EncodingService` (micro-batching, LRU feature cache, latency
counters), and ``python -m repro`` drives the whole lifecycle from the shell
(see :mod:`repro.cli`).

Every public component implements one estimator protocol
(:mod:`repro.core.estimator`: ``get_params`` / ``set_params`` / ``clone`` /
``is_fitted``) and is addressable through the declarative component registry
(:mod:`repro.registry`), where any configured estimator — including N-step
:class:`Pipeline` chains with stacked encoders — is expressible as a nested
JSON spec shared by configs, artifact manifests and experiment grids::

    from repro import registry
    clusterer = registry.build({"type": "kmeans", "params": {"n_clusters": 3}})

Quickstart
----------
>>> from repro import FrameworkConfig, SelfLearningEncodingFramework
>>> from repro.datasets import load_uci_dataset
>>> from repro.clustering import KMeans
>>> from repro.metrics import clustering_accuracy
>>>
>>> dataset = load_uci_dataset("IR", scale=0.5)
>>> config = FrameworkConfig(model="sls_rbm", preprocessing="median_binarize",
...                          n_hidden=16, n_epochs=5)
>>> framework = SelfLearningEncodingFramework(config, n_clusters=dataset.n_classes)
>>> features = framework.fit_transform(dataset.data)
>>> labels = KMeans(dataset.n_classes, random_state=0).fit_predict(features)
>>> 0.0 <= clustering_accuracy(dataset.labels, labels) <= 1.0
True
"""

__version__ = "1.2.0"

from repro import registry
from repro.core.config import FrameworkConfig, GRBM_PAPER_CONFIG, RBM_PAPER_CONFIG
from repro.core.estimator import EstimatorMixin, clone
from repro.core.framework import EncodingResult, SelfLearningEncodingFramework
from repro.core.pipeline import ClusteringPipeline, Pipeline, PipelineResult
from repro.persistence import load_framework, load_model, save_framework, save_model
from repro.rbm import BernoulliRBM, GaussianRBM, SlsGRBM, SlsRBM
from repro.serving import EncodingService
from repro.supervision import LocalSupervision, MultiClusteringIntegration

__all__ = [
    "__version__",
    "registry",
    "FrameworkConfig",
    "GRBM_PAPER_CONFIG",
    "RBM_PAPER_CONFIG",
    "SelfLearningEncodingFramework",
    "EncodingResult",
    "ClusteringPipeline",
    "Pipeline",
    "PipelineResult",
    "EstimatorMixin",
    "clone",
    "BernoulliRBM",
    "GaussianRBM",
    "SlsRBM",
    "SlsGRBM",
    "LocalSupervision",
    "MultiClusteringIntegration",
    "save_framework",
    "load_framework",
    "save_model",
    "load_model",
    "EncodingService",
]
