"""Work-queue and lease bookkeeping of the coordinator.

:class:`LeaseQueue` tracks every cell of a grid through the states
``pending → leased → completed``.  Fault tolerance lives entirely here:

* a lease carries a deadline; a worker that stops heartbeating (killed,
  partitioned) lets its leases *expire* and the cells return to the front
  of the pending queue for another worker;
* completion is *idempotent*: when an expired cell is re-leased and the
  original worker later turns out to have survived (a slow cell, not a dead
  worker), the second completion is acknowledged but discarded — exactly
  one result per cell reaches the table;
* a worker can say goodbye, releasing its leases immediately instead of
  waiting out the timeout;
* a failed cell can be *re-queued with a delay* (:meth:`LeaseQueue.requeue`)
  — the retry-with-backoff path for transient failures: the cell sits in a
  delay pen until its ready time passes, then rejoins the front of the
  pending queue.

The clock is injectable so the expiry logic is testable deterministically
(fake-clock tests advance time explicitly); all entry points take one lock,
as the coordinator's HTTP handler threads call them concurrently.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass

__all__ = ["CellLease", "LeaseQueue"]


@dataclass
class CellLease:
    """One active lease: which worker holds which cell until when."""

    cell_id: str
    worker_id: str
    deadline: float


class LeaseQueue:
    """Lease-based work queue over a fixed set of cell ids.

    Parameters
    ----------
    cell_ids : iterable of str
        The work items, in dispatch order.
    lease_timeout : float
        Seconds a lease survives without a heartbeat before its cell is
        re-queued.  Workers heartbeat at a fraction of this, so only a dead
        or partitioned worker ever lets a lease lapse.
    clock : callable, default time.monotonic
        Monotonic time source (injectable for deterministic tests).
    """

    def __init__(
        self,
        cell_ids,
        *,
        lease_timeout: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        self._pending: deque[str] = deque()
        self._known: set[str] = set()
        for cell_id in cell_ids:
            cell_id = str(cell_id)
            if cell_id in self._known:
                raise ValueError(f"duplicate cell id {cell_id!r}")
            self._known.add(cell_id)
            self._pending.append(cell_id)
        self.lease_timeout = float(lease_timeout)
        self._clock = clock
        self._leases: dict[str, CellLease] = {}  # keyed by cell_id
        self._completed: set[str] = set()
        #: cell_id -> monotonic time before which it must not be leased
        #: (the backoff pen of retried cells), insertion-ordered.
        self._delayed: dict[str, float] = {}
        self._lock = threading.Lock()
        self.n_requeued = 0
        self.n_duplicates = 0
        self.n_expired_leases = 0
        self.n_retried = 0

    # ------------------------------------------------------------- internals
    def _expire_overdue_locked(self) -> list[str]:
        """Re-queue every cell whose lease deadline has passed."""
        now = self._clock()
        expired = [
            lease.cell_id
            for lease in self._leases.values()
            if lease.deadline <= now
        ]
        # Expired cells go to the *front* of the queue (preserving their
        # original relative order) so a recovered grid finishes the oldest
        # work first instead of starting fresh cells.
        for cell_id in reversed(expired):
            del self._leases[cell_id]
            self._pending.appendleft(cell_id)
            self.n_expired_leases += 1
            self.n_requeued += 1
        return expired

    def _promote_ready_locked(self) -> None:
        """Move delayed cells whose backoff has elapsed into pending."""
        if not self._delayed:
            return
        now = self._clock()
        ready = [
            cell_id
            for cell_id, ready_at in self._delayed.items()
            if ready_at <= now
        ]
        # Front of the queue, preserving insertion order — the same recover-
        # oldest-work-first rule as lease expiry.
        for cell_id in reversed(ready):
            del self._delayed[cell_id]
            self._pending.appendleft(cell_id)

    # ------------------------------------------------------------------- API
    def lease(self, worker_id: str) -> str | None:
        """Hand the next pending cell to ``worker_id`` (None when empty)."""
        with self._lock:
            self._expire_overdue_locked()
            self._promote_ready_locked()
            if not self._pending:
                return None
            cell_id = self._pending.popleft()
            self._leases[cell_id] = CellLease(
                cell_id=cell_id,
                worker_id=str(worker_id),
                deadline=self._clock() + self.lease_timeout,
            )
            return cell_id

    def heartbeat(self, worker_id: str) -> int:
        """Renew every lease held by ``worker_id``; returns how many."""
        worker_id = str(worker_id)
        with self._lock:
            deadline = self._clock() + self.lease_timeout
            renewed = 0
            for lease in self._leases.values():
                if lease.worker_id == worker_id:
                    lease.deadline = deadline
                    renewed += 1
            return renewed

    def complete(self, cell_id: str, worker_id: str) -> bool:
        """Record a finished cell; True when this is the accepted completion.

        Duplicates (a re-queued cell finishing on two workers, or a retry of
        a lost acknowledgement) return False and are counted, keeping the
        merge idempotent.  A completion for a cell whose lease expired — the
        worker was presumed dead but wasn't — is still accepted when the
        cell has not been completed elsewhere yet, saving the re-run where
        possible.
        """
        cell_id, worker_id = str(cell_id), str(worker_id)
        with self._lock:
            if cell_id not in self._known:
                raise KeyError(f"unknown cell id {cell_id!r}")
            if cell_id in self._completed:
                self.n_duplicates += 1
                return False
            self._completed.add(cell_id)
            self._leases.pop(cell_id, None)
            self._delayed.pop(cell_id, None)
            # The cell may sit in pending after an expiry; a completed cell
            # must never be dispatched again.
            try:
                self._pending.remove(cell_id)
            except ValueError:
                pass
            return True

    def requeue(self, cell_id: str, *, delay: float = 0.0) -> bool:
        """Return a failed cell to the queue after ``delay`` seconds.

        The retry path for transient failures: the cell's lease (if any) is
        dropped and the cell parks in the delay pen until ``delay`` elapses,
        then rejoins the *front* of the pending queue.  Returns False (and
        does nothing) when the cell already completed elsewhere — a stale
        failure report must not resurrect finished work.
        """
        cell_id = str(cell_id)
        with self._lock:
            if cell_id not in self._known:
                raise KeyError(f"unknown cell id {cell_id!r}")
            if cell_id in self._completed:
                return False
            self._leases.pop(cell_id, None)
            if cell_id in self._pending or cell_id in self._delayed:
                return False  # already on its way back
            if delay > 0:
                self._delayed[cell_id] = self._clock() + float(delay)
            else:
                self._pending.appendleft(cell_id)
            self.n_requeued += 1
            self.n_retried += 1
            return True

    def release(self, worker_id: str) -> int:
        """Return every lease of a departing worker to the queue now."""
        worker_id = str(worker_id)
        with self._lock:
            released = [
                lease.cell_id
                for lease in self._leases.values()
                if lease.worker_id == worker_id
            ]
            for cell_id in reversed(released):
                del self._leases[cell_id]
                self._pending.appendleft(cell_id)
                self.n_requeued += 1
            return len(released)

    def expire_overdue(self) -> list[str]:
        """Re-queue overdue leases; returns the affected cell ids."""
        with self._lock:
            return self._expire_overdue_locked()

    # ------------------------------------------------------------ inspection
    @property
    def n_cells(self) -> int:
        return len(self._known)

    @property
    def n_pending(self) -> int:
        with self._lock:
            return len(self._pending)

    @property
    def n_delayed(self) -> int:
        with self._lock:
            return len(self._delayed)

    @property
    def n_leased(self) -> int:
        with self._lock:
            return len(self._leases)

    @property
    def n_completed(self) -> int:
        with self._lock:
            return len(self._completed)

    @property
    def done(self) -> bool:
        with self._lock:
            return len(self._completed) == len(self._known)

    def counters(self) -> dict:
        """Snapshot of the queue state (the coordinator's /status body)."""
        with self._lock:
            return {
                "n_cells": len(self._known),
                "n_pending": len(self._pending),
                "n_leased": len(self._leases),
                "n_delayed": len(self._delayed),
                "n_completed": len(self._completed),
                "n_requeued": self.n_requeued,
                "n_duplicates": self.n_duplicates,
                "n_expired_leases": self.n_expired_leases,
                "n_retried": self.n_retried,
            }
