"""Wire formats of the coordinator/worker protocol.

Every message is a JSON object.  Numbers round-trip bit-exactly through
Python's JSON encoder (shortest-repr floats), which is what lets a
distributed grid reproduce the sequential run to the last bit: datasets,
settings and metric reports all cross the wire without loss.

The cell descriptor deliberately references its dataset by abbreviation
instead of embedding the matrix: a grid leases the same dataset to a worker
once per (algorithm, repeat), so workers fetch each matrix a single time
from ``GET /dataset`` and cache it for the rest of the run.
"""

from __future__ import annotations

import hashlib
import traceback
from pathlib import Path

import numpy as np

from repro.datasets.base import Dataset
from repro.distributed.errors import DatasetIntegrityError, ProtocolError
from repro.experiments.runner import _RepeatOutcome
from repro.metrics.report import ClusteringReport

__all__ = [
    "PROTOCOL_VERSION",
    "check_protocol",
    "json_safe",
    "dataset_digest",
    "dataset_to_wire",
    "dataset_from_wire",
    "error_to_wire",
    "settings_to_wire",
    "settings_from_wire",
    "cell_to_wire",
    "cell_from_wire",
    "outcome_to_wire",
    "outcome_from_wire",
]

#: Bumped on any incompatible message change; coordinator and worker refuse
#: to pair across versions (a silent mismatch could corrupt a grid).
PROTOCOL_VERSION = 1


def check_protocol(payload: dict, *, side: str) -> None:
    """Raise :class:`ProtocolError` unless the peer speaks our version."""
    version = payload.get("protocol")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{side} speaks protocol {version!r}, this build speaks "
            f"{PROTOCOL_VERSION}; upgrade the older side"
        )


def json_safe(value):
    """Recursively convert numpy scalars/arrays into plain Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(key): json_safe(entry) for key, entry in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(entry) for entry in value]
    return value


# ------------------------------------------------------------------ datasets
def dataset_digest(dataset: Dataset) -> str:
    """Content digest of a dataset's numerical payload (sha256 hex).

    Canonicalises dtypes the same way :func:`dataset_from_wire` does
    (float data, int labels), so the digest a coordinator stamps on a
    payload matches the digest a worker computes over the *rebuilt*
    arrays — JSON's exact float round-trip makes the bytes identical.
    """
    data = np.ascontiguousarray(np.asarray(dataset.data, dtype=float))
    labels = np.ascontiguousarray(np.asarray(dataset.labels, dtype=int))
    hasher = hashlib.sha256()
    for array in (data, labels):
        hasher.update(str(array.dtype).encode("utf-8"))
        hasher.update(str(array.shape).encode("utf-8"))
        hasher.update(array.tobytes())
    return hasher.hexdigest()


def dataset_to_wire(dataset: Dataset) -> dict:
    """JSON payload of a labelled dataset (exact float round-trip).

    Carries a sha256 content digest so the receiving worker can prove the
    matrix survived the transfer before caching it for the whole grid.
    """
    return {
        "name": dataset.name,
        "abbreviation": dataset.abbreviation,
        "data": dataset.data.tolist(),
        "labels": dataset.labels.tolist(),
        "metadata": json_safe(dataset.metadata),
        "digest": dataset_digest(dataset),
    }


def dataset_from_wire(payload: dict) -> Dataset:
    """Rebuild a :class:`Dataset` from :func:`dataset_to_wire` output.

    When the payload carries a ``digest``, the rebuilt arrays are hashed
    and compared; a mismatch raises :class:`DatasetIntegrityError` (a
    *transient* failure — re-fetching is expected to succeed).  Payloads
    without a digest are accepted for compatibility with older peers.
    """
    try:
        dataset = Dataset(
            name=str(payload["name"]),
            abbreviation=str(payload["abbreviation"]),
            data=np.asarray(payload["data"], dtype=float),
            labels=np.asarray(payload["labels"], dtype=int),
            metadata=dict(payload.get("metadata", {})),
        )
    except KeyError as exc:
        raise ProtocolError(f"dataset payload is missing field {exc}") from exc
    expected = payload.get("digest")
    if expected is not None:
        actual = dataset_digest(dataset)
        if actual != str(expected):
            raise DatasetIntegrityError(
                f"dataset {dataset.abbreviation!r} failed its integrity "
                f"check: digest {actual} != advertised {expected} "
                f"(corrupted in transit; re-fetch)"
            )
    return dataset


# -------------------------------------------------------------------- errors
def error_to_wire(cell_id: str, worker_id: str, exc: BaseException) -> dict:
    """Failure report of one cell, carrying what the retry policy needs.

    ``kind`` (the exception class name) is what
    :func:`repro.resilience.classify_failure` keys on; the traceback rides
    along so a fail-fast abort can show the remote stack.
    """
    return {
        "cell_id": str(cell_id),
        "worker_id": str(worker_id),
        "kind": type(exc).__name__,
        "error": f"{type(exc).__name__}: {exc}",
        "traceback": traceback.format_exc(),
    }


# ------------------------------------------------------------------ settings
def settings_to_wire(settings: dict) -> dict:
    """Runner settings as JSON (``artifact_dir`` Path → string)."""
    wire = dict(settings)
    artifact_dir = wire.get("artifact_dir")
    wire["artifact_dir"] = (
        str(artifact_dir) if artifact_dir is not None else None
    )
    return json_safe(wire)


def settings_from_wire(payload: dict) -> dict:
    """Inverse of :func:`settings_to_wire`.

    ``artifact_dir`` is resolved on the *worker's* filesystem: loopback
    workers share the coordinator's warm-start directory, remote hosts use
    a local path of the same name (each cell writes a unique bundle, so
    concurrent workers never collide).
    """
    settings = dict(payload)
    artifact_dir = settings.get("artifact_dir")
    settings["artifact_dir"] = (
        Path(artifact_dir) if artifact_dir is not None else None
    )
    return settings


# --------------------------------------------------------------------- cells
def cell_to_wire(
    cell_id: str, *, dataset_ref: str, algorithm, label: str, repeat: int
) -> dict:
    """Descriptor of one (dataset, algorithm, repeat) work item.

    ``algorithm`` is either a table name (str) or a registry spec (dict) —
    the two grid-cell formats :class:`ExperimentRunner` accepts; both are
    already JSON.
    """
    return {
        "cell_id": cell_id,
        "dataset_ref": dataset_ref,
        "algorithm": algorithm,
        "label": label,
        "repeat": int(repeat),
    }


def cell_from_wire(payload: dict) -> dict:
    """Validated cell descriptor (same keys as :func:`cell_to_wire`)."""
    try:
        algorithm = payload["algorithm"]
        if not isinstance(algorithm, (str, dict)):
            raise ProtocolError(
                f"cell algorithm must be a name or spec, got "
                f"{type(algorithm).__name__}"
            )
        return {
            "cell_id": str(payload["cell_id"]),
            "dataset_ref": str(payload["dataset_ref"]),
            "algorithm": algorithm,
            "label": str(payload["label"]),
            "repeat": int(payload["repeat"]),
        }
    except KeyError as exc:
        raise ProtocolError(f"cell payload is missing field {exc}") from exc


# ------------------------------------------------------------------ outcomes
def outcome_to_wire(outcome: _RepeatOutcome) -> dict:
    """One repeat's result as JSON.

    The in-memory supervision object of ``supervision_entry`` stays on the
    worker (it is not JSON and the coordinator could not hand it to another
    host anyway); workers keep their own per-process supervision caches
    exactly like the process-pool path, and only the hit statistics travel.
    """
    return {
        "report": outcome.report.to_payload(),
        "artifact_hit": bool(outcome.artifact_hit),
        "supervision_hit": bool(outcome.supervision_hit),
    }


def outcome_from_wire(payload: dict) -> _RepeatOutcome:
    """Rebuild a :class:`_RepeatOutcome` from :func:`outcome_to_wire`."""
    try:
        return _RepeatOutcome(
            report=ClusteringReport.from_payload(payload["report"]),
            artifact_hit=bool(payload["artifact_hit"]),
            supervision_hit=bool(payload["supervision_hit"]),
            supervision_entry=None,
        )
    except KeyError as exc:
        raise ProtocolError(f"outcome payload is missing field {exc}") from exc
