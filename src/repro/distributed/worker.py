"""Experiment worker: ``python -m repro worker`` (or ``repro-worker``).

A worker executes grid cells for a :class:`~repro.distributed.coordinator.
GridCoordinator`.  Two modes share one pull loop:

* **connect mode** (``--connect HOST:PORT``): dial the coordinator, pull
  cells until it says stop, exit;
* **standby mode** (``--listen PORT``): serve a tiny control endpoint and
  wait; an :class:`ExperimentRunner` with ``workers=["host:port", ...]``
  POSTs ``/join {"coordinator": "host:port"}`` and the worker runs that
  grid, then returns to standby for the next one.

The pull loop is where the fault-tolerance contract is honoured from the
worker side: a background thread heartbeats at a fraction of the lease
timeout so only a *dead* worker ever lets a lease lapse; transport failures
reconnect with capped exponential backoff; SIGTERM/SIGINT finish the cell
in flight, say goodbye (releasing leases instantly) and exit 0.

Cells execute through the exact machinery of the in-process runner
(:func:`repro.experiments.runner._run_repeat`) with a per-process
supervision cache, so a cell computes bit-identical results no matter which
host it lands on.
"""

from __future__ import annotations

import argparse
import os
import socket
import subprocess
import sys
import threading
import time
import urllib.parse
import uuid
from http.server import ThreadingHTTPServer

from repro.distributed.errors import DistributedError, WorkerJoinError
from repro.distributed.messages import (
    PROTOCOL_VERSION,
    cell_from_wire,
    check_protocol,
    dataset_from_wire,
    error_to_wire,
    outcome_to_wire,
    settings_from_wire,
)
from repro.exceptions import ValidationError
from repro.serving.wire import JsonRequestHandler, WireError, request_json

__all__ = [
    "WorkerClient",
    "LoopbackWorkerPool",
    "spawn_loopback_workers",
    "dial_standby_workers",
    "parse_address",
    "main",
]


def parse_address(value: str) -> tuple[str, int]:
    """``"host:port"`` → ``(host, port)`` with validation."""
    host, separator, port = str(value).rpartition(":")
    if not separator or not host:
        raise ValidationError(f"expected HOST:PORT, got {value!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValidationError(f"invalid port in address {value!r}") from None


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


class WorkerClient:
    """Pull-loop client executing cells for one coordinator.

    Parameters
    ----------
    host, port : coordinator address.
    worker_id : str, optional
        Stable identity used for leases and heartbeats (default:
        hostname-pid-random).
    poll_interval : float
        Sleep between lease attempts while the queue is momentarily empty.
    backoff_base, backoff_cap : float
        Exponential reconnect schedule on transport failures:
        ``min(cap, base * 2**k)`` seconds after the k-th consecutive
        failure.
    max_consecutive_failures : int
        Give up (raise :class:`DistributedError`) after this many failed
        exchanges in a row — the coordinator is gone, not busy.
    secret : str, optional
        Shared secret sent in the ``X-Repro-Secret`` header on every
        exchange (required by coordinators started with one).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        worker_id: str | None = None,
        poll_interval: float = 0.05,
        backoff_base: float = 0.1,
        backoff_cap: float = 5.0,
        max_consecutive_failures: int = 12,
        verbose: bool = False,
        secret: str | None = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.worker_id = worker_id or _default_worker_id()
        self.poll_interval = float(poll_interval)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)
        self.max_consecutive_failures = int(max_consecutive_failures)
        self.verbose = verbose
        self.secret = str(secret) if secret else None
        self._stop = threading.Event()
        self._failures = 0
        self._settings: dict | None = None
        self._heartbeat_interval = 1.0
        self._datasets: dict[str, object] = {}
        self._supervision_cache: dict = {}
        self.n_cells_done = 0
        self.n_cells_failed = 0

    # -------------------------------------------------------------- plumbing
    def stop(self) -> None:
        """Ask the loop to exit after the cell in flight (signal-safe)."""
        self._stop.set()

    def _log(self, message: str) -> None:
        if self.verbose:
            print(f"[worker {self.worker_id}] {message}", flush=True)

    def _exchange(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One request with capped exponential backoff on transport errors.

        HTTP 5xx responses retry through the same backoff as transport
        failures: a coordinator mid-restart (or a flaky proxy in between)
        answers 500s briefly, and giving up on the first one would turn a
        transient blip into a lost worker.  4xx responses stay fatal — the
        coordinator understood the request and refused it.
        """
        while True:
            failure: str | None = None
            try:
                status, body = request_json(
                    self.host,
                    self.port,
                    method,
                    path,
                    payload,
                    timeout=30.0,
                    secret=self.secret,
                )
            except WireError as exc:
                failure = str(exc)
            else:
                if status == 401:
                    raise DistributedError(
                        f"coordinator {self.host}:{self.port} rejected the "
                        f"shared secret (401): {body.get('error', body)}"
                    )
                if status < 500:
                    if status != 200:
                        raise DistributedError(
                            f"coordinator rejected {method} {path}: "
                            f"{status} {body.get('error', body)}"
                        )
                    self._failures = 0
                    return body
                failure = f"HTTP {status} {body.get('error', body)}"
            self._failures += 1
            if self._failures >= self.max_consecutive_failures:
                raise DistributedError(
                    f"coordinator {self.host}:{self.port} unreachable "
                    f"after {self._failures} attempts: {failure}"
                )
            delay = min(
                self.backoff_cap,
                self.backoff_base * (2 ** (self._failures - 1)),
            )
            self._log(f"transport error ({failure}); retrying in {delay:.2f}s")
            if self._stop.wait(delay):
                raise DistributedError("worker stopped during reconnect")

    # ------------------------------------------------------------- heartbeat
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self._heartbeat_interval):
            try:
                request_json(
                    self.host,
                    self.port,
                    "POST",
                    "/worker/heartbeat",
                    {"worker_id": self.worker_id},
                    timeout=10.0,
                    secret=self.secret,
                )
            except Exception as exc:  # noqa: BLE001 - thread must survive
                # The pull loop owns reconnect policy; a missed heartbeat
                # just shortens the lease margin.  Catching *everything*
                # (not only WireError) keeps the thread alive — a dead
                # heartbeat thread silently expires every lease the worker
                # holds while it keeps computing, wasting whole cells.
                self._log(f"heartbeat failed ({type(exc).__name__}: {exc})")

    # -------------------------------------------------------------- datasets
    def _dataset(self, ref: str):
        dataset = self._datasets.get(ref)
        if dataset is None:
            payload = self._exchange(
                "GET", "/dataset/" + urllib.parse.quote(ref, safe="")
            )
            dataset = dataset_from_wire(payload)
            self._datasets[ref] = dataset
            self._log(f"fetched dataset {ref} "
                      f"({dataset.n_samples} x {dataset.n_features})")
        return dataset

    # ------------------------------------------------------------------ cells
    def _execute(self, cell: dict) -> bool:
        """Run one cell and report it; returns True when the coordinator
        said to stop (this result completed or aborted the grid)."""
        from repro.experiments.runner import _run_repeat

        try:
            # The dataset fetch sits *inside* the try: a transfer that fails
            # its integrity digest (or an OSError mid-download) must reach
            # the coordinator as a classified cell error so the retry policy
            # can re-run the cell elsewhere, not kill the worker.
            dataset = self._dataset(cell["dataset_ref"])
            outcome = _run_repeat(
                dataset,
                cell["algorithm"],
                cell["repeat"],
                self._settings,
                self._supervision_cache,
                label=cell["label"],
            )
        except Exception as exc:  # noqa: BLE001 - reported to the coordinator
            self.n_cells_failed += 1
            self._log(f"cell {cell['cell_id']} failed: {exc}")
            response = self._exchange(
                "POST",
                "/cell/error",
                error_to_wire(cell["cell_id"], self.worker_id, exc),
            )
            # A transient failure keeps the worker in the grid (the cell
            # retries, possibly here); only an aborting coordinator stops it.
            return bool(response.get("stop", True))
        response = self._exchange(
            "POST",
            "/cell/result",
            {
                "worker_id": self.worker_id,
                "cell_id": cell["cell_id"],
                "outcome": outcome_to_wire(outcome),
            },
        )
        self.n_cells_done += 1
        state = "merged" if response.get("accepted") else "duplicate"
        self._log(f"cell {cell['cell_id']} done ({state})")
        return bool(response.get("stop"))

    # -------------------------------------------------------------------- run
    def run(self) -> dict:
        """Register, pull cells until the coordinator says stop, say bye.

        Returns the worker-side counters (cells done/failed).
        """
        registration = self._exchange(
            "POST",
            "/worker/register",
            {"protocol": PROTOCOL_VERSION, "worker_id": self.worker_id},
        )
        check_protocol(registration, side="coordinator")
        self._settings = settings_from_wire(registration["settings"])
        self._heartbeat_interval = float(
            registration.get("heartbeat_interval", 1.0)
        )
        self._log(
            f"registered at {self.host}:{self.port} "
            f"({registration.get('n_cells')} cells in the grid)"
        )
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            name=f"heartbeat-{self.worker_id}",
            daemon=True,
        )
        heartbeat.start()
        try:
            while not self._stop.is_set():
                response = self._exchange(
                    "POST", "/cell/lease", {"worker_id": self.worker_id}
                )
                if response.get("stop"):
                    break
                cell_payload = response.get("cell")
                if cell_payload is None:
                    # Momentarily drained queue: other workers hold the
                    # remaining leases; poll again shortly.
                    self._stop.wait(self.poll_interval)
                    continue
                if self._execute(cell_from_wire(cell_payload)):
                    break
        finally:
            self._stop.set()
            heartbeat.join(timeout=2)
            try:
                request_json(
                    self.host,
                    self.port,
                    "POST",
                    "/worker/bye",
                    {"worker_id": self.worker_id},
                    timeout=5.0,
                    secret=self.secret,
                )
            except WireError:
                pass  # leases expire on their own
        self._log(f"done ({self.n_cells_done} cells)")
        return {
            "n_cells_done": self.n_cells_done,
            "n_cells_failed": self.n_cells_failed,
        }


# ------------------------------------------------------------ loopback pool
class LoopbackWorkerPool:
    """Local worker subprocesses for single-machine distributed runs."""

    def __init__(self, processes: list[subprocess.Popen]) -> None:
        self.processes = processes

    def __len__(self) -> int:
        return len(self.processes)

    @property
    def n_alive(self) -> int:
        return sum(1 for process in self.processes if process.poll() is None)

    def kill_one(self) -> int:
        """SIGKILL the first live worker (fault-injection hook for tests);
        returns its pid."""
        for process in self.processes:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
                return process.pid
        raise DistributedError("no live worker to kill")

    def terminate(self, timeout: float = 10.0) -> None:
        """Stop every worker: SIGTERM, then SIGKILL stragglers."""
        for process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for process in self.processes:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:  # pragma: no cover - last resort
                process.kill()
                process.wait(timeout=5)


def spawn_loopback_workers(
    n_workers: int,
    coordinator_address: str,
    *,
    poll_interval: float = 0.05,
    verbose: bool = False,
    secret: str | None = None,
) -> LoopbackWorkerPool:
    """Start ``n_workers`` local ``python -m repro worker`` subprocesses.

    The child inherits the parent's import path (``PYTHONPATH`` is extended
    with the live ``sys.path``), so the stack is testable from a source
    checkout without installation.  ``secret`` travels via the
    ``REPRO_SECRET`` environment variable, not argv (``ps`` would show it).
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [path for path in sys.path if path] +
        [path for path in env.get("PYTHONPATH", "").split(os.pathsep) if path]
    )
    if secret:
        env["REPRO_SECRET"] = str(secret)
    command = [
        sys.executable, "-m", "repro", "worker",
        "--connect", coordinator_address,
        "--poll-interval", str(poll_interval),
    ]
    if verbose:
        command.append("--verbose")
    processes = [
        subprocess.Popen(
            command,
            env=env,
            stdout=None if verbose else subprocess.DEVNULL,
            stderr=None if verbose else subprocess.DEVNULL,
        )
        for _ in range(int(n_workers))
    ]
    return LoopbackWorkerPool(processes)


def dial_standby_workers(
    addresses: list[str],
    coordinator_address: str,
    *,
    timeout: float = 10.0,
    secret: str | None = None,
) -> None:
    """Tell each standby worker (``--listen``) to join a coordinator.

    A worker still winding down its previous grid answers 409 for a
    moment (it clears its busy flag right after saying goodbye to the old
    coordinator), so busy/unreachable workers are retried with backoff for
    up to ``timeout`` seconds before :class:`WorkerJoinError` is raised.
    ``secret`` authenticates the join against a worker started with one
    (the worker then uses its own secret toward the coordinator).
    """
    for address in addresses:
        host, port = parse_address(address)
        deadline = time.monotonic() + timeout
        delay = 0.05
        while True:
            failure = None
            try:
                status, body = request_json(
                    host,
                    port,
                    "POST",
                    "/join",
                    {
                        "protocol": PROTOCOL_VERSION,
                        "coordinator": coordinator_address,
                    },
                    timeout=timeout,
                    secret=secret,
                )
            except WireError as exc:
                failure = f"standby worker {address} is unreachable: {exc}"
            else:
                if status == 200:
                    break
                failure = (
                    f"standby worker {address} refused to join: "
                    f"{status} {body.get('error', body)}"
                )
            if time.monotonic() >= deadline:
                raise WorkerJoinError(failure)
            time.sleep(delay)
            delay = min(1.0, delay * 2)


# ------------------------------------------------------------- standby mode
class _StandbyRequestHandler(JsonRequestHandler):
    server_version = "repro-worker/1.0"

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            busy = self.server.busy.is_set()  # type: ignore[attr-defined]
            self.send_json(
                200,
                {
                    "status": "busy" if busy else "idle",
                    "protocol": PROTOCOL_VERSION,
                },
            )
        else:
            self.send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self.authorize():
            return
        if self.path != "/join":
            self.drain_body()
            self.send_error_json(404, f"unknown route {self.path!r}")
            return
        try:
            request = self.read_json_body()
            check_protocol(request, side="runner")
            coordinator = parse_address(request.get("coordinator") or "")
        except (ValidationError, ValueError, TypeError) as exc:
            self.send_error_json(400, str(exc))
            return
        server = self.server  # type: ignore[assignment]
        if server.busy.is_set():
            self.send_error_json(409, "worker is busy with another grid")
            return
        server.pending_coordinator = coordinator
        server.busy.set()
        # Set the event *before* writing the response: a runner that sees
        # the 200 must be able to rely on the join being underway, and on a
        # single-core host it can act on the response before this handler
        # thread would otherwise be scheduled again.
        server.join_event.set()
        self.send_json(200, {"ok": True})


class _StandbyServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, secret: str | None = None) -> None:
        self.join_event = threading.Event()
        self.busy = threading.Event()
        self.pending_coordinator: tuple[str, int] | None = None
        self.verbose = False
        self.auth_secret = secret
        super().__init__(address, _StandbyRequestHandler)


def _run_standby(args: argparse.Namespace) -> int:
    server = _StandbyServer((args.host, args.listen), secret=args.secret)
    server.verbose = args.verbose
    thread = threading.Thread(
        target=server.serve_forever, name="repro-worker-standby", daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    print(f"worker standing by on http://{host}:{port} "
          "(POST /join {\"coordinator\": \"host:port\"})", flush=True)
    stop = threading.Event()
    _install_stop_signals(stop.set)
    try:
        while not stop.is_set():
            if not server.join_event.wait(timeout=0.2):
                continue
            server.join_event.clear()
            coordinator = server.pending_coordinator
            if coordinator is None:  # pragma: no cover - defensive
                server.busy.clear()
                continue
            client = WorkerClient(
                *coordinator,
                worker_id=args.worker_id,
                poll_interval=args.poll_interval,
                verbose=args.verbose,
                secret=args.secret,
            )
            _current_client["client"] = client
            try:
                counters = client.run()
                print(f"grid finished: {counters['n_cells_done']} cells",
                      flush=True)
            except DistributedError as exc:
                print(f"grid aborted: {exc}", file=sys.stderr, flush=True)
            finally:
                _current_client["client"] = None
                server.busy.clear()
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
    return 0


# ----------------------------------------------------------------- CLI entry
#: The client currently executing (so signal handlers can reach it).
_current_client: dict = {"client": None}


def _install_stop_signals(also=None) -> None:
    import signal

    def _graceful(signum, frame):  # noqa: ARG001 - signal signature
        client = _current_client.get("client")
        if client is not None:
            client.stop()
        if also is not None:
            also()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _graceful)
        except ValueError:  # pragma: no cover - non-main thread
            return


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="Execute experiment grid cells for a coordinator.",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="pull cells from this coordinator, exit when the grid is done",
    )
    mode.add_argument(
        "--listen",
        type=int,
        metavar="PORT",
        help="standby mode: wait for a runner to POST /join (0 = ephemeral)",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address in standby mode")
    parser.add_argument("--worker-id", default=None,
                        help="stable worker identity (default: host-pid-random)")
    parser.add_argument("--poll-interval", type=float, default=0.05,
                        help="seconds between lease polls when idle")
    parser.add_argument("--secret", default=os.environ.get("REPRO_SECRET"),
                        help="shared secret for coordinator auth (default: "
                             "the REPRO_SECRET environment variable)")
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per cell")
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point of ``python -m repro worker`` / ``repro-worker``."""
    args = build_parser().parse_args(argv)
    if args.listen is not None:
        return _run_standby(args)
    host, port = parse_address(args.connect)
    client = WorkerClient(
        host,
        port,
        worker_id=args.worker_id,
        poll_interval=args.poll_interval,
        verbose=args.verbose,
        secret=args.secret,
    )
    _current_client["client"] = client
    _install_stop_signals()
    try:
        counters = client.run()
    except DistributedError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    finally:
        _current_client["client"] = None
    print(f"worker finished: {counters['n_cells_done']} cell(s) executed, "
          f"{counters['n_cells_failed']} failed", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
