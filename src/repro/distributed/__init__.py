"""Fault-tolerant multi-host experiment runner.

The paper's evaluation is a (dataset x algorithm x repeat) grid;
:class:`~repro.experiments.runner.ExperimentRunner` fans it out on one host
via a process pool.  This package scales the same grid across hosts with a
coordinator/worker protocol over JSON/HTTP (plumbing shared with the
serving stack via :mod:`repro.serving.wire`):

* the **coordinator** (:class:`GridCoordinator`) shards cells into a lease
  queue, serves datasets to workers, merges streamed-back outcomes
  idempotently, re-queues cells whose lease expires (worker killed
  mid-cell) and drains gracefully on SIGINT/SIGTERM;
* a **worker** (``python -m repro worker --connect HOST:PORT``, module
  :mod:`repro.distributed.worker`) pulls cells, executes them through the
  exact in-process repeat machinery, heartbeats to keep its leases alive
  and reconnects with exponential backoff.

Determinism is the contract: every cell seeds from its identity
(``random_state + repeat``), floats cross the wire bit-exactly, and the
coordinator assembles results in grid order — so a distributed
:meth:`~repro.experiments.runner.ExperimentRunner.run_suite` is
**bit-identical** to the sequential run, including after worker loss.

Entry points: ``ExperimentRunner(workers=4)`` (auto-spawned loopback
worker subprocesses), ``ExperimentRunner(workers=["host:port", ...])``
(standby workers started with ``--listen``), and
``python -m repro evaluate --grid --workers ...``.
"""

from repro.distributed.coordinator import GridCoordinator, coordinator_signal_drain
from repro.distributed.errors import (
    CellExecutionError,
    CoordinatorDrained,
    DistributedError,
    ProtocolError,
    WorkerJoinError,
)
from repro.distributed.messages import PROTOCOL_VERSION
from repro.distributed.queue import CellLease, LeaseQueue
from repro.distributed.worker import (
    LoopbackWorkerPool,
    WorkerClient,
    dial_standby_workers,
    parse_address,
    spawn_loopback_workers,
)

__all__ = [
    "PROTOCOL_VERSION",
    "GridCoordinator",
    "coordinator_signal_drain",
    "LeaseQueue",
    "CellLease",
    "WorkerClient",
    "LoopbackWorkerPool",
    "spawn_loopback_workers",
    "dial_standby_workers",
    "parse_address",
    "DistributedError",
    "ProtocolError",
    "WorkerJoinError",
    "CellExecutionError",
    "CoordinatorDrained",
]
