"""Grid coordinator: shards experiment cells to workers over JSON/HTTP.

The coordinator owns the full (dataset, algorithm, repeat) cell list of a
grid, a :class:`~repro.distributed.queue.LeaseQueue` tracking each cell's
state, and the merged results.  Workers *pull*: they register, lease cells,
stream back outcomes and heartbeat in between — the coordinator never dials
a worker mid-grid, so worker loss is detected purely by silence (lease
expiry) and tolerated by re-queueing.

Routes (all JSON; the plumbing is :mod:`repro.serving.wire`)
------------------------------------------------------------
``POST /worker/register``  ``{protocol, worker_id}`` →
    the run settings, the lease timeout and the heartbeat interval.
``POST /cell/lease``       ``{worker_id}`` →
    ``{"cell": {...}}``, ``{"idle": true}`` (nothing pending right now) or
    ``{"stop": true}`` (grid finished, failed or draining — disconnect).
``POST /cell/result``      ``{worker_id, cell_id, outcome}`` →
    ``{"accepted": bool}`` (false: a duplicate of an already-merged cell).
``POST /cell/error``       ``{worker_id, cell_id, kind, error}`` →
    records the remote failure.  Transient failures (see
    :func:`repro.resilience.classify_failure`) re-queue the cell with
    backoff up to ``max_cell_retries``; deterministic ones — or transient
    ones past the retry budget — abort the grid (they would fail on every
    retry).
``POST /worker/heartbeat`` ``{worker_id}`` → renews the worker's leases.
``POST /worker/bye``       ``{worker_id}`` → releases its leases instantly.
``GET  /dataset/<abbr>``   → the dataset matrix (workers cache it per grid,
    verifying its sha256 digest before trusting the copy).
``GET  /status`` / ``GET /healthz`` → queue counters / liveness.

Resilience:

* a ``journal`` path arms the :class:`~repro.resilience.GridJournal`
  write-ahead log — every accepted result is fsync'd before the worker sees
  the acknowledgement, and ``resume=True`` replays a prior journal so a
  coordinator killed mid-grid only re-runs the cells it had not yet merged;
* a per-worker :class:`~repro.resilience.CircuitBreaker` quarantines hosts
  that keep failing cells (``quarantine_after`` consecutive strikes): their
  leases are released, further lease polls answer ``{"stop": true}`` and
  ``/status`` lists them;
* a non-empty ``secret`` requires the ``X-Repro-Secret`` header (constant
  time compare, 401 on mismatch) on every route except ``/healthz``.

Determinism: results are keyed by cell id and later read back in the
*grid's* order, never in arrival order, and every float crosses the wire
bit-exactly — so the merged table is identical to the sequential run no
matter how cells interleave, expire, retry or duplicate.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
import urllib.parse
from http.server import ThreadingHTTPServer

from repro.distributed.errors import (
    CellExecutionError,
    CoordinatorDrained,
    DistributedError,
)
from repro.distributed.messages import (
    PROTOCOL_VERSION,
    cell_to_wire,
    check_protocol,
    dataset_to_wire,
    settings_to_wire,
)
from repro.distributed.queue import LeaseQueue
from repro.exceptions import ValidationError
from repro.resilience import (
    CircuitBreaker,
    GridJournal,
    RetryPolicy,
    classify_failure,
    grid_fingerprint,
)
from repro.serving.wire import JsonRequestHandler, PayloadTooLargeError

__all__ = ["GridCoordinator", "coordinator_signal_drain"]


class _CoordinatorRequestHandler(JsonRequestHandler):
    server_version = "repro-coordinator/1.0"

    @property
    def coordinator(self) -> "GridCoordinator":
        return self.server.coordinator  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            # Liveness stays unauthenticated: probes and load balancers
            # should not need the secret to tell alive from dead.
            self.send_json(
                200, {"status": "ok", "protocol": PROTOCOL_VERSION}
            )
        elif not self.authorize():
            return
        elif self.path == "/status":
            self.send_json(200, self.coordinator.describe())
        elif self.path.startswith("/dataset/"):
            name = urllib.parse.unquote(self.path[len("/dataset/"):])
            payload = self.coordinator.dataset_payload(name)
            if payload is None:
                self.send_error_json(404, f"unknown dataset {name!r}")
            else:
                self.send_json(200, payload)
        else:
            self.send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if not self.authorize():
            return
        route = self.coordinator.POST_ROUTES.get(self.path)
        if route is None:
            self.drain_body()
            self.send_error_json(404, f"unknown route {self.path!r}")
            return
        try:
            request = self.read_json_body()
            response = route(self.coordinator, request)
        except PayloadTooLargeError as exc:
            self.send_error_json(413, str(exc))
        except (ValidationError, ValueError, TypeError, KeyError) as exc:
            self.send_error_json(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self.send_json(200, response)


class _CoordinatorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(
        self,
        address,
        coordinator: "GridCoordinator",
        verbose: bool,
        secret: str | None = None,
    ):
        self.coordinator = coordinator
        self.verbose = verbose
        self.auth_secret = secret
        super().__init__(address, _CoordinatorRequestHandler)


class GridCoordinator:
    """Fault-tolerant coordinator for one experiment grid.

    Parameters
    ----------
    cells : list of dict
        Cell descriptors (``cell_id``, ``dataset_ref``, ``algorithm``,
        ``label``, ``repeat``) in dispatch order; see
        :func:`repro.distributed.messages.cell_to_wire`.
    datasets : dict
        ``abbreviation -> Dataset`` for every ``dataset_ref`` used.
    settings : dict
        The runner settings workers execute cells with (the same dict
        :func:`repro.experiments.runner._run_repeat` takes).
    host, port : bind address (port 0 → ephemeral).
    lease_timeout : float
        Seconds without a heartbeat before a worker's cells are re-queued.
    clock : callable
        Monotonic time source (injectable for tests).
    journal : str, Path or GridJournal, optional
        Arms the write-ahead journal: every accepted result is fsync'd to
        this JSONL file before the worker's acknowledgement.  A path is
        opened with the grid's fingerprint; a ready-made
        :class:`~repro.resilience.GridJournal` is used as-is.
    resume : bool, default False
        Replay an existing journal before serving: replayed cells are
        pre-completed (never re-leased) and their outcomes merged verbatim.
        Requires ``journal``; refuses a journal whose fingerprint belongs
        to a different grid.
    max_cell_retries : int, default 2
        Transient-failure retries per cell; 0 restores strict fail-fast.
    retry_backoff : float, default 0.5
        Base delay (doubled per failure) before a retried cell re-enters
        the queue.
    quarantine_after : int, default 3
        Consecutive failures after which a worker is quarantined for the
        rest of the grid.
    secret : str, optional
        Shared secret required (``X-Repro-Secret``) on every route except
        ``/healthz``.
    """

    def __init__(
        self,
        cells: list[dict],
        datasets: dict,
        settings: dict,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        clock=time.monotonic,
        verbose: bool = False,
        journal=None,
        resume: bool = False,
        max_cell_retries: int = 2,
        retry_backoff: float = 0.5,
        quarantine_after: int = 3,
        secret: str | None = None,
    ) -> None:
        if not cells:
            raise ValidationError("a grid needs at least one cell")
        self._cells = {cell["cell_id"]: dict(cell) for cell in cells}
        if len(self._cells) != len(cells):
            raise ValidationError("cell ids must be unique")
        missing = {
            cell["dataset_ref"] for cell in cells
        } - set(datasets)
        if missing:
            raise ValidationError(f"cells reference unknown datasets {sorted(missing)}")
        self._datasets = dict(datasets)
        self._settings_wire = settings_to_wire(settings)
        self.queue = LeaseQueue(
            [cell["cell_id"] for cell in cells],
            lease_timeout=lease_timeout,
            clock=clock,
        )
        self.lease_timeout = float(lease_timeout)
        self.retry_policy = RetryPolicy(
            max_cell_retries, backoff_base=retry_backoff
        )
        self.breaker = CircuitBreaker(quarantine_after)
        self.secret = str(secret) if secret else None
        self._cell_failures: dict[str, int] = {}
        self._results: dict[str, dict] = {}
        self._results_lock = threading.Lock()
        self._workers: set[str] = set()
        self._failure: str | None = None
        self._draining = False
        self._done_event = threading.Event()
        self.verbose = verbose
        self.journal: GridJournal | None = None
        self.n_replayed = 0
        if journal is not None:
            if isinstance(journal, GridJournal):
                self.journal = journal
            else:
                self.journal = GridJournal(
                    journal,
                    fingerprint=grid_fingerprint(cells, settings, datasets),
                    resume=resume,
                )
            # Replayed cells are merged up front and never leased again; a
            # crash-resumed grid only runs the remainder.
            for cell_id, outcome in self.journal.replayed.items():
                if cell_id in self._cells and self.queue.complete(
                    cell_id, "journal"
                ):
                    self._results[cell_id] = outcome
                    self.n_replayed += 1
        elif resume:
            raise ValidationError("resume=True requires a journal path")
        if self.queue.done:
            self._done_event.set()
        self._server = _CoordinatorHTTPServer(
            (host, port), self, verbose, secret=self.secret
        )
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the coordinator server."""
        return self._server.server_address[:2]

    @property
    def address_string(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "GridCoordinator":
        """Serve in a background thread; returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down, close the journal, join the thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        if self.journal is not None:
            self.journal.close()

    def drain(self) -> None:
        """Stop handing out cells; workers disconnect at their next poll."""
        self._draining = True
        self._done_event.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # -------------------------------------------------------------- handlers
    def handle_register(self, request: dict) -> dict:
        check_protocol(request, side="worker")
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("register requires a worker_id")
        self._workers.add(worker_id)
        if self.verbose:  # pragma: no cover - cosmetic
            print(f"[coordinator] worker {worker_id} registered")
        return {
            "protocol": PROTOCOL_VERSION,
            "settings": self._settings_wire,
            "lease_timeout": self.lease_timeout,
            # Workers renew well inside the timeout so only real silence
            # (a dead process, a partition) ever expires a lease.
            "heartbeat_interval": max(self.lease_timeout / 4.0, 0.05),
            "n_cells": self.queue.n_cells,
        }

    def handle_lease(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("lease requires a worker_id")
        if self.breaker.is_quarantined(worker_id):
            # A quarantined host gets a clean stop instead of an error: its
            # in-flight work was already released and the grid finishes on
            # the healthy workers.
            return {"stop": True, "quarantined": True}
        if self._draining or self._failure is not None or self.queue.done:
            return {"stop": True}
        cell_id = self.queue.lease(worker_id)
        if cell_id is None:
            # Nothing pending: either the grid is finishing on other
            # workers (idle-poll until done) or everything is leased out.
            return {"stop": False, "idle": True}
        cell = self._cells[cell_id]
        return {
            "stop": False,
            "cell": cell_to_wire(
                cell_id,
                dataset_ref=cell["dataset_ref"],
                algorithm=cell["algorithm"],
                label=cell["label"],
                repeat=cell["repeat"],
            ),
        }

    def handle_result(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        cell_id = str(request.get("cell_id") or "")
        outcome = request.get("outcome")
        if not worker_id or not cell_id or not isinstance(outcome, dict):
            raise ValidationError(
                "result requires worker_id, cell_id and an outcome object"
            )
        if cell_id not in self._cells:
            raise ValidationError(f"unknown cell id {cell_id!r}")
        if self.journal is not None:
            # Write-ahead: the fsync happens *before* the completion is
            # recorded or acknowledged, so a coordinator killed right after
            # this line still owns the result on resume.  (A journal-write
            # failure turns into a 500; the worker retries the delivery.)
            self.journal.record_result(cell_id, outcome)
        accepted = self.queue.complete(cell_id, worker_id)
        self.breaker.record_success(worker_id)
        if accepted:
            with self._results_lock:
                self._results[cell_id] = outcome
            if self.queue.done:
                self._done_event.set()
        if self.verbose:  # pragma: no cover - cosmetic
            state = "merged" if accepted else "duplicate (discarded)"
            print(f"[coordinator] {cell_id} from {worker_id}: {state}")
        # Telling the worker that delivered the last result to stop right
        # here (instead of at its next lease poll) closes the window where
        # it would race the coordinator's teardown and burn its reconnect
        # backoff on a server that is gone.
        return {
            "accepted": accepted,
            "stop": self._draining or self._failure is not None or self.queue.done,
        }

    def handle_error(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "?")
        cell_id = str(request.get("cell_id") or "?")
        error = str(request.get("error") or "unknown error")
        kind = str(request.get("kind") or "")
        transient = classify_failure(kind, error)
        n_failures = self._cell_failures.get(cell_id, 0) + 1
        self._cell_failures[cell_id] = n_failures
        if self.journal is not None and cell_id in self._cells:
            self.journal.record_error(
                cell_id,
                worker_id=worker_id,
                kind=kind or "unknown",
                transient=transient,
            )
        if self.breaker.record_failure(worker_id):
            released = self.queue.release(worker_id)
            if self.verbose:  # pragma: no cover - cosmetic
                print(
                    f"[coordinator] worker {worker_id} quarantined after "
                    f"{self.breaker.threshold} consecutive failures "
                    f"({released} lease(s) re-queued)"
                )
        retried = False
        if (
            transient
            and cell_id in self._cells
            and self.retry_policy.allows(n_failures)
        ):
            # requeue() returning False means the cell already completed on
            # another worker or is already queued for retry — either way
            # the failure is absorbed, not fatal.
            self.queue.requeue(
                cell_id, delay=self.retry_policy.delay(n_failures)
            )
            retried = True
            if self.verbose:  # pragma: no cover - cosmetic
                print(
                    f"[coordinator] {cell_id} failed transiently on "
                    f"{worker_id} ({kind or 'unknown'}); retry "
                    f"{n_failures}/{self.retry_policy.max_cell_retries}"
                )
        elif self._failure is None:
            # Fail fast: a deterministic error (or a transient one past its
            # retry budget) would reproduce on every worker.
            reason = (
                "transient, retries exhausted" if transient else "deterministic"
            )
            self._failure = (
                f"cell {cell_id!r} failed on worker {worker_id!r} "
                f"[{reason}]: {error}"
            )
            self._done_event.set()
        return {
            "ok": True,
            "retried": retried,
            "stop": (
                self._draining or self._failure is not None or self.queue.done
            ),
        }

    def handle_heartbeat(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("heartbeat requires a worker_id")
        renewed = self.queue.heartbeat(worker_id)
        return {
            "renewed": renewed,
            "stop": self._draining or self._failure is not None or self.queue.done,
        }

    def handle_bye(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("bye requires a worker_id")
        released = self.queue.release(worker_id)
        self._workers.discard(worker_id)
        if self.verbose:  # pragma: no cover - cosmetic
            print(f"[coordinator] worker {worker_id} left, "
                  f"{released} lease(s) re-queued")
        return {"released": released}

    POST_ROUTES = {
        "/worker/register": handle_register,
        "/cell/lease": handle_lease,
        "/cell/result": handle_result,
        "/cell/error": handle_error,
        "/worker/heartbeat": handle_heartbeat,
        "/worker/bye": handle_bye,
    }

    # ------------------------------------------------------------ inspection
    def dataset_payload(self, name: str) -> dict | None:
        dataset = self._datasets.get(name)
        if dataset is None:
            return None
        return dataset_to_wire(dataset)

    def describe(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "queue": self.queue.counters(),
            "n_workers": len(self._workers),
            "draining": self._draining,
            "failed": self._failure is not None,
            "done": self.queue.done,
            "quarantined_workers": self.breaker.quarantined,
            "n_journal_replayed": self.n_replayed,
            "journal": (
                str(self.journal.path) if self.journal is not None else None
            ),
            "secret_required": self.secret is not None,
        }

    # ------------------------------------------------------------ collection
    def wait(
        self,
        *,
        timeout: float | None = None,
        poll: float = 0.25,
        watchdog=None,
    ) -> dict:
        """Block until every cell completed; returns ``{cell_id: outcome}``.

        ``outcome`` values are the raw wire payloads (decode with
        :func:`repro.distributed.messages.outcome_from_wire`).  Raises
        :class:`CellExecutionError` when a worker reported a failure,
        :class:`CoordinatorDrained` after :meth:`drain` once in-flight
        leases have finished or expired, and :class:`DistributedError` on
        ``timeout``.  ``watchdog`` (when given) runs every poll iteration
        and may raise to abort the wait — the runner uses it to detect a
        loopback pool whose workers all died.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if watchdog is not None:
                watchdog()
            if self._failure is not None:
                raise CellExecutionError(self._failure)
            if self.queue.done:
                with self._results_lock:
                    return dict(self._results)
            if self._draining:
                # Give in-flight cells a chance to land, then report how
                # far the grid got.
                self.queue.expire_overdue()
                if self.queue.n_leased == 0:
                    counters = self.queue.counters()
                    raise CoordinatorDrained(
                        "coordinator drained with "
                        f"{counters['n_completed']}/{counters['n_cells']} "
                        "cells completed",
                        n_completed=counters["n_completed"],
                        n_total=counters["n_cells"],
                    )
            else:
                # Keep expiring even when no worker is polling, so a grid
                # whose workers all died surfaces in the counters.
                self.queue.expire_overdue()
            if deadline is not None and time.monotonic() >= deadline:
                counters = self.queue.counters()
                raise DistributedError(
                    f"grid did not complete within {timeout:.1f}s "
                    f"({counters['n_completed']}/{counters['n_cells']} cells)"
                )
            self._done_event.wait(poll)
            self._done_event.clear()


@contextlib.contextmanager
def coordinator_signal_drain(coordinator: GridCoordinator):
    """Drain the coordinator gracefully on SIGINT/SIGTERM.

    Installed around blocking :meth:`GridCoordinator.wait` calls in CLI
    paths (only the main thread may set signal handlers; library callers in
    other threads simply do not use this).  The first signal switches the
    grid into drain mode — no new leases, in-flight cells finish, partial
    results stay mergeable; a second signal falls through to the previous
    handler (typically KeyboardInterrupt).
    """
    seen = threading.Event()

    def _drain(signum, frame):  # noqa: ARG001 - signal signature
        if seen.is_set():
            previous = previous_handlers.get(signum)
            if callable(previous):
                previous(signum, frame)
            return
        seen.set()
        coordinator.drain()

    previous_handlers = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _drain)
    except ValueError:
        # Not the main thread: signals cannot be installed; run unguarded.
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
