"""Grid coordinator: shards experiment cells to workers over JSON/HTTP.

The coordinator owns the full (dataset, algorithm, repeat) cell list of a
grid, a :class:`~repro.distributed.queue.LeaseQueue` tracking each cell's
state, and the merged results.  Workers *pull*: they register, lease cells,
stream back outcomes and heartbeat in between — the coordinator never dials
a worker mid-grid, so worker loss is detected purely by silence (lease
expiry) and tolerated by re-queueing.

Routes (all JSON; the plumbing is :mod:`repro.serving.wire`)
------------------------------------------------------------
``POST /worker/register``  ``{protocol, worker_id}`` →
    the run settings, the lease timeout and the heartbeat interval.
``POST /cell/lease``       ``{worker_id}`` →
    ``{"cell": {...}}``, ``{"idle": true}`` (nothing pending right now) or
    ``{"stop": true}`` (grid finished, failed or draining — disconnect).
``POST /cell/result``      ``{worker_id, cell_id, outcome}`` →
    ``{"accepted": bool}`` (false: a duplicate of an already-merged cell).
``POST /cell/error``       ``{worker_id, cell_id, error}`` →
    records the remote failure; the grid aborts (deterministic errors would
    fail on every retry).
``POST /worker/heartbeat`` ``{worker_id}`` → renews the worker's leases.
``POST /worker/bye``       ``{worker_id}`` → releases its leases instantly.
``GET  /dataset/<abbr>``   → the dataset matrix (workers cache it per grid).
``GET  /status`` / ``GET /healthz`` → queue counters / liveness.

Determinism: results are keyed by cell id and later read back in the
*grid's* order, never in arrival order, and every float crosses the wire
bit-exactly — so the merged table is identical to the sequential run no
matter how cells interleave, expire or duplicate.
"""

from __future__ import annotations

import contextlib
import signal
import threading
import time
import urllib.parse
from http.server import ThreadingHTTPServer

from repro.distributed.errors import (
    CellExecutionError,
    CoordinatorDrained,
    DistributedError,
)
from repro.distributed.messages import (
    PROTOCOL_VERSION,
    cell_to_wire,
    check_protocol,
    dataset_to_wire,
    settings_to_wire,
)
from repro.distributed.queue import LeaseQueue
from repro.exceptions import ValidationError
from repro.serving.wire import JsonRequestHandler, PayloadTooLargeError

__all__ = ["GridCoordinator", "coordinator_signal_drain"]


class _CoordinatorRequestHandler(JsonRequestHandler):
    server_version = "repro-coordinator/1.0"

    @property
    def coordinator(self) -> "GridCoordinator":
        return self.server.coordinator  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path == "/healthz":
            self.send_json(
                200, {"status": "ok", "protocol": PROTOCOL_VERSION}
            )
        elif self.path == "/status":
            self.send_json(200, self.coordinator.describe())
        elif self.path.startswith("/dataset/"):
            name = urllib.parse.unquote(self.path[len("/dataset/"):])
            payload = self.coordinator.dataset_payload(name)
            if payload is None:
                self.send_error_json(404, f"unknown dataset {name!r}")
            else:
                self.send_json(200, payload)
        else:
            self.send_error_json(404, f"unknown route {self.path!r}")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        route = self.coordinator.POST_ROUTES.get(self.path)
        if route is None:
            self.drain_body()
            self.send_error_json(404, f"unknown route {self.path!r}")
            return
        try:
            request = self.read_json_body()
            response = route(self.coordinator, request)
        except PayloadTooLargeError as exc:
            self.send_error_json(413, str(exc))
        except (ValidationError, ValueError, TypeError, KeyError) as exc:
            self.send_error_json(400, str(exc))
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.send_error_json(500, f"{type(exc).__name__}: {exc}")
        else:
            self.send_json(200, response)


class _CoordinatorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True

    def __init__(self, address, coordinator: "GridCoordinator", verbose: bool):
        self.coordinator = coordinator
        self.verbose = verbose
        super().__init__(address, _CoordinatorRequestHandler)


class GridCoordinator:
    """Fault-tolerant coordinator for one experiment grid.

    Parameters
    ----------
    cells : list of dict
        Cell descriptors (``cell_id``, ``dataset_ref``, ``algorithm``,
        ``label``, ``repeat``) in dispatch order; see
        :func:`repro.distributed.messages.cell_to_wire`.
    datasets : dict
        ``abbreviation -> Dataset`` for every ``dataset_ref`` used.
    settings : dict
        The runner settings workers execute cells with (the same dict
        :func:`repro.experiments.runner._run_repeat` takes).
    host, port : bind address (port 0 → ephemeral).
    lease_timeout : float
        Seconds without a heartbeat before a worker's cells are re-queued.
    clock : callable
        Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        cells: list[dict],
        datasets: dict,
        settings: dict,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        lease_timeout: float = 30.0,
        clock=time.monotonic,
        verbose: bool = False,
    ) -> None:
        if not cells:
            raise ValidationError("a grid needs at least one cell")
        self._cells = {cell["cell_id"]: dict(cell) for cell in cells}
        if len(self._cells) != len(cells):
            raise ValidationError("cell ids must be unique")
        missing = {
            cell["dataset_ref"] for cell in cells
        } - set(datasets)
        if missing:
            raise ValidationError(f"cells reference unknown datasets {sorted(missing)}")
        self._datasets = dict(datasets)
        self._settings_wire = settings_to_wire(settings)
        self.queue = LeaseQueue(
            [cell["cell_id"] for cell in cells],
            lease_timeout=lease_timeout,
            clock=clock,
        )
        self.lease_timeout = float(lease_timeout)
        self._results: dict[str, dict] = {}
        self._results_lock = threading.Lock()
        self._workers: set[str] = set()
        self._failure: str | None = None
        self._draining = False
        self._done_event = threading.Event()
        self.verbose = verbose
        self._server = _CoordinatorHTTPServer((host, port), self, verbose)
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------- lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` of the coordinator server."""
        return self._server.server_address[:2]

    @property
    def address_string(self) -> str:
        host, port = self.address
        return f"{host}:{port}"

    def start(self) -> "GridCoordinator":
        """Serve in a background thread; returns self."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-coordinator",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def drain(self) -> None:
        """Stop handing out cells; workers disconnect at their next poll."""
        self._draining = True
        self._done_event.set()

    @property
    def draining(self) -> bool:
        return self._draining

    # -------------------------------------------------------------- handlers
    def handle_register(self, request: dict) -> dict:
        check_protocol(request, side="worker")
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("register requires a worker_id")
        self._workers.add(worker_id)
        if self.verbose:  # pragma: no cover - cosmetic
            print(f"[coordinator] worker {worker_id} registered")
        return {
            "protocol": PROTOCOL_VERSION,
            "settings": self._settings_wire,
            "lease_timeout": self.lease_timeout,
            # Workers renew well inside the timeout so only real silence
            # (a dead process, a partition) ever expires a lease.
            "heartbeat_interval": max(self.lease_timeout / 4.0, 0.05),
            "n_cells": self.queue.n_cells,
        }

    def handle_lease(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("lease requires a worker_id")
        if self._draining or self._failure is not None or self.queue.done:
            return {"stop": True}
        cell_id = self.queue.lease(worker_id)
        if cell_id is None:
            # Nothing pending: either the grid is finishing on other
            # workers (idle-poll until done) or everything is leased out.
            return {"stop": False, "idle": True}
        cell = self._cells[cell_id]
        return {
            "stop": False,
            "cell": cell_to_wire(
                cell_id,
                dataset_ref=cell["dataset_ref"],
                algorithm=cell["algorithm"],
                label=cell["label"],
                repeat=cell["repeat"],
            ),
        }

    def handle_result(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        cell_id = str(request.get("cell_id") or "")
        outcome = request.get("outcome")
        if not worker_id or not cell_id or not isinstance(outcome, dict):
            raise ValidationError(
                "result requires worker_id, cell_id and an outcome object"
            )
        if cell_id not in self._cells:
            raise ValidationError(f"unknown cell id {cell_id!r}")
        accepted = self.queue.complete(cell_id, worker_id)
        if accepted:
            with self._results_lock:
                self._results[cell_id] = outcome
            if self.queue.done:
                self._done_event.set()
        if self.verbose:  # pragma: no cover - cosmetic
            state = "merged" if accepted else "duplicate (discarded)"
            print(f"[coordinator] {cell_id} from {worker_id}: {state}")
        # Telling the worker that delivered the last result to stop right
        # here (instead of at its next lease poll) closes the window where
        # it would race the coordinator's teardown and burn its reconnect
        # backoff on a server that is gone.
        return {
            "accepted": accepted,
            "stop": self._draining or self._failure is not None or self.queue.done,
        }

    def handle_error(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "?")
        cell_id = str(request.get("cell_id") or "?")
        error = str(request.get("error") or "unknown error")
        # First failure wins; the grid aborts rather than retrying an
        # error that would reproduce deterministically on every worker.
        if self._failure is None:
            self._failure = (
                f"cell {cell_id!r} failed on worker {worker_id!r}: {error}"
            )
        self._done_event.set()
        return {"ok": True}

    def handle_heartbeat(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("heartbeat requires a worker_id")
        renewed = self.queue.heartbeat(worker_id)
        return {
            "renewed": renewed,
            "stop": self._draining or self._failure is not None or self.queue.done,
        }

    def handle_bye(self, request: dict) -> dict:
        worker_id = str(request.get("worker_id") or "")
        if not worker_id:
            raise ValidationError("bye requires a worker_id")
        released = self.queue.release(worker_id)
        self._workers.discard(worker_id)
        if self.verbose:  # pragma: no cover - cosmetic
            print(f"[coordinator] worker {worker_id} left, "
                  f"{released} lease(s) re-queued")
        return {"released": released}

    POST_ROUTES = {
        "/worker/register": handle_register,
        "/cell/lease": handle_lease,
        "/cell/result": handle_result,
        "/cell/error": handle_error,
        "/worker/heartbeat": handle_heartbeat,
        "/worker/bye": handle_bye,
    }

    # ------------------------------------------------------------ inspection
    def dataset_payload(self, name: str) -> dict | None:
        dataset = self._datasets.get(name)
        if dataset is None:
            return None
        return dataset_to_wire(dataset)

    def describe(self) -> dict:
        return {
            "protocol": PROTOCOL_VERSION,
            "queue": self.queue.counters(),
            "n_workers": len(self._workers),
            "draining": self._draining,
            "failed": self._failure is not None,
            "done": self.queue.done,
        }

    # ------------------------------------------------------------ collection
    def wait(
        self,
        *,
        timeout: float | None = None,
        poll: float = 0.25,
        watchdog=None,
    ) -> dict:
        """Block until every cell completed; returns ``{cell_id: outcome}``.

        ``outcome`` values are the raw wire payloads (decode with
        :func:`repro.distributed.messages.outcome_from_wire`).  Raises
        :class:`CellExecutionError` when a worker reported a failure,
        :class:`CoordinatorDrained` after :meth:`drain` once in-flight
        leases have finished or expired, and :class:`DistributedError` on
        ``timeout``.  ``watchdog`` (when given) runs every poll iteration
        and may raise to abort the wait — the runner uses it to detect a
        loopback pool whose workers all died.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if watchdog is not None:
                watchdog()
            if self._failure is not None:
                raise CellExecutionError(self._failure)
            if self.queue.done:
                with self._results_lock:
                    return dict(self._results)
            if self._draining:
                # Give in-flight cells a chance to land, then report how
                # far the grid got.
                self.queue.expire_overdue()
                if self.queue.n_leased == 0:
                    counters = self.queue.counters()
                    raise CoordinatorDrained(
                        "coordinator drained with "
                        f"{counters['n_completed']}/{counters['n_cells']} "
                        "cells completed",
                        n_completed=counters["n_completed"],
                        n_total=counters["n_cells"],
                    )
            else:
                # Keep expiring even when no worker is polling, so a grid
                # whose workers all died surfaces in the counters.
                self.queue.expire_overdue()
            if deadline is not None and time.monotonic() >= deadline:
                counters = self.queue.counters()
                raise DistributedError(
                    f"grid did not complete within {timeout:.1f}s "
                    f"({counters['n_completed']}/{counters['n_cells']} cells)"
                )
            self._done_event.wait(poll)
            self._done_event.clear()


@contextlib.contextmanager
def coordinator_signal_drain(coordinator: GridCoordinator):
    """Drain the coordinator gracefully on SIGINT/SIGTERM.

    Installed around blocking :meth:`GridCoordinator.wait` calls in CLI
    paths (only the main thread may set signal handlers; library callers in
    other threads simply do not use this).  The first signal switches the
    grid into drain mode — no new leases, in-flight cells finish, partial
    results stay mergeable; a second signal falls through to the previous
    handler (typically KeyboardInterrupt).
    """
    seen = threading.Event()

    def _drain(signum, frame):  # noqa: ARG001 - signal signature
        if seen.is_set():
            previous = previous_handlers.get(signum)
            if callable(previous):
                previous(signum, frame)
            return
        seen.set()
        coordinator.drain()

    previous_handlers = {}
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _drain)
    except ValueError:
        # Not the main thread: signals cannot be installed; run unguarded.
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)
