"""Exception hierarchy of the distributed experiment runner.

Everything derives from :class:`DistributedError` (itself a
:class:`~repro.exceptions.ReproError`), so callers can treat "the
distributed run failed" as one condition while the coordinator
distinguishes protocol garbage, remote execution failures and an
operator-requested drain.
"""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = [
    "DistributedError",
    "ProtocolError",
    "WorkerJoinError",
    "CellExecutionError",
    "DatasetIntegrityError",
    "CoordinatorDrained",
]


class DistributedError(ReproError, RuntimeError):
    """Base class for every distributed-runner failure."""


class ProtocolError(DistributedError, ValueError):
    """A coordinator/worker message is malformed or from an incompatible
    protocol version."""


class WorkerJoinError(DistributedError, ConnectionError):
    """A standby worker could not be dialed or refused to join the grid."""


class CellExecutionError(DistributedError):
    """A worker reported a failure the retry policy will not absorb.

    Worker *loss* is handled by lease expiry and re-queueing, and transient
    failures (OOM, flaky sockets — see
    :func:`repro.resilience.classify_failure`) are retried on another worker
    up to the coordinator's ``max_cell_retries``.  A deterministic error, or
    a transient one that exhausted its retries, would fail on every further
    attempt, so the coordinator aborts the grid and re-raises it with the
    remote traceback.
    """


class DatasetIntegrityError(DistributedError):
    """A dataset fetched from the coordinator failed its sha256 digest check.

    Classified *transient*: the corruption happened in transit or in the
    worker's memory, not in the cell — re-fetching on a retry (possibly on
    another worker) is expected to succeed.
    """


class CoordinatorDrained(DistributedError):
    """The coordinator was drained (SIGINT/SIGTERM) before the grid
    completed; carries how much of the grid had finished."""

    def __init__(self, message: str, *, n_completed: int = 0, n_total: int = 0):
        super().__init__(message)
        self.n_completed = n_completed
        self.n_total = n_total
