"""Exception hierarchy of the distributed experiment runner.

Everything derives from :class:`DistributedError` (itself a
:class:`~repro.exceptions.ReproError`), so callers can treat "the
distributed run failed" as one condition while the coordinator
distinguishes protocol garbage, remote execution failures and an
operator-requested drain.
"""

from __future__ import annotations

from repro.exceptions import ReproError

__all__ = [
    "DistributedError",
    "ProtocolError",
    "WorkerJoinError",
    "CellExecutionError",
    "CoordinatorDrained",
]


class DistributedError(ReproError, RuntimeError):
    """Base class for every distributed-runner failure."""


class ProtocolError(DistributedError, ValueError):
    """A coordinator/worker message is malformed or from an incompatible
    protocol version."""


class WorkerJoinError(DistributedError, ConnectionError):
    """A standby worker could not be dialed or refused to join the grid."""


class CellExecutionError(DistributedError):
    """A worker reported a (deterministic) failure while executing a cell.

    Worker *loss* is handled by lease expiry and re-queueing; an execution
    error, by contrast, would fail identically on every retry, so the
    coordinator aborts the grid and re-raises it with the remote traceback.
    """


class CoordinatorDrained(DistributedError):
    """The coordinator was drained (SIGINT/SIGTERM) before the grid
    completed; carries how much of the grid had finished."""

    def __init__(self, message: str, *, n_completed: int = 0, n_total: int = 0):
        super().__init__(message)
        self.n_completed = n_completed
        self.n_total = n_total
