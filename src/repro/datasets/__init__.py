"""Dataset substrate.

The paper evaluates on two suites:

* **Datasets I** — nine MSRA-MM 2.0 web-image feature sets (3 classes each,
  ~800-930 instances, 892/899 real-valued features).
* **Datasets II** — six small UCI sets (Haberman, QSAR biodegradation, SPECT
  Heart, Simulation Crashes, Breast Cancer Wisconsin, Iris).

Neither suite is redistributable/downloadable in this offline environment, so
this package ships *synthetic analogues* whose shape (instances, features,
classes, class imbalance) and difficulty match the originals; see DESIGN.md
for the substitution rationale.
"""

from repro.datasets.base import Dataset, DatasetSuite
from repro.datasets.msra_mm import (
    MSRA_MM_SPECS,
    load_msra_mm_dataset,
    load_msra_mm_suite,
)
from repro.datasets.preprocessing import (
    binarize,
    median_binarize,
    minmax_scale,
    standardize,
)
from repro.datasets.synthetic import (
    make_blobs,
    make_high_dimensional_mixture,
    make_overlapping_binary_clusters,
)
from repro.datasets.uci import UCI_SPECS, load_uci_dataset, load_uci_suite

__all__ = [
    "Dataset",
    "DatasetSuite",
    "make_blobs",
    "make_high_dimensional_mixture",
    "make_overlapping_binary_clusters",
    "MSRA_MM_SPECS",
    "load_msra_mm_dataset",
    "load_msra_mm_suite",
    "UCI_SPECS",
    "load_uci_dataset",
    "load_uci_suite",
    "standardize",
    "minmax_scale",
    "binarize",
    "median_binarize",
]
