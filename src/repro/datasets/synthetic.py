"""Synthetic data generators.

These generators produce the raw material for the MSRA-MM-like and UCI-like
analogue suites.  Two regimes matter for the paper:

* high-dimensional, weakly separable real-valued mixtures (datasets I): raw
  K-means accuracy should land around 0.40-0.55 so that the representation
  learned by a (sls)GRBM has room to help;
* low-dimensional overlapping clusters suitable for binarisation
  (datasets II) for the binary-visible slsRBM.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import check_random_state
from repro.utils.validation import check_positive_int

__all__ = [
    "make_blobs",
    "make_high_dimensional_mixture",
    "make_overlapping_binary_clusters",
]


def _split_counts(n_samples: int, weights: np.ndarray) -> np.ndarray:
    """Integer per-class counts summing exactly to ``n_samples``."""
    counts = np.floor(weights * n_samples).astype(int)
    remainder = n_samples - counts.sum()
    # Distribute the remainder to the largest fractional parts.
    fractions = weights * n_samples - counts
    for index in np.argsort(fractions)[::-1][:remainder]:
        counts[index] += 1
    return counts


def make_blobs(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    cluster_std: float = 1.0,
    center_spread: float = 5.0,
    weights: np.ndarray | None = None,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Isotropic Gaussian blobs.

    Parameters
    ----------
    cluster_std : float
        Standard deviation of every blob.
    center_spread : float
        Blob centres are drawn from ``Uniform(-center_spread, center_spread)``.
    weights : array-like of shape (n_classes,), optional
        Relative class sizes (normalised internally); uniform by default.

    Returns
    -------
    data : ndarray of shape (n_samples, n_features)
    labels : ndarray of shape (n_samples,)
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_classes = check_positive_int(n_classes, name="n_classes")
    rng = check_random_state(random_state)

    if weights is None:
        weights = np.full(n_classes, 1.0 / n_classes)
    else:
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
    counts = _split_counts(n_samples, weights)

    centers = rng.uniform(-center_spread, center_spread, size=(n_classes, n_features))
    data_parts = []
    label_parts = []
    for class_id, count in enumerate(counts):
        samples = centers[class_id] + cluster_std * rng.standard_normal(
            (count, n_features)
        )
        data_parts.append(samples)
        label_parts.append(np.full(count, class_id, dtype=int))
    data = np.vstack(data_parts)
    labels = np.concatenate(label_parts)

    permutation = rng.permutation(n_samples)
    return data[permutation], labels[permutation]


def make_high_dimensional_mixture(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    n_informative: int = 20,
    separation: float = 2.2,
    noise_std: float = 1.0,
    correlated_noise: float = 0.4,
    weights: np.ndarray | None = None,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Weakly separable high-dimensional mixture (MSRA-MM analogue).

    Class structure lives in a random ``n_informative``-dimensional subspace
    which is embedded into ``n_features`` dimensions by a random linear map;
    the remaining directions carry correlated noise.  Lowering ``separation``
    or raising ``noise_std`` makes the raw-space clustering harder.

    Returns
    -------
    data : ndarray of shape (n_samples, n_features)
        Non-negative real-valued features (shifted to mimic visual descriptor
        histograms).
    labels : ndarray of shape (n_samples,)
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_classes = check_positive_int(n_classes, name="n_classes")
    n_informative = min(check_positive_int(n_informative, name="n_informative"), n_features)
    rng = check_random_state(random_state)

    if weights is None:
        weights = np.full(n_classes, 1.0 / n_classes)
    else:
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
    counts = _split_counts(n_samples, weights)

    # Latent class centres in the informative subspace.
    latent_centers = separation * rng.standard_normal((n_classes, n_informative))
    latent_parts = []
    label_parts = []
    for class_id, count in enumerate(counts):
        latent = latent_centers[class_id] + rng.standard_normal((count, n_informative))
        latent_parts.append(latent)
        label_parts.append(np.full(count, class_id, dtype=int))
    latent = np.vstack(latent_parts)
    labels = np.concatenate(label_parts)

    # Random embedding into the ambient space plus correlated noise.
    embedding = rng.standard_normal((n_informative, n_features)) / np.sqrt(
        n_informative
    )
    data = latent @ embedding
    if correlated_noise > 0:
        low_rank = rng.standard_normal((n_samples, 5)) @ rng.standard_normal(
            (5, n_features)
        )
        data = data + correlated_noise * low_rank / np.sqrt(5)
    data = data + noise_std * rng.standard_normal((n_samples, n_features))

    # Histogram-like non-negativity: shift and softly rectify.
    data = data - data.min(axis=0, keepdims=True)

    permutation = rng.permutation(n_samples)
    return data[permutation], labels[permutation]


def make_overlapping_binary_clusters(
    n_samples: int,
    n_features: int,
    n_classes: int,
    *,
    flip_probability: float = 0.15,
    active_fraction: float = 0.4,
    weights: np.ndarray | None = None,
    random_state=None,
) -> tuple[np.ndarray, np.ndarray]:
    """Binary prototype clusters with bit-flip noise (UCI / slsRBM analogue).

    Each class has a random binary prototype with ``active_fraction`` of the
    bits set; samples copy the prototype and flip every bit independently with
    ``flip_probability``.  Larger flip probabilities produce heavier overlap.

    Returns
    -------
    data : ndarray of shape (n_samples, n_features) with values in {0, 1}
    labels : ndarray of shape (n_samples,)
    """
    n_samples = check_positive_int(n_samples, name="n_samples")
    n_features = check_positive_int(n_features, name="n_features")
    n_classes = check_positive_int(n_classes, name="n_classes")
    rng = check_random_state(random_state)

    if weights is None:
        weights = np.full(n_classes, 1.0 / n_classes)
    else:
        weights = np.asarray(weights, dtype=float)
        weights = weights / weights.sum()
    counts = _split_counts(n_samples, weights)

    prototypes = (rng.random((n_classes, n_features)) < active_fraction).astype(float)
    data_parts = []
    label_parts = []
    for class_id, count in enumerate(counts):
        base = np.tile(prototypes[class_id], (count, 1))
        flips = rng.random((count, n_features)) < flip_probability
        samples = np.abs(base - flips.astype(float))
        data_parts.append(samples)
        label_parts.append(np.full(count, class_id, dtype=int))
    data = np.vstack(data_parts)
    labels = np.concatenate(label_parts)

    permutation = rng.permutation(n_samples)
    return data[permutation], labels[permutation]
