"""Feature preprocessing used before RBM training.

* GRBM / slsGRBM expect zero-mean, unit-variance real-valued inputs (the
  paper uses noise-free Gaussian linear visible units with unit variance).
* RBM / slsRBM expect values in ``[0, 1]`` (interpreted as Bernoulli
  probabilities); the UCI-like datasets are min-max scaled or binarised.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_array

__all__ = ["standardize", "minmax_scale", "binarize", "median_binarize"]


def standardize(data, *, epsilon: float = 1e-8) -> np.ndarray:
    """Zero-mean, unit-variance scaling per feature.

    Constant features (zero variance) are left centred at zero rather than
    producing NaNs.
    """
    data = check_array(data, name="data")
    mean = data.mean(axis=0, keepdims=True)
    std = data.std(axis=0, keepdims=True)
    std = np.where(std < epsilon, 1.0, std)
    return (data - mean) / std


def minmax_scale(data, *, feature_range: tuple[float, float] = (0.0, 1.0)) -> np.ndarray:
    """Scale each feature linearly to ``feature_range``.

    Constant features are mapped to the midpoint of the range.
    """
    low, high = feature_range
    if high <= low:
        raise ValueError(f"invalid feature_range {feature_range}")
    data = check_array(data, name="data")
    minimum = data.min(axis=0, keepdims=True)
    maximum = data.max(axis=0, keepdims=True)
    span = maximum - minimum
    constant = span == 0
    span = np.where(constant, 1.0, span)
    scaled = (data - minimum) / span
    scaled = np.where(constant, 0.5, scaled)
    return low + scaled * (high - low)


def binarize(data, *, threshold: float = 0.5) -> np.ndarray:
    """Threshold values to ``{0, 1}`` (strictly greater than ``threshold``)."""
    data = check_array(data, name="data")
    return (data > threshold).astype(float)


def median_binarize(data) -> np.ndarray:
    """Binarise each feature against its own median.

    This is the conventional way to turn heterogeneous UCI attributes into
    Bernoulli visible units while keeping roughly balanced activation rates.
    """
    data = check_array(data, name="data")
    medians = np.median(data, axis=0, keepdims=True)
    return (data > medians).astype(float)


def clip_unit_interval(data) -> np.ndarray:
    """Clip values into ``[0, 1]`` (used for Bernoulli visible probabilities)."""
    data = check_array(data, name="data")
    return np.clip(data, 0.0, 1.0)
