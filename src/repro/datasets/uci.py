"""Simulated UCI suite ("datasets II", Table III of the paper).

The six UCI datasets are public, but this environment has no network access,
so each is replaced with a synthetic analogue of identical shape (instances,
features, classes) and comparable difficulty:

* hard, heavily overlapping 2-class sets (Haberman, SPECT, Simulation
  Crashes) where raw accuracy sits near 0.55-0.65;
* moderately separable sets (QSAR, Breast Cancer Wisconsin);
* one easy 3-class set (Iris analogue) where accuracy approaches 0.9+.

The slsRBM experiments binarise these features (median binarisation), so the
analogues are generated directly as noisy binary prototypes plus a few
real-valued nuisance dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.base import Dataset, DatasetSuite
from repro.datasets.synthetic import make_blobs, make_overlapping_binary_clusters
from repro.exceptions import DatasetError
from repro.utils.rng import check_random_state

__all__ = ["UCI_SPECS", "UciSpec", "load_uci_dataset", "load_uci_suite"]


@dataclass(frozen=True)
class UciSpec:
    """Shape specification of one UCI-like dataset (paper Table III)."""

    number: int
    name: str
    abbreviation: str
    n_classes: int
    n_samples: int
    n_features: int
    #: "binary" -> noisy binary prototypes, "blobs" -> Gaussian blobs
    generator: str
    #: overlap knob: flip probability (binary) or cluster std (blobs)
    difficulty: float
    weights: tuple[float, ...] = (0.6, 0.4)


#: Table III of the paper: the six UCI datasets.
UCI_SPECS: tuple[UciSpec, ...] = (
    UciSpec(1, "Haberman's Survival", "HS", 2, 306, 3, "blobs", 3.4, (0.73, 0.27)),
    UciSpec(2, "QSAR biodegradation", "QB", 2, 1055, 41, "binary", 0.40, (0.66, 0.34)),
    UciSpec(3, "SPECT Heart", "SH", 2, 267, 22, "binary", 0.42, (0.79, 0.21)),
    UciSpec(4, "Simulation Crashes", "SC", 2, 540, 18, "binary", 0.40, (0.91, 0.09)),
    UciSpec(5, "Breast Cancer Wisconsin", "BCW", 2, 569, 32, "binary", 0.30, (0.63, 0.37)),
    UciSpec(6, "Iris", "IR", 3, 150, 4, "blobs", 1.1, (0.34, 0.33, 0.33)),
)

_BY_ABBREVIATION = {spec.abbreviation: spec for spec in UCI_SPECS}


def _generate(spec: UciSpec, *, scale: float, random_state) -> Dataset:
    rng = check_random_state(random_state)
    n_samples = max(spec.n_classes + 1, int(round(spec.n_samples * scale)))
    n_features = max(2, int(round(spec.n_features * scale))) if scale < 1 else spec.n_features
    weights = np.asarray(spec.weights[: spec.n_classes])

    if spec.generator == "binary":
        data, labels = make_overlapping_binary_clusters(
            n_samples,
            n_features,
            spec.n_classes,
            flip_probability=spec.difficulty,
            active_fraction=0.4,
            weights=weights,
            random_state=rng,
        )
    elif spec.generator == "blobs":
        data, labels = make_blobs(
            n_samples,
            n_features,
            spec.n_classes,
            cluster_std=spec.difficulty,
            center_spread=2.5,
            weights=weights,
            random_state=rng,
        )
    else:  # pragma: no cover - guarded by the fixed spec table
        raise DatasetError(f"unknown generator {spec.generator!r}")

    return Dataset(
        name=spec.name,
        abbreviation=spec.abbreviation,
        data=data,
        labels=labels,
        metadata={
            "suite": "datasets-II (UCI analogue)",
            "paper_table": "III",
            "number": spec.number,
            "generator": spec.generator,
            "scale": scale,
            "synthetic": True,
        },
    )


def load_uci_dataset(
    abbreviation: str, *, scale: float = 1.0, random_state: int | None = 0
) -> Dataset:
    """Load one UCI-like dataset by its Table III abbreviation.

    Parameters
    ----------
    abbreviation : str
        One of ``HS, QB, SH, SC, BCW, IR``.
    scale : float, default 1.0
        Multiplier on the instance count (and feature count when < 1) for
        fast tests.
    random_state : int or None, default 0
        Seed; the default makes repeated loads identical.
    """
    key = abbreviation.strip().upper()
    if key not in _BY_ABBREVIATION:
        raise DatasetError(
            f"unknown UCI dataset {abbreviation!r}; available: {sorted(_BY_ABBREVIATION)}"
        )
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    spec = _BY_ABBREVIATION[key]
    seed = None if random_state is None else int(random_state) + 2000 * spec.number
    return _generate(spec, scale=scale, random_state=seed)


def load_uci_suite(*, scale: float = 1.0, random_state: int | None = 0) -> DatasetSuite:
    """Load all six UCI-like datasets as a :class:`DatasetSuite`."""
    datasets = [
        load_uci_dataset(spec.abbreviation, scale=scale, random_state=random_state)
        for spec in UCI_SPECS
    ]
    return DatasetSuite("datasets-II", datasets)
