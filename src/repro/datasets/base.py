"""Dataset containers used throughout the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.exceptions import DatasetError
from repro.utils.validation import check_array, check_labels

__all__ = ["Dataset", "DatasetSuite"]


@dataclass(frozen=True)
class Dataset:
    """A labelled dataset: feature matrix, ground-truth classes and metadata.

    Attributes
    ----------
    name : str
        Full dataset name (e.g. ``"Breast Cancer Wisconsin"``).
    abbreviation : str
        Short code used in the paper's tables (e.g. ``"BCW"``).
    data : ndarray of shape (n_samples, n_features)
    labels : ndarray of shape (n_samples,)
        Ground-truth class per sample (used only for evaluation).
    metadata : dict
        Free-form provenance information (generator parameters, suite name).
    """

    name: str
    abbreviation: str
    data: np.ndarray
    labels: np.ndarray
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        data = check_array(self.data, name=f"{self.name}.data")
        labels = check_labels(
            self.labels, name=f"{self.name}.labels", n_samples=data.shape[0]
        )
        object.__setattr__(self, "data", data)
        object.__setattr__(self, "labels", labels)

    @property
    def n_samples(self) -> int:
        return int(self.data.shape[0])

    @property
    def n_features(self) -> int:
        return int(self.data.shape[1])

    @property
    def n_classes(self) -> int:
        return int(np.unique(self.labels).shape[0])

    def summary(self) -> dict[str, int | str]:
        """One-row summary matching the paper's Tables II / III columns."""
        return {
            "name": self.name,
            "abbreviation": self.abbreviation,
            "classes": self.n_classes,
            "instances": self.n_samples,
            "features": self.n_features,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Dataset({self.abbreviation}: {self.n_samples} x {self.n_features}, "
            f"{self.n_classes} classes)"
        )


class DatasetSuite:
    """Ordered collection of datasets (the paper's "datasets I" / "datasets II")."""

    def __init__(self, name: str, datasets: list[Dataset]) -> None:
        if not datasets:
            raise DatasetError("a DatasetSuite needs at least one dataset")
        self.name = name
        self._datasets = list(datasets)
        self._by_abbreviation = {d.abbreviation: d for d in datasets}
        if len(self._by_abbreviation) != len(datasets):
            raise DatasetError("dataset abbreviations within a suite must be unique")

    def __len__(self) -> int:
        return len(self._datasets)

    def __iter__(self) -> Iterator[Dataset]:
        return iter(self._datasets)

    def __getitem__(self, key: int | str) -> Dataset:
        if isinstance(key, str):
            try:
                return self._by_abbreviation[key]
            except KeyError:
                raise DatasetError(
                    f"unknown dataset {key!r} in suite {self.name!r}; "
                    f"available: {sorted(self._by_abbreviation)}"
                ) from None
        return self._datasets[key]

    @property
    def abbreviations(self) -> list[str]:
        return [d.abbreviation for d in self._datasets]

    def summary_table(self) -> list[dict[str, int | str]]:
        """Rows reproducing the paper's dataset summary tables (II / III)."""
        return [
            {"No.": index + 1, **dataset.summary()}
            for index, dataset in enumerate(self._datasets)
        ]
