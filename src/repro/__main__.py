"""``python -m repro`` dispatches to :func:`repro.cli.main`."""

import sys

from repro.cli import main

sys.exit(main())
