"""Resilience layer: crash recovery, failure policy and fault injection.

Three pillars, each usable on its own:

* :mod:`repro.resilience.journal` — :class:`GridJournal`, an append-only
  JSONL write-ahead journal of completed grid cells.  A coordinator given a
  journal survives its own death: a restarted run replays the journal and
  re-queues only the cells that never landed;
* :mod:`repro.resilience.policy` — :func:`classify_failure` (transient vs
  deterministic worker errors), :class:`RetryPolicy` (bounded retries with
  exponential backoff) and :class:`CircuitBreaker` (per-worker quarantine
  after consecutive failures);
* :mod:`repro.resilience.faults` — :class:`FaultProxy`, a stdlib TCP relay
  that injects latency, connection resets, dropped/duplicated requests and
  HTTP 500s from a deterministic seeded schedule, so the recovery paths
  above are *provable* in CI rather than assumed.
"""

from repro.resilience.faults import FaultDecision, FaultProxy, FaultSchedule, ScriptedSchedule
from repro.resilience.journal import GridJournal, JournalError, grid_fingerprint
from repro.resilience.policy import (
    TRANSIENT_ERROR_KINDS,
    CircuitBreaker,
    RetryPolicy,
    classify_failure,
)

__all__ = [
    "GridJournal",
    "JournalError",
    "grid_fingerprint",
    "classify_failure",
    "TRANSIENT_ERROR_KINDS",
    "RetryPolicy",
    "CircuitBreaker",
    "FaultProxy",
    "FaultSchedule",
    "ScriptedSchedule",
    "FaultDecision",
]
