"""Failure policy: transient-vs-deterministic classification, retries and
per-worker quarantine.

The coordinator used to abort the whole grid on the *first* worker-reported
error.  That is the right call for deterministic failures — a bug in a cell
reproduces on every worker, so retrying burns the cluster for nothing — but
wrong for transient ones: an OOM kill, a flaky socket or a worker dying
mid-cell say nothing about the cell itself.  This module is the policy that
tells them apart and bounds the recovery:

* :func:`classify_failure` — transient or deterministic, from the
  exception's class name (reported over the wire) plus message heuristics;
* :class:`RetryPolicy` — how often a transient cell may be retried and with
  how much backoff between attempts;
* :class:`CircuitBreaker` — a worker that keeps failing cells *other
  workers then complete fine* is a bad host (broken BLAS, half the RAM,
  overheating), not bad luck; after ``threshold`` consecutive failures it is
  quarantined and no longer leased to, instead of churning the queue
  forever.

Everything here is deterministic and clock-injectable, so the retry state
machine is testable without real time or real failures.
"""

from __future__ import annotations

import threading

from repro.exceptions import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "TRANSIENT_ERROR_KINDS",
    "classify_failure",
    "RetryPolicy",
    "CircuitBreaker",
]

#: Exception class names treated as transient when a worker reports them.
#: MemoryError: the cell may simply have landed next to a fat neighbour;
#: OSError and subclasses: sockets, disks and pipes fail independently of
#: the cell's math; TimeoutError likewise; WireError / DatasetIntegrityError
#: are this codebase's own transport/corruption failures.
TRANSIENT_ERROR_KINDS = frozenset(
    {
        "MemoryError",
        "OSError",
        "IOError",
        "TimeoutError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "ConnectionAbortedError",
        "BrokenPipeError",
        "InterruptedError",
        "WireError",
        "DatasetIntegrityError",
    }
)

#: Message fragments that mark an error transient regardless of its kind
#: (third-party libraries often wrap OS-level failures in their own types).
_TRANSIENT_MESSAGE_MARKERS = (
    "timed out",
    "timeout",
    "connection reset",
    "connection refused",
    "broken pipe",
    "temporarily unavailable",
    "out of memory",
)


def classify_failure(kind: str | None, message: str = "") -> bool:
    """``True`` when a worker-reported failure is worth retrying elsewhere.

    ``kind`` is the remote exception's class name (``type(exc).__name__``
    as sent by the worker); ``message`` is its rendered text.  Unknown kinds
    default to **deterministic** — the safe direction: a mis-classified
    deterministic error would be retried ``max_cell_retries`` times and
    still abort the grid, but the old fail-fast contract must not silently
    swallow real bugs behind retries.
    """
    if kind and str(kind) in TRANSIENT_ERROR_KINDS:
        return True
    lowered = str(message).lower()
    return any(marker in lowered for marker in _TRANSIENT_MESSAGE_MARKERS)


class RetryPolicy:
    """Bounded retry schedule for transient cell failures.

    Parameters
    ----------
    max_cell_retries : int, default 2
        Retries *per cell* after its first failure; attempt ``k`` (0-based
        failure count) is allowed while ``k < max_cell_retries``.  0 turns
        retries off — every failure aborts, the pre-resilience behaviour.
    backoff_base : float, default 0.5
        Delay before the first retry, doubled per subsequent failure.
    backoff_cap : float, default 30.0
        Upper bound on any single delay.
    """

    def __init__(
        self,
        max_cell_retries: int = 2,
        *,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
    ) -> None:
        if max_cell_retries < 0:
            raise ValidationError(
                f"max_cell_retries must be >= 0, got {max_cell_retries}"
            )
        if backoff_base < 0 or backoff_cap < 0:
            raise ValidationError("backoff_base and backoff_cap must be >= 0")
        self.max_cell_retries = int(max_cell_retries)
        self.backoff_base = float(backoff_base)
        self.backoff_cap = float(backoff_cap)

    def allows(self, n_failures: int) -> bool:
        """Whether a cell that failed ``n_failures`` times may retry."""
        return n_failures <= self.max_cell_retries

    def delay(self, n_failures: int) -> float:
        """Backoff before the retry following the ``n_failures``-th failure."""
        if n_failures <= 0:
            return 0.0
        return min(self.backoff_cap, self.backoff_base * 2 ** (n_failures - 1))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RetryPolicy(max_cell_retries={self.max_cell_retries}, "
            f"backoff_base={self.backoff_base}, backoff_cap={self.backoff_cap})"
        )


class CircuitBreaker:
    """Per-worker consecutive-failure counter with quarantine.

    A worker accumulates one strike per failed cell and resets to zero on
    any success; at ``threshold`` strikes it trips into quarantine and stays
    there for the rest of the grid (workers are cheap — restarting one gives
    it a fresh identity and a clean slate).  Thread-safe: the coordinator's
    handler threads record outcomes concurrently.
    """

    def __init__(self, threshold: int = 3) -> None:
        self.threshold = check_positive_int(threshold, name="threshold")
        self._strikes: dict[str, int] = {}
        self._quarantined: set[str] = set()
        self._lock = threading.Lock()

    def record_failure(self, worker_id: str) -> bool:
        """One strike against ``worker_id``; returns True when it *newly*
        trips into quarantine."""
        worker_id = str(worker_id)
        with self._lock:
            if worker_id in self._quarantined:
                return False
            strikes = self._strikes.get(worker_id, 0) + 1
            self._strikes[worker_id] = strikes
            if strikes >= self.threshold:
                self._quarantined.add(worker_id)
                return True
            return False

    def record_success(self, worker_id: str) -> None:
        """A completed cell clears the worker's strike count."""
        with self._lock:
            self._strikes.pop(str(worker_id), None)

    def is_quarantined(self, worker_id: str) -> bool:
        with self._lock:
            return str(worker_id) in self._quarantined

    @property
    def quarantined(self) -> list[str]:
        """Sorted ids of every quarantined worker."""
        with self._lock:
            return sorted(self._quarantined)

    def strikes(self, worker_id: str) -> int:
        with self._lock:
            return self._strikes.get(str(worker_id), 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CircuitBreaker(threshold={self.threshold}, "
            f"quarantined={self.quarantined})"
        )
