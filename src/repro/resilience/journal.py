"""Crash-safe grid journal: an append-only JSONL write-ahead log.

The distributed coordinator is the single point of total loss of a grid —
workers are expendable (lease expiry re-queues their cells), but a dead
coordinator used to forfeit every completed cell.  :class:`GridJournal`
closes that hole with the classic write-ahead discipline:

* the first line is a **header** carrying a fingerprint of the grid (cell
  descriptors, runner settings and the content digests of every dataset), so
  a journal can never be replayed into a *different* grid;
* every accepted cell result is appended as one JSON line and **fsync'd**
  before the acknowledgement reaches the worker — once a worker has been
  told "accepted", the result survives a coordinator SIGKILL;
* worker-reported failures are journalled too (``type: "error"``) for the
  post-mortem, but replay skips them — a failed cell must re-execute.

Replay is **torn-tail tolerant**: a crash can leave the final line
half-written (JSONL appends are not atomic), so replay stops at the first
undecodable line instead of refusing the whole journal.  Every line *before*
the tear was fsync'd in order, so nothing else can be damaged.

Why JSONL and not a binary WAL: the payloads are the exact wire outcomes
(shortest-repr JSON floats), so a replayed cell is bit-identical to the one
the worker computed — the merged table after a crash+resume matches the
sequential run to the last bit.  A human can also read the journal with
``head`` when a grid went wrong.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from repro.exceptions import ReproError

__all__ = ["JournalError", "GridJournal", "grid_fingerprint"]

#: Bumped on any incompatible journal layout change.
JOURNAL_VERSION = 1


class JournalError(ReproError):
    """The journal cannot be used: fingerprint mismatch, a corrupt header,
    or an attempt to resume from a journal that does not exist."""


def grid_fingerprint(cells: list[dict], settings: dict, datasets: dict | None = None) -> str:
    """Deterministic identity of a grid: cells + settings + dataset digests.

    Two runs share a fingerprint iff replaying one's journal into the other
    is safe: same cell descriptors in the same order, same runner settings
    (``artifact_dir`` excluded — it is a warm-start cache hint that does not
    affect results), and bitwise-identical dataset matrices.  ``datasets``
    maps ``abbreviation -> Dataset``; pass None to fingerprint cells and
    settings only.
    """
    payload = {
        "cells": cells,
        "settings": {
            key: value for key, value in settings.items() if key != "artifact_dir"
        },
    }
    digest = hashlib.sha256()
    digest.update(
        json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
    )
    if datasets:
        from repro.distributed.messages import dataset_digest

        for name in sorted(datasets):
            digest.update(name.encode("utf-8"))
            digest.update(dataset_digest(datasets[name]).encode("ascii"))
    return digest.hexdigest()


class GridJournal:
    """Append-only JSONL journal of one grid's completed (and failed) cells.

    Parameters
    ----------
    path : str or Path
        Journal file; parent directories are created.
    fingerprint : str
        The grid's :func:`grid_fingerprint`.  A fresh journal writes it into
        the header; a resumed journal refuses to replay when it differs.
    resume : bool, default False
        ``True`` replays an existing journal (the file must exist) and
        appends to it; ``False`` truncates and starts a new journal.

    Replayed outcomes are available as :attr:`replayed` (``cell_id ->
    outcome`` wire payloads).  All writes are serialised by an internal
    lock — the coordinator's handler threads record results concurrently.
    """

    def __init__(
        self, path: str | Path, *, fingerprint: str, resume: bool = False
    ) -> None:
        self.path = Path(path)
        self.fingerprint = str(fingerprint)
        self.replayed: dict[str, dict] = {}
        self.n_torn_lines = 0
        self._lock = threading.Lock()
        self._file = None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume:
            if not self.path.is_file():
                raise JournalError(
                    f"cannot resume: journal {self.path} does not exist"
                )
            self.replayed = self._replay()
            self._file = open(self.path, "a", encoding="utf-8")
        else:
            self._file = open(self.path, "w", encoding="utf-8")
            self._append(
                {
                    "type": "header",
                    "version": JOURNAL_VERSION,
                    "fingerprint": self.fingerprint,
                }
            )

    # ------------------------------------------------------------------ write
    def _append(self, record: dict) -> None:
        """One fsync'd JSON line (caller does not hold the lock)."""
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            if self._file is None:
                raise JournalError(f"journal {self.path} is closed")
            self._file.write(line)
            self._file.flush()
            os.fsync(self._file.fileno())

    def record_result(self, cell_id: str, outcome: dict) -> None:
        """Journal an accepted cell result (fsync'd before returning).

        Called *before* the worker's completion is acknowledged, so an
        acknowledged cell is always recoverable.
        """
        self._append(
            {"type": "cell", "cell_id": str(cell_id), "outcome": outcome}
        )

    def record_error(
        self, cell_id: str, *, worker_id: str, kind: str, transient: bool
    ) -> None:
        """Journal a worker-reported failure (skipped on replay)."""
        self._append(
            {
                "type": "error",
                "cell_id": str(cell_id),
                "worker_id": str(worker_id),
                "kind": str(kind),
                "transient": bool(transient),
            }
        )

    # ----------------------------------------------------------------- replay
    def _replay(self) -> dict[str, dict]:
        """Parse the journal: header check, then the completed cells.

        Tolerates a torn final line (the crash may have interrupted an
        append mid-line); every earlier line was fsync'd before any later
        one, so the first undecodable line marks the end of trustworthy
        history.
        """
        outcomes: dict[str, dict] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        if not lines:
            raise JournalError(f"journal {self.path} is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise JournalError(
                f"journal {self.path} has an undecodable header: {exc}"
            ) from exc
        if not isinstance(header, dict) or header.get("type") != "header":
            raise JournalError(
                f"journal {self.path} does not start with a header record"
            )
        if header.get("version") != JOURNAL_VERSION:
            raise JournalError(
                f"journal {self.path} is version {header.get('version')!r}; "
                f"this build reads version {JOURNAL_VERSION}"
            )
        found = header.get("fingerprint")
        if found != self.fingerprint:
            raise JournalError(
                f"journal {self.path} belongs to a different grid "
                f"(fingerprint {str(found)[:12]}..., expected "
                f"{self.fingerprint[:12]}...); refusing to merge foreign "
                "results — delete the journal or drop --resume"
            )
        for index, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Torn tail: the crash interrupted this append.  Everything
                # before it is intact (fsync ordering), so stop here.
                self.n_torn_lines = len(lines) - index + 1
                break
            if not isinstance(record, dict):
                self.n_torn_lines = len(lines) - index + 1
                break
            if record.get("type") == "cell":
                outcome = record.get("outcome")
                cell_id = record.get("cell_id")
                if isinstance(outcome, dict) and cell_id:
                    # Last write wins (a duplicate can only carry the
                    # identical payload — completions are idempotent).
                    outcomes[str(cell_id)] = outcome
            # "error" and unknown record types are post-mortem data only.
        return outcomes

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "GridJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridJournal(path={str(self.path)!r}, "
            f"replayed={len(self.replayed)})"
        )
