"""Declarative component registry: one spec format for every estimator.

Every public component — clusterers, RBM variants, preprocessors, the
encoding framework and the pipelines — is registered here under a
``(kind, name)`` key.  A *spec* is a JSON-friendly description of one
configured component::

    {"kind": "clusterer", "type": "kmeans", "params": {"n_clusters": 3}}

``kind`` may be omitted when the type name is unambiguous, ``params`` may be
omitted for defaults, and a bare string (``"kmeans"``) is shorthand for a
spec with no parameters.  Parameter values that are themselves specs (dicts
with a ``"type"`` key, or ``["name", spec]`` pairs inside lists) are built
recursively, so nested estimators — pipeline steps, stacked encoders — are
expressible as plain JSON.  Configs, artifact bundles and experiment grids
all use this one format.

Registration is *lazy*: the table below names classes by import path, so
importing :mod:`repro.registry` pulls in no heavy modules and no import
cycles; a class is resolved on first use.

Examples
--------
>>> from repro import registry
>>> registry.build({"type": "kmeans", "params": {"n_clusters": 3}})
KMeans(...)
>>> registry.build("dp")
DensityPeaks(...)
>>> registry.available("model")
('grbm', 'rbm', 'sls_grbm', 'sls_rbm')
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "ComponentRegistry",
    "REGISTRY",
    "register",
    "get_class",
    "build",
    "build_clusterer",
    "available",
    "kinds",
    "spec_of",
]


@dataclass
class _Entry:
    """One registered component (class resolved lazily from its import path)."""

    kind: str
    name: str
    module: str
    attr: str
    aliases: tuple[str, ...] = ()
    _cls: type | None = field(default=None, repr=False)

    def resolve(self) -> type:
        if self._cls is None:
            self._cls = getattr(importlib.import_module(self.module), self.attr)
        return self._cls


def _jsonable(value):
    """Convert one parameter value to a JSON-friendly representation."""
    if isinstance(value, np.dtype):
        return value.name
    if isinstance(value, (np.random.Generator, np.random.BitGenerator)):
        # A live generator cannot be round-tripped through JSON; specs drop
        # it to None, exactly like BaseRBM.get_config does for persistence.
        return None
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "as_dict"):  # FrameworkConfig and friends
        return _jsonable(value.as_dict())
    return value


class ComponentRegistry:
    """Typed mapping of ``(kind, name)`` to estimator classes.

    Components are usually registered declaratively by import path (see the
    table at the bottom of this module) but :meth:`register` also accepts a
    class directly, including as a decorator::

        @REGISTRY.register("clusterer", "dbscan")
        class DBSCAN(BaseClusterer): ...
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], _Entry] = {}
        self._alias_index: dict[str, tuple[str, str]] = {}

    # ------------------------------------------------------------ registration
    def register(
        self,
        kind: str,
        name: str,
        component: type | str | None = None,
        *,
        aliases: tuple[str, ...] = (),
        overwrite: bool = False,
    ):
        """Register a component class under ``(kind, name)``.

        ``component`` is either a class, an ``"import.path:ClassName"``
        string (resolved lazily), or omitted to use the method as a class
        decorator.  ``aliases`` are alternative names accepted by
        :meth:`build` and :meth:`get_class`.
        """
        if component is None:
            def decorator(cls):
                self.register(kind, name, cls, aliases=aliases, overwrite=overwrite)
                return cls

            return decorator

        key = (str(kind), str(name).lower())
        if key in self._entries and not overwrite:
            raise ValidationError(
                f"component {key[1]!r} is already registered under kind {kind!r}"
            )
        if isinstance(component, str):
            module, _, attr = component.partition(":")
            if not module or not attr:
                raise ValidationError(
                    f"component path must look like 'module:Class', got {component!r}"
                )
            entry = _Entry(kind=key[0], name=key[1], module=module, attr=attr,
                           aliases=tuple(a.lower() for a in aliases))
        else:
            entry = _Entry(
                kind=key[0],
                name=key[1],
                module=component.__module__,
                attr=component.__qualname__,
                aliases=tuple(a.lower() for a in aliases),
                _cls=component,
            )
        self._entries[key] = entry
        for alias in (key[1], *entry.aliases):
            self._alias_index[f"{key[0]}/{alias}"] = key
        return component

    # ------------------------------------------------------------------ lookup
    def _resolve_key(self, name: str, kind: str | None) -> tuple[str, str]:
        token = str(name).strip().lower()
        if "/" in token and kind is None:
            kind, _, token = token.partition("/")
        if kind is not None:
            key = self._alias_index.get(f"{kind}/{token}")
            if key is None:
                raise ValidationError(
                    f"unknown {kind} component {name!r}; "
                    f"available: {sorted(self.available(kind))}"
                )
            return key
        matches = {
            key for alias, key in self._alias_index.items()
            if alias.split("/", 1)[1] == token
        }
        if not matches:
            raise ValidationError(
                f"unknown component {name!r}; available: "
                + ", ".join(
                    f"{k}/{n}" for k, n in sorted(self._entries)
                )
            )
        if len(matches) > 1:
            raise ValidationError(
                f"component name {name!r} is ambiguous across kinds "
                f"{sorted(key[0] for key in matches)}; qualify it as "
                f"'<kind>/{token}' or pass kind="
            )
        return next(iter(matches))

    def get_class(self, name: str, *, kind: str | None = None) -> type:
        """The registered class for ``name`` (optionally scoped by ``kind``)."""
        return self._entries[self._resolve_key(name, kind)].resolve()

    def kind_of(self, estimator_or_class) -> tuple[str, str]:
        """The ``(kind, canonical_name)`` a class (or instance) is registered
        under."""
        cls = (
            estimator_or_class
            if isinstance(estimator_or_class, type)
            else type(estimator_or_class)
        )
        for key, entry in self._entries.items():
            if entry._cls is cls or (
                entry.module == cls.__module__ and entry.attr == cls.__qualname__
            ):
                return key
        raise ValidationError(f"{cls.__name__} is not a registered component")

    def available(self, kind: str | None = None):
        """Canonical component names of one kind, or ``{kind: names}`` for all."""
        if kind is None:
            table: dict[str, tuple[str, ...]] = {}
            for entry_kind, name in sorted(self._entries):
                table.setdefault(entry_kind, ())
                table[entry_kind] += (name,)
            return table
        names = tuple(
            sorted(name for entry_kind, name in self._entries if entry_kind == kind)
        )
        if not names:
            raise ValidationError(
                f"unknown component kind {kind!r}; kinds: {sorted(self.kinds())}"
            )
        return names

    def kinds(self) -> tuple[str, ...]:
        """All registered component kinds."""
        return tuple(sorted({kind for kind, _ in self._entries}))

    # ------------------------------------------------------------------- build
    def build(self, spec, *, kind: str | None = None, **overrides):
        """Instantiate a component from its spec.

        Parameters
        ----------
        spec : str or dict
            A component name, or a dict with ``"type"`` and optional
            ``"kind"`` / ``"params"`` entries.  Parameter values that are
            themselves specs are built recursively.
        kind : str, optional
            Restrict the lookup to one component kind (needed only when a
            name exists under several kinds).
        **overrides
            Parameters merged over the spec's ``params``.
        """
        if isinstance(spec, str):
            spec = {"type": spec}
        if not isinstance(spec, dict):
            raise ValidationError(
                f"spec must be a name or a dict, got {type(spec).__name__}"
            )
        if "type" not in spec:
            raise ValidationError(f"spec {spec!r} has no 'type' entry")
        extra = set(spec) - {"type", "kind", "params", "name"}
        if extra:
            raise ValidationError(
                f"unknown spec entries {sorted(extra)}; expected "
                "'type', 'kind', 'params'"
            )
        cls = self.get_class(spec["type"], kind=spec.get("kind", kind))
        params = dict(spec.get("params") or {})
        params.update(overrides)
        built = {key: self._build_value(value) for key, value in params.items()}
        return cls(**built)

    def _build_value(self, value):
        """Recursively build nested specs inside a parameter value."""
        if isinstance(value, dict) and "type" in value:
            return self.build(value)
        if isinstance(value, (list, tuple)):
            items = []
            for item in value:
                if (
                    isinstance(item, (list, tuple))
                    and len(item) == 2
                    and isinstance(item[0], str)
                    and isinstance(item[1], dict)
                    and "type" in item[1]
                ):
                    items.append((item[0], self.build(item[1])))
                else:
                    items.append(self._build_value(item))
            return type(value)(items) if isinstance(value, tuple) else items
        return value

    # ------------------------------------------------------------------- specs
    def spec_of(self, estimator, *, include_kind: bool = True) -> dict:
        """The JSON-friendly spec reproducing ``estimator`` (unfitted).

        Inverse of :meth:`build`: ``build(spec_of(e))`` constructs an
        estimator with identical parameters.
        """
        kind, name = self.kind_of(estimator)
        params = {}
        for key, value in estimator.get_params(deep=False).items():
            params[key] = self._spec_value(value)
        spec = {"type": name, "params": params}
        if include_kind:
            spec = {"kind": kind, **spec}
        return spec

    def _spec_value(self, value):
        if hasattr(value, "get_params") and not isinstance(value, type):
            try:
                return self.spec_of(value, include_kind=False)
            except ValidationError:
                return value
        if isinstance(value, (list, tuple)):
            items = []
            for item in value:
                if (
                    isinstance(item, tuple)
                    and len(item) == 2
                    and isinstance(item[0], str)
                    and hasattr(item[1], "get_params")
                ):
                    items.append([item[0], self._spec_value(item[1])])
                else:
                    items.append(self._spec_value(item))
            return items
        return _jsonable(value)


#: The process-wide default registry with every built-in component.
REGISTRY = ComponentRegistry()

_BUILTIN_COMPONENTS = (
    # kind, name, import path, aliases
    ("clusterer", "kmeans", "repro.clustering.kmeans:KMeans", ("k-means",)),
    ("clusterer", "minibatch_kmeans", "repro.clustering.minibatch_kmeans:MiniBatchKMeans",
     ("mbkmeans", "mini-batch-k-means")),
    ("clusterer", "ap", "repro.clustering.affinity_propagation:AffinityPropagation",
     ("affinity_propagation",)),
    ("clusterer", "dp", "repro.clustering.density_peaks:DensityPeaks",
     ("density_peaks",)),
    ("clusterer", "agglomerative", "repro.clustering.hierarchical:AgglomerativeClustering",
     ("hierarchical",)),
    ("clusterer", "spectral", "repro.clustering.spectral:SpectralClustering", ()),
    ("model", "rbm", "repro.rbm.rbm:BernoulliRBM", ("bernoulli_rbm",)),
    ("model", "grbm", "repro.rbm.grbm:GaussianRBM", ("gaussian_rbm",)),
    ("model", "sls_rbm", "repro.rbm.sls_rbm:SlsRBM", ("slsrbm",)),
    ("model", "sls_grbm", "repro.rbm.sls_grbm:SlsGRBM", ("slsgrbm",)),
    ("preprocessor", "standardize", "repro.core.transformers:Standardize", ()),
    ("preprocessor", "minmax", "repro.core.transformers:MinMaxScale", ()),
    ("preprocessor", "median_binarize", "repro.core.transformers:MedianBinarize", ()),
    ("preprocessor", "identity", "repro.core.transformers:IdentityTransform", ("none",)),
    ("framework", "framework", "repro.core.framework:SelfLearningEncodingFramework",
     ("sls_framework",)),
    ("pipeline", "pipeline", "repro.core.pipeline:Pipeline", ()),
    ("pipeline", "clustering_pipeline", "repro.core.pipeline:ClusteringPipeline", ()),
)

for _kind, _name, _path, _aliases in _BUILTIN_COMPONENTS:
    REGISTRY.register(_kind, _name, _path, aliases=_aliases)


# ------------------------------------------------------- module-level facade
register = REGISTRY.register
get_class = REGISTRY.get_class
build = REGISTRY.build
available = REGISTRY.available
kinds = REGISTRY.kinds
kind_of = REGISTRY.kind_of
spec_of = REGISTRY.spec_of


def build_clusterer(name: str, n_clusters: int, *, random_state=None):
    """Build a clusterer by short name with a uniform ``(n_clusters, seed)``
    interface.

    The clusterers do not all share constructor parameters — Affinity
    Propagation targets a cluster count through its ``target_n_clusters``
    preference tuning, and the deterministic algorithms take no seed — so
    this adapter translates the uniform call into the right spec.  It is the
    registry-native replacement for the old
    :func:`repro.clustering.registry.make_clusterer`.
    """
    key = str(name).strip().lower()
    cls = REGISTRY.get_class(key, kind="clusterer")
    params: dict = {}
    names = cls._get_param_names()
    if "target_n_clusters" in names:  # AffinityPropagation
        params["target_n_clusters"] = n_clusters
    elif "n_clusters" in names:
        params["n_clusters"] = n_clusters
    if "random_state" in names:
        params["random_state"] = random_state
    return cls(**params)
