"""Setuptools entry point.

The offline environment ships setuptools without the ``wheel`` package, so
PEP 660 editable wheels cannot be built; keeping a ``setup.py`` lets
``pip install -e .`` fall back to the legacy develop install.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
            # Dedicated worker entry so remote hosts can join a distributed
            # grid without shelling through the full CLI dispatcher.
            "repro-worker=repro.distributed.worker:main",
        ]
    },
)
