"""Quickstart: cluster a web-image-like dataset on slsGRBM features.

Loads a reduced-size MSRA-MM 2.0 analogue (datasets I) and compares Density
Peaks clustering on the raw descriptors against the same clusterer on plain
GRBM features and on slsGRBM features — the comparison at the heart of the
paper.  Everything is built through the component registry: one JSON-friendly
spec per algorithm cell, instantiated with ``registry.build``.

(The pre-registry style — constructing ``FrameworkConfig`` and
``SelfLearningEncodingFramework`` by hand — still works; see the migration
note in the README.)

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import warnings

from repro import registry
from repro.clustering import DensityPeaks
from repro.datasets import load_msra_mm_dataset
from repro.metrics import evaluate_clustering

warnings.filterwarnings("ignore")


def framework_spec(model: str, n_clusters: int) -> dict:
    """Registry spec of one encoding framework (shared hyper-parameters)."""
    return {
        "kind": "framework",
        "type": "framework",
        "params": {
            "config": {
                "model": model,
                "n_hidden": 48,
                "eta": 0.4,
                "learning_rate": 1e-4,
                "n_epochs": 30,
                "batch_size": 64,
                "preprocessing": "standardize",
                "random_state": 0,
                "extra": {"supervision_learning_rate": 8e-3},
            },
            "n_clusters": n_clusters,
        },
    }


def main() -> None:
    dataset = load_msra_mm_dataset("WA", scale=0.35, random_state=0)
    print(f"dataset: {dataset.name} analogue ({dataset.n_samples} x {dataset.n_features}, "
          f"{dataset.n_classes} classes)")

    reports = {}

    # --- baseline: Density Peaks directly on the raw descriptors ---------------
    raw_labels = DensityPeaks(dataset.n_classes).fit_predict(dataset.data)
    reports["DP (raw data)"] = evaluate_clustering(dataset.labels, raw_labels)

    # --- plain GRBM and slsGRBM features, as encode -> cluster pipelines -------
    for model, label in (("grbm", "DP + GRBM"), ("sls_grbm", "DP + slsGRBM")):
        pipeline = registry.build({
            "type": "pipeline",
            "params": {"steps": [
                ["encode", framework_spec(model, dataset.n_classes)],
                ["cluster", {"type": "dp",
                             "params": {"n_clusters": dataset.n_classes}}],
            ]},
        })
        labels = pipeline.fit_predict(dataset.data)
        framework = pipeline["encode"]
        if getattr(framework, "supervision_", None) is not None:
            print(f"local supervision ({label}): {framework.supervision_}")
        reports[label] = evaluate_clustering(dataset.labels, labels)

    # --- comparison -------------------------------------------------------------
    print(f"\n{'algorithm':<16} {'accuracy':>9} {'purity':>9} {'fmi':>9}")
    for label, report in reports.items():
        print(f"{label:<16} {report.accuracy:>9.4f} {report.purity:>9.4f} {report.fmi:>9.4f}")


if __name__ == "__main__":
    main()
