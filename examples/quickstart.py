"""Quickstart: cluster a web-image-like dataset on slsGRBM features.

Loads a reduced-size MSRA-MM 2.0 analogue (datasets I), builds the full
self-learning local supervision pipeline with one configuration object, and
compares Density Peaks clustering on the raw descriptors against the same
clusterer on plain GRBM features and on slsGRBM features — the comparison at
the heart of the paper.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import warnings

from repro import FrameworkConfig, SelfLearningEncodingFramework
from repro.clustering import DensityPeaks
from repro.datasets import load_msra_mm_dataset
from repro.metrics import evaluate_clustering

warnings.filterwarnings("ignore")


def main() -> None:
    dataset = load_msra_mm_dataset("WA", scale=0.35, random_state=0)
    print(f"dataset: {dataset.name} analogue ({dataset.n_samples} x {dataset.n_features}, "
          f"{dataset.n_classes} classes)")

    reports = {}

    # --- baseline: Density Peaks directly on the raw descriptors ---------------
    raw_labels = DensityPeaks(dataset.n_classes).fit_predict(dataset.data)
    reports["DP (raw data)"] = evaluate_clustering(dataset.labels, raw_labels)

    # --- plain GRBM and slsGRBM features ---------------------------------------
    for model, label in (("grbm", "DP + GRBM"), ("sls_grbm", "DP + slsGRBM")):
        config = FrameworkConfig(
            model=model,
            n_hidden=48,
            eta=0.4,
            learning_rate=1e-4,
            n_epochs=30,
            batch_size=64,
            preprocessing="standardize",
            random_state=0,
            extra={"supervision_learning_rate": 8e-3},
        )
        framework = SelfLearningEncodingFramework(config, n_clusters=dataset.n_classes)
        features = framework.fit_transform(dataset.data)
        if framework.supervision_ is not None:
            print(f"local supervision ({label}): {framework.supervision_}")
        labels = DensityPeaks(dataset.n_classes).fit_predict(features)
        reports[label] = evaluate_clustering(dataset.labels, labels)

    # --- comparison -------------------------------------------------------------
    print(f"\n{'algorithm':<16} {'accuracy':>9} {'purity':>9} {'fmi':>9}")
    for label, report in reports.items():
        print(f"{label:<16} {report.accuracy:>9.4f} {report.purity:>9.4f} {report.fmi:>9.4f}")


if __name__ == "__main__":
    main()
