"""Distributed experiment grid quickstart: loopback workers + fault injection.

Runs the same small grid three ways and compares the results bit for bit:

1. sequentially (the reference);
2. fanned out over two loopback worker subprocesses
   (``ExperimentRunner(workers=2)``) — coordinator on an ephemeral port,
   cells leased over JSON/HTTP, outcomes streamed back;
3. distributed again, but with one of the two workers SIGKILLed mid-grid —
   its leases expire, the cells are re-queued, and the surviving worker
   finishes the grid.

All three tables must be identical to the last bit: cells seed from their
identity (``random_state + repeat``), floats cross the wire through exact
JSON round-trips, and results are merged in grid order, never arrival
order.

Run with::

    PYTHONPATH=src python examples/distributed_grid.py
"""

from __future__ import annotations

import threading
import time

from repro.datasets import load_uci_suite
from repro.datasets.base import DatasetSuite
from repro.experiments.runner import ExperimentRunner

ALGORITHMS = ("DP", "K-means", "K-means+slsRBM")
RUNNER_KW = dict(
    n_repeats=2, n_hidden=8, n_epochs=3, batch_size=32, random_state=0
)


def build_suite() -> DatasetSuite:
    suite = load_uci_suite(scale=0.25, random_state=0)
    return DatasetSuite("demo", list(suite)[:2])


def run_sequential(suite: DatasetSuite):
    runner = ExperimentRunner(ALGORITHMS, **RUNNER_KW)
    start = time.perf_counter()
    table = runner.run_suite(suite)
    print(f"sequential run:        {time.perf_counter() - start:.2f} s")
    return table


def run_distributed(suite: DatasetSuite):
    runner = ExperimentRunner(ALGORITHMS, **RUNNER_KW, workers=2)
    start = time.perf_counter()
    table = runner.run_suite(suite)
    print(
        f"2 loopback workers:    {time.perf_counter() - start:.2f} s "
        f"(re-queued: {runner.n_requeued_cells}, "
        f"duplicates: {runner.n_duplicate_results})"
    )
    return table


def run_distributed_with_worker_loss(suite: DatasetSuite):
    """Kill one worker shortly after the grid starts; the run must survive."""
    from repro.distributed import worker as worker_module

    real_spawn = worker_module.spawn_loopback_workers

    def spawn_and_sabotage(n_workers, coordinator_address, **kwargs):
        pool = real_spawn(n_workers, coordinator_address, **kwargs)

        def sabotage():
            time.sleep(1.0)  # let the grid get going first
            pid = pool.kill_one()
            print(f"  ... SIGKILLed worker pid {pid} mid-grid")

        threading.Thread(target=sabotage, daemon=True).start()
        return pool

    worker_module.spawn_loopback_workers = spawn_and_sabotage
    try:
        runner = ExperimentRunner(
            ALGORITHMS, **RUNNER_KW, workers=2, lease_timeout=2.0
        )
        start = time.perf_counter()
        table = runner.run_suite(suite)
    finally:
        worker_module.spawn_loopback_workers = real_spawn
    print(
        f"1 worker killed:       {time.perf_counter() - start:.2f} s "
        f"(re-queued: {runner.n_requeued_cells}, "
        f"duplicates: {runner.n_duplicate_results})"
    )
    return table


def main() -> None:
    suite = build_suite()
    print(f"grid: {len(list(suite))} datasets x {len(ALGORITHMS)} algorithms "
          f"x {RUNNER_KW['n_repeats']} repeats\n")

    sequential = run_sequential(suite)
    distributed = run_distributed(suite)
    survived = run_distributed_with_worker_loss(suite)

    assert distributed.to_dict() == sequential.to_dict()
    assert survived.to_dict() == sequential.to_dict()
    print("\nall three tables are bit-identical")

    print("\naccuracy (distributed run):")
    for row in distributed.rows("accuracy"):
        cells = "  ".join(
            f"{row[a]:.4f}" if a in row else "" for a in ALGORITHMS
        )
        print(f"  {row['dataset']:<10} {cells}")


if __name__ == "__main__":
    main()
