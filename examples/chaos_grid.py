"""Chaos-engineering tour of the resilience layer.

Runs the same small grid three ways and compares the tables bit for bit:

1. sequentially (the reference);
2. distributed over two loopback workers whose every coordinator request is
   routed through a seeded :class:`~repro.resilience.FaultProxy` injecting
   HTTP 500s, dropped connections, TCP resets, duplicated requests and
   latency — with the write-ahead journal armed and retry/quarantine
   policies active;
3. "resumed" from the journal of run 2: a fresh runner replays every
   journalled cell verbatim and has nothing left to execute — the same
   mechanism that lets ``repro evaluate --grid ... --journal J --resume``
   continue a SIGKILLed run.

Every injected fault is absorbed by a specific mechanism (worker transport
retries, lease expiry, idempotent completion, transient-cell retries), so
all three tables must be identical to the last bit.

Run with::

    PYTHONPATH=src python examples/chaos_grid.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.datasets import load_uci_suite
from repro.datasets.base import DatasetSuite
from repro.experiments.runner import ExperimentRunner
from repro.resilience import FaultProxy, FaultSchedule

ALGORITHMS = ("DP", "K-means", "K-means+slsRBM")
RUNNER_KW = dict(
    n_repeats=2, n_hidden=8, n_epochs=3, batch_size=32, random_state=0
)


def build_suite() -> DatasetSuite:
    suite = load_uci_suite(scale=0.25, random_state=0)
    return DatasetSuite("demo", list(suite)[:2])


def run_sequential(suite: DatasetSuite):
    runner = ExperimentRunner(ALGORITHMS, **RUNNER_KW)
    start = time.perf_counter()
    table = runner.run_suite(suite)
    print(f"sequential run:     {time.perf_counter() - start:.2f} s")
    return table


def run_chaos(suite: DatasetSuite, journal: Path):
    """Distributed grid with every worker request going through the proxy."""
    from repro.distributed import worker as worker_module

    proxies: list[FaultProxy] = []
    real_spawn = worker_module.spawn_loopback_workers

    def proxied_spawn(n_workers, coordinator_address, **kwargs):
        host, port = coordinator_address.rsplit(":", 1)
        schedule = FaultSchedule(
            11,
            p_error=0.10, p_drop=0.05, p_reset=0.05, p_duplicate=0.05,
            latency_ms=1.0,
            # registration must succeed or the grid never starts; everything
            # after it is fair game
            protect_routes=("/worker/register",),
        )
        proxy = FaultProxy(host, int(port), schedule=schedule).start()
        proxies.append(proxy)
        return real_spawn(n_workers, proxy.address_string, **kwargs)

    worker_module.spawn_loopback_workers = proxied_spawn
    try:
        runner = ExperimentRunner(
            ALGORITHMS, **RUNNER_KW,
            workers=2, lease_timeout=5.0,
            journal=journal, max_cell_retries=2, quarantine_after=3,
        )
        start = time.perf_counter()
        table = runner.run_suite(suite)
        elapsed = time.perf_counter() - start
    finally:
        worker_module.spawn_loopback_workers = real_spawn
        for proxy in proxies:
            proxy.stop()

    counters = proxies[0].counters.as_dict()
    print(f"grid behind proxy:  {elapsed:.2f} s")
    print(
        f"  faults injected:  {counters['n_injected_errors']} HTTP 500s, "
        f"{counters['n_dropped']} drops, {counters['n_reset']} resets, "
        f"{counters['n_duplicated']} duplicates "
        f"({counters['n_requests']} requests proxied)"
    )
    print(
        f"  absorbed by:      {runner.n_retried_cells} cell retries, "
        f"{runner.n_requeued_cells} re-queues, "
        f"{runner.n_duplicate_results} duplicate results discarded, "
        f"quarantined: {runner.quarantined_workers or 'none'}"
    )
    return table


def run_resume(suite: DatasetSuite, journal: Path):
    """Resume from the chaos run's journal: everything replays, nothing runs."""
    runner = ExperimentRunner(
        ALGORITHMS, **RUNNER_KW, workers=2, journal=journal, resume=True
    )
    start = time.perf_counter()
    table = runner.run_suite(suite)
    print(
        f"resumed from journal: {time.perf_counter() - start:.2f} s "
        f"({runner.n_journal_replayed} cells replayed, 0 re-executed)"
    )
    return table


def main() -> None:
    suite = build_suite()
    print(f"grid: {len(list(suite))} datasets x {len(ALGORITHMS)} algorithms "
          f"x {RUNNER_KW['n_repeats']} repeats\n")

    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "chaos.jsonl"
        sequential = run_sequential(suite)
        chaotic = run_chaos(suite, journal)
        resumed = run_resume(suite, journal)

        assert chaotic.to_dict() == sequential.to_dict()
        assert resumed.to_dict() == sequential.to_dict()
        print("\nall three tables are bit-identical")

        print("\naccuracy (chaos run):")
        for row in chaotic.rows("accuracy"):
            cells = "  ".join(
                f"{row[a]:.4f}" if a in row else "" for a in ALGORITHMS
            )
            print(f"  {row['dataset']:<10} {cells}")


if __name__ == "__main__":
    main()
