"""Datasets-I scenario: slsGRBM features for web-image clustering.

Reproduces one cell of the paper's MSRA-MM 2.0 evaluation at reduced scale:
real-valued high-dimensional descriptors, Gaussian-visible slsGRBM, and the
three downstream clusterers DP / K-means / AP compared on raw data, plain
GRBM features and slsGRBM features.

Run with:  python examples/image_feature_learning.py
"""

from __future__ import annotations

import warnings

from repro.datasets import load_msra_mm_dataset
from repro.experiments.grids import build_algorithm

warnings.filterwarnings("ignore")

#: keep the example fast; the benchmarks run the full-size version
SCALE = 0.35
ALGORITHMS = (
    "DP", "DP+GRBM", "DP+slsGRBM",
    "K-means", "K-means+GRBM", "K-means+slsGRBM",
)


def main() -> None:
    dataset = load_msra_mm_dataset("WA", scale=SCALE, random_state=0)
    print(f"dataset: {dataset.name} analogue ({dataset.n_samples} x {dataset.n_features})")
    print(f"{'algorithm':<20} {'accuracy':>9} {'purity':>9} {'fmi':>9}")

    for name in ALGORITHMS:
        pipeline = build_algorithm(
            name,
            dataset.n_classes,
            n_hidden=48,
            n_epochs=30,
            batch_size=64,
            random_state=0,
            config_overrides={"extra": {"supervision_learning_rate": 8e-3}},
        )
        report = pipeline.run(dataset).report
        print(f"{name:<20} {report.accuracy:>9.4f} {report.purity:>9.4f} {report.fmi:>9.4f}")


if __name__ == "__main__":
    main()
