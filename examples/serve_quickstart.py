"""End-to-end serving quickstart: train -> serve over HTTP -> encode.

Drives the whole ``python -m repro serve`` stack in one process:

1. fit a small slsRBM framework on the IR-analogue dataset;
2. persist it as an artifact bundle;
3. start the JSON/HTTP serving front end (ephemeral port) with batch
   fusion enabled;
4. encode rows through ``POST /encode`` from several concurrent client
   threads — fused into shared matmuls server-side;
5. read back ``/models`` and ``/stats`` (fusion ratio, queue/compute split)
   and verify the HTTP features match a direct in-process encode.

Run with::

    PYTHONPATH=src python examples/serve_quickstart.py
"""

from __future__ import annotations

import json
import tempfile
import threading
import urllib.request

import numpy as np

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets import load_uci_dataset
from repro.persistence import save_framework
from repro.serving import BatchFuser, EncodingService
from repro.serving.http import build_server


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=30) as response:
        return json.load(response)


def main() -> None:
    # 1. train ---------------------------------------------------------------
    dataset = load_uci_dataset("IR", random_state=0)
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=16,
        n_epochs=5,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=dataset.n_classes)
    framework.fit(dataset.data)
    print(f"trained {config.model} on {dataset.abbreviation} "
          f"({dataset.n_samples} x {dataset.n_features})")

    with tempfile.TemporaryDirectory() as tmp:
        # 2. persist ---------------------------------------------------------
        bundle = save_framework(framework, f"{tmp}/ir")
        print(f"artifact bundle written to {bundle}")

        # 3. serve (what `python -m repro serve --artifact ir=...` does) -----
        service = EncodingService()
        service.load("ir", bundle)
        fuser = BatchFuser(service, max_batch_rows=256, max_wait_ms=5.0)
        server = build_server(service, fuser=fuser, port=0)
        server_thread = threading.Thread(target=server.serve_forever, daemon=True)
        server_thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        print(f"serving on {base}")
        print("healthz:", get_json(base + "/healthz"))

        # 4. concurrent clients over HTTP ------------------------------------
        n_clients, rows = 4, 8
        chunks = [
            dataset.data[index * rows : (index + 1) * rows]
            for index in range(n_clients)
        ]
        responses: dict[int, dict] = {}

        def client(index: int) -> None:
            responses[index] = post_json(
                base + "/encode",
                {"model": "ir", "data": chunks[index].tolist()},
            )

        threads = [
            threading.Thread(target=client, args=(index,))
            for index in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        # 5. verify + observe -------------------------------------------------
        for index in range(n_clients):
            features = np.asarray(responses[index]["features"])
            direct = service.encode("ir", chunks[index], use_cache=False)
            assert np.array_equal(features, direct), "HTTP != direct encode"
        print(f"{n_clients} concurrent /encode responses verified "
              "bit-identical to direct encodes")

        models = get_json(base + "/models")["models"]
        print(f"models: {json.dumps(models)}")
        stats = get_json(base + "/stats")
        ir_stats = stats["models"]["ir"]
        print(f"requests: {ir_stats['n_requests']}, "
              f"fused: {ir_stats['n_fused_requests']}, "
              f"flushes: {ir_stats['n_flushes']}, "
              f"fusion ratio: {ir_stats['fusion_ratio']:.2f}")
        print(f"queue: {ir_stats['total_queue_seconds'] * 1e3:.2f} ms, "
              f"compute: {ir_stats['total_compute_seconds'] * 1e3:.2f} ms")

        server.shutdown()
        server.server_close()
        server_thread.join(timeout=5)
    print("done")


if __name__ == "__main__":
    main()
