"""Using the library on your own data, step by step.

Instead of the one-call ``SelfLearningEncodingFramework``, this example walks
through the individual stages so each can be customised:

1. build the multi-clustering integration by hand (choose clusterers and the
   voting strategy, inspect the agreement statistics);
2. train an slsGRBM with the resulting local supervision;
3. inspect how the constrict/disperse loss of the hidden features evolves;
4. cluster the hidden features and evaluate.

Run with:  python examples/custom_dataset.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.clustering import KMeans
from repro.datasets.preprocessing import standardize
from repro.datasets.synthetic import make_high_dimensional_mixture
from repro.metrics import evaluate_clustering
from repro.rbm import SlsGRBM
from repro.supervision import MultiClusteringIntegration

warnings.filterwarnings("ignore")


def main() -> None:
    # Any (n_samples, n_features) float matrix works here; ground-truth labels
    # are only needed for the final evaluation.
    data, labels = make_high_dimensional_mixture(
        400, 120, 3, separation=0.55, weights=np.array([0.6, 0.25, 0.15]), random_state=7
    )
    data = standardize(data)

    # --- stage 1: self-learning local supervision -----------------------------
    integration = MultiClusteringIntegration(
        n_clusters=3,
        clusterers=("dp", "kmeans", "ap"),   # swap in "agglomerative"/"spectral" freely
        voting="unanimous",
        random_state=0,
    )
    supervision = integration.fit_supervision(data)
    print("agreement rate of the ensemble:", round(integration.agreement_rate_, 3))
    print("supervision:", supervision.summary())

    # --- stage 2: supervision-guided GRBM -------------------------------------
    model = SlsGRBM(
        n_hidden=48,
        eta=0.4,
        learning_rate=1e-4,
        supervision_learning_rate=8e-3,
        n_epochs=30,
        batch_size=64,
        random_state=0,
    )
    model.fit(data, supervision=supervision)

    # --- stage 3: training diagnostics ----------------------------------------
    history = model.training_history_
    print("\nconstrict/disperse loss per epoch (first -> last):")
    losses = history.supervision_losses
    print("  ", " ".join(f"{v:.3f}" for v in losses[:5]), "...",
          " ".join(f"{v:.3f}" for v in losses[-3:]))

    # --- stage 4: downstream clustering ----------------------------------------
    features = model.transform(data)
    raw_report = evaluate_clustering(
        labels, KMeans(3, random_state=0).fit_predict(data)
    )
    sls_report = evaluate_clustering(
        labels, KMeans(3, random_state=0).fit_predict(features)
    )
    print(f"\n{'metric':<10} {'raw data':>10} {'slsGRBM':>10}")
    for metric in ("accuracy", "purity", "fmi", "nmi"):
        print(f"{metric:<10} {raw_report[metric]:>10.4f} {sls_report[metric]:>10.4f}")


if __name__ == "__main__":
    main()
