"""Ablation example: how the balance coefficient eta affects clustering.

Eq. 13 weighs the CD likelihood term by ``eta`` and the constrict/disperse
supervision terms by ``1 - eta``.  This script sweeps eta on one UCI-like
dataset and prints the downstream K-means accuracy, together with the raw
baseline.

Run with:  python examples/ablation_eta.py
"""

from __future__ import annotations

import warnings

from repro.core.config import FrameworkConfig
from repro.datasets import load_uci_dataset
from repro.experiments.ablation import raw_baseline, run_eta_ablation

warnings.filterwarnings("ignore")


def main() -> None:
    dataset = load_uci_dataset("BCW", random_state=0)
    base_config = FrameworkConfig(
        model="sls_rbm",
        n_hidden=32,
        learning_rate=1e-3,
        n_epochs=20,
        batch_size=32,
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        random_state=0,
        extra={"supervision_learning_rate": 5e-3},
    )

    baseline = raw_baseline(dataset)
    print(f"dataset: {dataset.name} analogue")
    print(f"raw K-means accuracy: {baseline['accuracy']:.4f}\n")

    results = run_eta_ablation(
        dataset, etas=(0.1, 0.3, 0.5, 0.7, 0.9), base_config=base_config
    )
    print(f"{'eta':<6} {'accuracy':>9} {'rand':>9} {'fmi':>9}")
    for eta, profile in results.items():
        print(f"{eta:<6.1f} {profile['accuracy']:>9.4f} {profile['rand']:>9.4f} "
              f"{profile['fmi']:>9.4f}")


if __name__ == "__main__":
    main()
