"""Datasets-II scenario: a miniature version of the paper's Table VII.

Runs the DP / DP+RBM / DP+slsRBM comparison over three UCI-like datasets and
prints the accuracy table in the paper's layout.  The grid is defined in the
component-registry spec format (:func:`repro.experiments.grids.algorithm_spec`)
— the same nested-JSON specs used by configs, artifact manifests and the CLI
— and handed to :class:`ExperimentRunner`, which accepts spec cells and
name cells interchangeably.

Run with:  python examples/uci_clustering.py
"""

from __future__ import annotations

import warnings

from repro.datasets import load_uci_dataset
from repro.datasets.base import DatasetSuite
from repro.experiments.grids import algorithm_spec
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentRunner

warnings.filterwarnings("ignore")

DATASETS = ("IR", "BCW", "SH")
ALGORITHMS = ("DP", "DP+RBM", "DP+slsRBM", "K-means", "K-means+RBM", "K-means+slsRBM")


def main() -> None:
    suite = DatasetSuite(
        "mini-uci", [load_uci_dataset(abbr, random_state=0) for abbr in DATASETS]
    )
    # One registry spec per grid cell; n_clusters is re-bound per dataset by
    # the runner, so the value used here is just a placeholder.
    specs = [
        algorithm_spec(
            name,
            3,
            n_hidden=32,
            n_epochs=25,
            batch_size=32,
            config_overrides={"extra": {"supervision_learning_rate": 5e-3}},
        )
        for name in ALGORITHMS
    ]
    runner = ExperimentRunner(tuple(specs), n_repeats=1, random_state=0)
    table = runner.run_suite(suite)
    print(format_table(table, "accuracy", title="Accuracy (mini Table VII)"))
    print()
    print(format_table(table, "rand", title="Rand index (mini Table VIII)"))


if __name__ == "__main__":
    main()
