"""JSON round-trip and merge semantics of :class:`ExperimentTable`."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.experiments.runner import ExperimentCell, ExperimentTable
from repro.metrics.report import ClusteringReport

METRICS = ("accuracy", "purity", "rand", "adjusted_rand", "fmi", "nmi")


def make_report(seed: int) -> ClusteringReport:
    rng = np.random.default_rng(seed)
    values = {metric: float(rng.random()) for metric in METRICS}
    return ClusteringReport(
        **values, n_samples=50, n_clusters=3, extras={"seed": seed}
    )


def make_cell(dataset: str, algorithm: str, seed: int = 0) -> ExperimentCell:
    reports = (make_report(seed), make_report(seed + 1))
    mean = {
        metric: float(np.mean([r[metric] for r in reports]))
        for metric in METRICS
    }
    variance = {
        metric: float(np.var([r[metric] for r in reports]))
        for metric in METRICS
    }
    return ExperimentCell(
        dataset=dataset,
        algorithm=algorithm,
        mean=mean,
        variance=variance,
        n_repeats=2,
        reports=reports,
    )


def make_table(datasets=("IR", "WI"), algorithms=("DP", "K-means")):
    table = ExperimentTable("t", list(datasets), list(algorithms))
    for i, dataset in enumerate(datasets):
        for j, algorithm in enumerate(algorithms):
            table.add(make_cell(dataset, algorithm, seed=10 * i + j))
    return table


class TestCellRoundTrip:
    def test_bit_identical_through_json(self):
        cell = make_cell("IR", "DP")
        rebuilt = ExperimentCell.from_dict(
            json.loads(json.dumps(cell.to_dict()))
        )
        assert rebuilt == cell
        assert rebuilt.reports == cell.reports

    def test_reports_default_to_empty(self):
        payload = make_cell("IR", "DP").to_dict()
        del payload["reports"]
        rebuilt = ExperimentCell.from_dict(payload)
        assert rebuilt.reports == ()


class TestTableRoundTrip:
    def test_bit_identical_through_json(self):
        table = make_table()
        rebuilt = ExperimentTable.from_dict(
            json.loads(json.dumps(table.to_dict()))
        )
        assert rebuilt.name == table.name
        assert rebuilt.dataset_order == table.dataset_order
        assert rebuilt.algorithm_order == table.algorithm_order
        assert rebuilt.to_dict() == table.to_dict()
        np.testing.assert_array_equal(
            rebuilt.metric_matrix("accuracy"), table.metric_matrix("accuracy")
        )

    def test_partial_table_roundtrips(self):
        table = ExperimentTable("partial", ["IR", "WI"], ["DP"])
        table.add(make_cell("IR", "DP"))
        rebuilt = ExperimentTable.from_dict(table.to_dict())
        assert ("IR", "DP") in rebuilt
        assert ("WI", "DP") not in rebuilt

    def test_cells_serialized_in_stable_order(self):
        table = make_table()
        keys = [
            (entry["dataset"], entry["algorithm"])
            for entry in table.to_dict()["cells"]
        ]
        assert keys == sorted(keys)


class TestMerge:
    def test_merges_disjoint_shards(self):
        full = make_table()
        shard_a = ExperimentTable("t", ["IR"], ["DP", "K-means"])
        shard_b = ExperimentTable("t", ["WI"], ["DP", "K-means"])
        for dataset, shard in (("IR", shard_a), ("WI", shard_b)):
            for algorithm in ("DP", "K-means"):
                shard.add(full.cell(dataset, algorithm))
        merged = ExperimentTable.merge([shard_a, shard_b])
        assert merged.to_dict() == full.to_dict()

    def test_orders_concatenate_first_seen_first(self):
        shard_a = ExperimentTable("t", ["WI"], ["K-means"])
        shard_b = ExperimentTable("t", ["IR", "WI"], ["DP", "K-means"])
        merged = ExperimentTable.merge([shard_a, shard_b])
        assert merged.dataset_order == ["WI", "IR"]
        assert merged.algorithm_order == ["K-means", "DP"]

    def test_name_defaults_to_first_table(self):
        merged = ExperimentTable.merge(
            [ExperimentTable("alpha", [], []), ExperimentTable("beta", [], [])]
        )
        assert merged.name == "alpha"
        renamed = ExperimentTable.merge(
            [ExperimentTable("alpha", [], [])], name="joint"
        )
        assert renamed.name == "joint"

    def test_duplicate_cell_raises(self):
        shard_a = ExperimentTable("t", ["IR"], ["DP"])
        shard_b = ExperimentTable("t", ["IR"], ["DP"])
        shard_a.add(make_cell("IR", "DP", seed=0))
        shard_b.add(make_cell("IR", "DP", seed=99))
        with pytest.raises(ValidationError, match="duplicate cell"):
            ExperimentTable.merge([shard_a, shard_b])

    def test_empty_input_raises(self):
        with pytest.raises(ValidationError, match="at least one table"):
            ExperimentTable.merge([])
