"""Parallel experiment runner: bit-identical results, merged statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_uci_suite
from repro.datasets.base import DatasetSuite
from repro.exceptions import ValidationError
from repro.experiments.runner import ExperimentRunner

ALGORITHMS = ("DP", "K-means", "K-means+RBM", "K-means+slsRBM")


@pytest.fixture(scope="module")
def mini_suite():
    suite = load_uci_suite(scale=0.25, random_state=0)
    return DatasetSuite("mini", list(suite)[:2])


def _run(suite, n_jobs, n_repeats=2):
    runner = ExperimentRunner(
        ALGORITHMS,
        n_repeats=n_repeats,
        n_hidden=6,
        n_epochs=2,
        batch_size=32,
        random_state=0,
        n_jobs=n_jobs,
    )
    return runner, runner.run_suite(suite)


class TestParallelRunner:
    def test_bit_identical_to_sequential(self, mini_suite):
        _, sequential = _run(mini_suite, n_jobs=1)
        _, parallel = _run(mini_suite, n_jobs=2)
        for dataset in sequential.dataset_order:
            for algorithm in ALGORITHMS:
                cell_seq = sequential.cell(dataset, algorithm)
                cell_par = parallel.cell(dataset, algorithm)
                assert cell_seq.mean == cell_par.mean
                assert cell_seq.variance == cell_par.variance
                for report_seq, report_par in zip(cell_seq.reports, cell_par.reports):
                    assert report_seq.as_dict() == report_par.as_dict()
                    np.testing.assert_array_equal(
                        report_seq.n_clusters, report_par.n_clusters
                    )

    def test_parallel_run_cell(self, mini_suite):
        dataset = list(mini_suite)[0]
        runner_seq = ExperimentRunner(
            ("K-means+slsRBM",), n_repeats=2, n_hidden=6, n_epochs=2,
            batch_size=32, random_state=0, n_jobs=1,
        )
        runner_par = ExperimentRunner(
            ("K-means+slsRBM",), n_repeats=2, n_hidden=6, n_epochs=2,
            batch_size=32, random_state=0, n_jobs=2,
        )
        cell_seq = runner_seq.run_cell(dataset, "K-means+slsRBM")
        cell_par = runner_par.run_cell(dataset, "K-means+slsRBM")
        assert cell_seq.mean == cell_par.mean

    def test_supervision_cache_merged_on_join(self, mini_suite):
        dataset = list(mini_suite)[0]
        runner = ExperimentRunner(
            ("K-means+slsRBM", "DP+slsRBM"),
            n_repeats=1, n_hidden=6, n_epochs=2, batch_size=32,
            random_state=0, n_jobs=2,
        )
        runner.run_dataset(dataset)
        # Both sls cells computed the same supervision in their workers; the
        # join folds it into the parent cache exactly once.
        assert len(runner._supervision_cache) == 1

    def test_n_jobs_validation(self):
        with pytest.raises(ValidationError):
            ExperimentRunner(("DP",), n_jobs=0)
