"""Tests for the experiment runner, table container, figure extraction and reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, DatasetSuite
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ValidationError
from repro.experiments.figures import figure_average_bars, figure_series
from repro.experiments.reporting import format_summary_table, format_table
from repro.experiments.runner import ExperimentCell, ExperimentRunner, ExperimentTable

#: A tiny algorithm grid that exercises raw, plain-model and sls-model cells
#: without the cost of the full nine-column grid.
SMALL_GRID = ("K-means", "K-means+GRBM", "K-means+slsGRBM")


@pytest.fixture(scope="module")
def tiny_suite() -> DatasetSuite:
    datasets = []
    for index, abbreviation in enumerate(["S1", "S2"]):
        data, labels = make_blobs(
            60, 6, 3, cluster_std=1.2, center_spread=4.0, random_state=index
        )
        datasets.append(Dataset(f"synthetic-{index}", abbreviation, data, labels))
    return DatasetSuite("tiny", datasets)


@pytest.fixture(scope="module")
def small_table(tiny_suite) -> ExperimentTable:
    runner = ExperimentRunner(
        SMALL_GRID, n_repeats=1, n_hidden=8, n_epochs=3, batch_size=32, random_state=0
    )
    return runner.run_suite(tiny_suite)


class TestExperimentRunner:
    def test_table_contains_every_cell(self, small_table, tiny_suite):
        for dataset in tiny_suite.abbreviations:
            for algorithm in SMALL_GRID:
                assert (dataset, algorithm) in small_table

    def test_cell_metrics_in_unit_interval(self, small_table):
        cell = small_table.cell("S1", "K-means")
        for metric, value in cell.mean.items():
            if metric != "adjusted_rand":
                assert 0.0 <= value <= 1.0, metric

    def test_repeats_produce_variance(self, tiny_suite):
        runner = ExperimentRunner(
            ("K-means",), n_repeats=3, n_hidden=8, n_epochs=2, random_state=0
        )
        cell = runner.run_cell(tiny_suite[0], "K-means")
        assert cell.n_repeats == 3
        assert len(cell.reports) == 3
        assert all(v >= 0.0 for v in cell.variance.values())

    def test_unknown_metric_raises(self, small_table):
        with pytest.raises(ValidationError):
            small_table.cell("S1", "K-means").value("f1")

    def test_missing_cell_raises(self, small_table):
        with pytest.raises(ValidationError):
            small_table.cell("S1", "DP")

    def test_empty_grid_rejected(self):
        with pytest.raises(ValidationError):
            ExperimentRunner(())


class TestExperimentTable:
    def test_metric_matrix_shape(self, small_table):
        matrix = small_table.metric_matrix("accuracy")
        assert matrix.shape == (2, 3)
        assert np.all(np.isfinite(matrix))

    def test_rows_include_average(self, small_table):
        rows = small_table.rows("accuracy")
        assert rows[-1]["dataset"] == "Average"
        assert len(rows) == 3

    def test_column_averages_match_matrix(self, small_table):
        averages = small_table.column_averages("accuracy")
        matrix = small_table.metric_matrix("accuracy")
        for j, algorithm in enumerate(small_table.algorithm_order):
            assert averages[algorithm] == pytest.approx(np.mean(matrix[:, j]))

    def test_dataset_series_length(self, small_table):
        series = small_table.dataset_series("accuracy", "K-means")
        assert len(series) == 2


class TestFigureExtraction:
    def test_figure_series_layout(self, small_table):
        panels = figure_series(small_table, "accuracy", model_suffix="GRBM")
        assert "K-means" in panels
        assert set(panels["K-means"]) == {"K-means", "K-means+GRBM", "K-means+slsGRBM"}
        assert all(len(v) == 2 for v in panels["K-means"].values())

    def test_figure_series_invalid_suffix(self, small_table):
        with pytest.raises(ValidationError):
            figure_series(small_table, "accuracy", model_suffix="VAE")

    def test_figure_average_bars(self, small_table):
        bars = figure_average_bars(small_table, ("accuracy", "purity"))
        assert set(bars) == {"accuracy", "purity"}
        assert set(bars["accuracy"]) == set(SMALL_GRID)


class TestReporting:
    def test_format_table_contains_all_columns(self, small_table):
        text = format_table(small_table, "accuracy", title="Table X")
        assert "Table X" in text
        for algorithm in SMALL_GRID:
            assert algorithm in text
        assert "Average" in text

    def test_format_table_with_variance(self, small_table):
        text = format_table(small_table, "accuracy", show_variance=True)
        assert "±" in text

    def test_format_summary_table(self, small_table):
        bars = figure_average_bars(small_table, ("accuracy",))
        text = format_summary_table(bars, title="Fig. 5")
        assert "Fig. 5" in text
        assert "K-means+slsGRBM" in text
