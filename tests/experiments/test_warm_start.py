"""Warm-start tests: the runner reuses persisted frameworks and supervisions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, DatasetSuite
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.experiments.runner import ExperimentRunner

ALGORITHMS = ("K-means", "K-means+slsRBM", "DP+slsRBM")
SETTINGS = dict(n_hidden=5, n_epochs=2, batch_size=16)


@pytest.fixture
def suite():
    data, labels = make_overlapping_binary_clusters(
        60, 8, 3, flip_probability=0.1, random_state=0
    )
    dataset = Dataset(
        name="Warm", abbreviation="WM", data=data, labels=labels
    )
    return DatasetSuite("warm-suite", [dataset])


def _table_values(table, metric="accuracy"):
    return {
        algorithm: table.cell("WM", algorithm).value(metric)
        for algorithm in ALGORITHMS
    }


class TestWarmStart:
    def test_artifacts_written_and_reloaded(self, suite, tmp_path):
        cold = ExperimentRunner(ALGORITHMS, artifact_dir=tmp_path, **SETTINGS)
        cold_table = cold.run_suite(suite)
        assert cold.n_artifact_hits == 0
        # one bundle per framework cell (the raw K-means cell trains nothing)
        bundles = [p for p in tmp_path.iterdir() if p.is_dir()]
        assert len(bundles) == 2

        warm = ExperimentRunner(ALGORITHMS, artifact_dir=tmp_path, **SETTINGS)
        warm_table = warm.run_suite(suite)
        assert warm.n_artifact_hits == 2
        assert _table_values(warm_table) == _table_values(cold_table)

    def test_supervision_shared_across_cells(self, suite, tmp_path):
        runner = ExperimentRunner(ALGORITHMS, **SETTINGS)
        runner.run_suite(suite)
        # K-means+slsRBM builds the supervision; DP+slsRBM reuses it.
        assert runner.n_supervision_hits == 1

    def test_results_match_without_warm_start(self, suite, tmp_path):
        plain = ExperimentRunner(ALGORITHMS, **SETTINGS)
        cached = ExperimentRunner(ALGORITHMS, artifact_dir=tmp_path, **SETTINGS)
        plain_values = _table_values(plain.run_suite(suite))
        cached_values = _table_values(cached.run_suite(suite))
        assert plain_values == cached_values

    def test_corrupted_bundle_falls_back_to_retraining(self, suite, tmp_path):
        cold = ExperimentRunner(ALGORITHMS, artifact_dir=tmp_path, **SETTINGS)
        cold_table = cold.run_suite(suite)
        for bundle in tmp_path.iterdir():
            (bundle / "manifest.json").write_text("{broken")
        warm = ExperimentRunner(ALGORITHMS, artifact_dir=tmp_path, **SETTINGS)
        warm_table = warm.run_suite(suite)
        assert warm.n_artifact_hits == 0
        assert _table_values(warm_table) == _table_values(cold_table)

    def test_stale_config_bundle_not_reused(self, suite, tmp_path):
        cold = ExperimentRunner(ALGORITHMS, artifact_dir=tmp_path, **SETTINGS)
        cold.run_suite(suite)
        # Same cell names, different hyper-parameters (the ablation hook):
        # the stale bundles must be retrained, not silently reused.
        ablated = ExperimentRunner(
            ALGORITHMS,
            artifact_dir=tmp_path,
            config_overrides={"eta": 0.2},
            **SETTINGS,
        )
        ablated.run_suite(suite)
        assert ablated.n_artifact_hits == 0
        # ...and the refreshed bundles now warm-start the ablated config.
        rerun = ExperimentRunner(
            ALGORITHMS,
            artifact_dir=tmp_path,
            config_overrides={"eta": 0.2},
            **SETTINGS,
        )
        rerun.run_suite(suite)
        assert rerun.n_artifact_hits == 2

    def test_pipeline_refits_by_default(self, suite):
        from repro.experiments.grids import build_algorithm

        pipeline = build_algorithm("K-means+slsRBM", 3, n_hidden=5, n_epochs=2)
        dataset = suite["WM"]
        pipeline.run(dataset)
        first_weights = pipeline.framework.model_.weights_.copy()
        # A second run on the same pipeline object refits (reuse is opt-in),
        # so a different dataset can never be transformed with stale weights.
        data, labels = make_overlapping_binary_clusters(
            50, 8, 3, flip_probability=0.2, random_state=9
        )
        other = Dataset(name="Other", abbreviation="OT", data=data, labels=labels)
        pipeline.run(other)
        assert pipeline.framework.model_.weights_.shape == (8, 5)
        assert not np.array_equal(first_weights, pipeline.framework.model_.weights_)

    def test_repeats_get_distinct_bundles(self, suite, tmp_path):
        runner = ExperimentRunner(
            ("K-means+slsRBM",), n_repeats=2, artifact_dir=tmp_path, **SETTINGS
        )
        runner.run_suite(suite)
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["WM__K-means-slsRBM__r0", "WM__K-means-slsRBM__r1"]
