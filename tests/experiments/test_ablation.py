"""Tests for the ablation studies."""

from __future__ import annotations

import pytest

from repro.core.config import FrameworkConfig
from repro.datasets.base import Dataset
from repro.datasets.synthetic import make_blobs
from repro.exceptions import ValidationError
from repro.experiments.ablation import (
    raw_baseline,
    run_clusterer_count_ablation,
    run_eta_ablation,
    run_voting_ablation,
)


@pytest.fixture(scope="module")
def dataset() -> Dataset:
    data, labels = make_blobs(60, 6, 3, cluster_std=1.0, center_spread=4.0, random_state=1)
    return Dataset("ablation-blobs", "AB", data, labels)


@pytest.fixture(scope="module")
def base_config() -> FrameworkConfig:
    return FrameworkConfig(
        model="sls_grbm",
        n_hidden=8,
        n_epochs=3,
        batch_size=32,
        learning_rate=0.01,
        clusterers=("kmeans", "agglomerative"),
        random_state=0,
    )


class TestEtaAblation:
    def test_returns_profile_per_eta(self, dataset, base_config):
        results = run_eta_ablation(dataset, etas=(0.3, 0.7), base_config=base_config)
        assert set(results) == {0.3, 0.7}
        for profile in results.values():
            assert 0.0 <= profile["accuracy"] <= 1.0

    def test_requires_sls_model(self, dataset, base_config):
        with pytest.raises(ValidationError):
            run_eta_ablation(
                dataset, base_config=base_config.with_overrides(model="grbm")
            )


class TestVotingAblation:
    def test_both_strategies_evaluated(self, dataset, base_config):
        results = run_voting_ablation(dataset, base_config=base_config)
        assert set(results) == {"unanimous", "majority"}

    def test_requires_sls_model(self, dataset, base_config):
        with pytest.raises(ValidationError):
            run_voting_ablation(
                dataset, base_config=base_config.with_overrides(model="rbm",
                                                                preprocessing="median_binarize")
            )


class TestClustererCountAblation:
    def test_ensembles_evaluated(self, dataset, base_config):
        ensembles = (("kmeans",), ("kmeans", "agglomerative"))
        results = run_clusterer_count_ablation(
            dataset, base_config=base_config, ensembles=ensembles
        )
        assert set(results) == {"kmeans", "kmeans+agglomerative"}

    def test_requires_sls_model(self, dataset, base_config):
        with pytest.raises(ValidationError):
            run_clusterer_count_ablation(
                dataset, base_config=base_config.with_overrides(model="grbm")
            )


class TestRawBaseline:
    def test_baseline_profile(self, dataset):
        profile = raw_baseline(dataset)
        assert 0.0 <= profile["accuracy"] <= 1.0
        assert 0.0 <= profile["fmi"] <= 1.0
