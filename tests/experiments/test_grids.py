"""Tests for the algorithm grid builder."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ClusteringPipeline
from repro.exceptions import ValidationError
from repro.experiments.grids import (
    DATASETS_I_ALGORITHMS,
    DATASETS_II_ALGORITHMS,
    build_algorithm,
    build_algorithm_grid,
)


class TestAlgorithmNames:
    def test_datasets_i_has_nine_columns(self):
        assert len(DATASETS_I_ALGORITHMS) == 9
        assert DATASETS_I_ALGORITHMS[0] == "DP"
        assert DATASETS_I_ALGORITHMS[-1] == "AP+slsGRBM"

    def test_datasets_ii_has_nine_columns(self):
        assert len(DATASETS_II_ALGORITHMS) == 9
        assert "DP+slsRBM" in DATASETS_II_ALGORITHMS
        assert all("GRBM" not in name for name in DATASETS_II_ALGORITHMS)


class TestBuildAlgorithm:
    def test_raw_algorithm_has_no_framework(self):
        pipeline = build_algorithm("DP", 3)
        assert isinstance(pipeline, ClusteringPipeline)
        assert pipeline.framework is None
        assert pipeline.algorithm_name == "DP"

    def test_grbm_algorithm_configuration(self):
        pipeline = build_algorithm("K-means+GRBM", 3, n_hidden=16, n_epochs=5)
        config = pipeline.framework.config
        assert config.model == "grbm"
        assert config.n_hidden == 16
        assert config.preprocessing == "standardize"
        assert pipeline.algorithm_name == "K-means+GRBM"

    def test_sls_grbm_uses_paper_eta(self):
        pipeline = build_algorithm("DP+slsGRBM", 3)
        assert pipeline.framework.config.eta == pytest.approx(0.4)

    def test_sls_rbm_uses_paper_eta_and_binarisation(self):
        pipeline = build_algorithm("AP+slsRBM", 2)
        config = pipeline.framework.config
        assert config.eta == pytest.approx(0.5)
        assert config.preprocessing == "median_binarize"
        assert config.supervision_preprocessing == "standardize"

    def test_config_overrides(self):
        pipeline = build_algorithm(
            "K-means+slsGRBM", 3, config_overrides={"eta": 0.7, "voting": "majority"}
        )
        assert pipeline.framework.config.eta == pytest.approx(0.7)
        assert pipeline.framework.config.voting == "majority"

    def test_unknown_clusterer(self):
        with pytest.raises(ValidationError):
            build_algorithm("DBSCAN+slsGRBM", 3)

    def test_unknown_model(self):
        with pytest.raises(ValidationError):
            build_algorithm("DP+VAE", 3)

    def test_build_grid(self):
        grid = build_algorithm_grid(DATASETS_I_ALGORITHMS, 3, n_hidden=8, n_epochs=2)
        assert set(grid) == set(DATASETS_I_ALGORITHMS)
        assert all(isinstance(p, ClusteringPipeline) for p in grid.values())
