"""Tests for the algorithm grid builder."""

from __future__ import annotations

import pytest

from repro.core.pipeline import ClusteringPipeline
from repro.exceptions import ValidationError
from repro.experiments.grids import (
    DATASETS_I_ALGORITHMS,
    DATASETS_II_ALGORITHMS,
    build_algorithm,
    build_algorithm_grid,
)


class TestAlgorithmNames:
    def test_datasets_i_has_nine_columns(self):
        assert len(DATASETS_I_ALGORITHMS) == 9
        assert DATASETS_I_ALGORITHMS[0] == "DP"
        assert DATASETS_I_ALGORITHMS[-1] == "AP+slsGRBM"

    def test_datasets_ii_has_nine_columns(self):
        assert len(DATASETS_II_ALGORITHMS) == 9
        assert "DP+slsRBM" in DATASETS_II_ALGORITHMS
        assert all("GRBM" not in name for name in DATASETS_II_ALGORITHMS)


class TestBuildAlgorithm:
    def test_raw_algorithm_has_no_framework(self):
        pipeline = build_algorithm("DP", 3)
        assert isinstance(pipeline, ClusteringPipeline)
        assert pipeline.framework is None
        assert pipeline.algorithm_name == "DP"

    def test_grbm_algorithm_configuration(self):
        pipeline = build_algorithm("K-means+GRBM", 3, n_hidden=16, n_epochs=5)
        config = pipeline.framework.config
        assert config.model == "grbm"
        assert config.n_hidden == 16
        assert config.preprocessing == "standardize"
        assert pipeline.algorithm_name == "K-means+GRBM"

    def test_sls_grbm_uses_paper_eta(self):
        pipeline = build_algorithm("DP+slsGRBM", 3)
        assert pipeline.framework.config.eta == pytest.approx(0.4)

    def test_sls_rbm_uses_paper_eta_and_binarisation(self):
        pipeline = build_algorithm("AP+slsRBM", 2)
        config = pipeline.framework.config
        assert config.eta == pytest.approx(0.5)
        assert config.preprocessing == "median_binarize"
        assert config.supervision_preprocessing == "standardize"

    def test_config_overrides(self):
        pipeline = build_algorithm(
            "K-means+slsGRBM", 3, config_overrides={"eta": 0.7, "voting": "majority"}
        )
        assert pipeline.framework.config.eta == pytest.approx(0.7)
        assert pipeline.framework.config.voting == "majority"

    def test_unknown_clusterer(self):
        with pytest.raises(ValidationError):
            build_algorithm("DBSCAN+slsGRBM", 3)

    def test_unknown_model(self):
        with pytest.raises(ValidationError):
            build_algorithm("DP+VAE", 3)

    def test_build_grid(self):
        grid = build_algorithm_grid(DATASETS_I_ALGORITHMS, 3, n_hidden=8, n_epochs=2)
        assert set(grid) == set(DATASETS_I_ALGORITHMS)
        assert all(isinstance(p, ClusteringPipeline) for p in grid.values())


class TestAlgorithmSpec:
    """Grid cells expressed in the registry spec format."""

    def test_spec_is_json_and_builds_same_cell(self):
        import json

        from repro import registry
        from repro.experiments.grids import algorithm_spec

        spec = algorithm_spec("DP+slsRBM", 3, n_hidden=8, n_epochs=2)
        json.dumps(spec)  # plain JSON
        pipeline = registry.build(spec)
        direct = build_algorithm("DP+slsRBM", 3, n_hidden=8, n_epochs=2)
        assert pipeline.algorithm_name == direct.algorithm_name == "DP+slsRBM"
        assert pipeline.framework.config == direct.framework.config

    def test_raw_cell_spec_has_no_framework(self):
        from repro.experiments.grids import algorithm_spec

        spec = algorithm_spec("K-means", 4)
        assert "framework" not in spec["params"]
        assert spec["params"]["clusterer"] == "kmeans"

    def test_runner_accepts_spec_cells(self):
        import numpy as np

        from repro.datasets import load_uci_dataset
        from repro.experiments.grids import algorithm_spec
        from repro.experiments.runner import ExperimentRunner

        dataset = load_uci_dataset("IR", scale=0.5, random_state=0)
        spec = algorithm_spec(
            "K-means+slsRBM", dataset.n_classes, n_hidden=6, n_epochs=2
        )
        by_name = ExperimentRunner(
            ("K-means+slsRBM",), n_hidden=6, n_epochs=2, random_state=0
        ).run_cell(dataset, "K-means+slsRBM")
        by_spec_runner = ExperimentRunner(
            (spec,), n_hidden=6, n_epochs=2, random_state=0
        )
        assert by_spec_runner.algorithm_names == ("K-means+slsRBM",)
        by_spec = by_spec_runner.run_cell(dataset, "K-means+slsRBM")
        assert by_spec.algorithm == by_name.algorithm
        for metric, value in by_name.mean.items():
            assert np.isclose(by_spec.mean[metric], value)


    def test_runner_rejects_generic_pipeline_spec(self):
        import pytest

        from repro.exceptions import ValidationError
        from repro.experiments.runner import ExperimentRunner

        generic = {"type": "pipeline", "params": {"steps": [
            ["cluster", {"type": "kmeans", "params": {"n_clusters": 2}}],
        ]}}
        with pytest.raises(ValidationError, match="clustering_pipeline"):
            ExperimentRunner((generic,))
