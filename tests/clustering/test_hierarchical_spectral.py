"""Tests for the extra ensemble clusterers (agglomerative, spectral)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.hierarchical import AgglomerativeClustering
from repro.clustering.spectral import SpectralClustering
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestAgglomerative:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = AgglomerativeClustering(3).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.95

    def test_number_of_clusters(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        model = AgglomerativeClustering(5).fit(data)
        assert model.n_clusters_found_ == 5

    @pytest.mark.parametrize("linkage", ["ward", "complete", "average", "single"])
    def test_all_linkages_run(self, blobs_dataset, linkage):
        data, _ = blobs_dataset
        labels = AgglomerativeClustering(3, linkage=linkage).fit_predict(data)
        assert labels.shape == (data.shape[0],)

    def test_invalid_linkage(self):
        with pytest.raises(ValidationError):
            AgglomerativeClustering(2, linkage="centroid")

    def test_labels_start_at_zero(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = AgglomerativeClustering(3).fit_predict(data)
        assert labels.min() == 0

    def test_more_clusters_than_samples_raises(self):
        with pytest.raises(ValidationError):
            AgglomerativeClustering(10).fit(np.zeros((3, 2)))

    def test_name_mentions_linkage(self):
        assert "ward" in AgglomerativeClustering(2).name


class TestSpectral:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = SpectralClustering(3, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.9

    def test_number_of_clusters(self, blobs_dataset):
        data, _ = blobs_dataset
        model = SpectralClustering(3, random_state=0).fit(data)
        assert model.n_clusters_found_ == 3

    def test_embedding_shape(self, blobs_dataset):
        data, _ = blobs_dataset
        model = SpectralClustering(3, random_state=0).fit(data)
        assert model.embedding_.shape == (data.shape[0], 3)

    def test_custom_gamma(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = SpectralClustering(3, gamma=0.5, random_state=0).fit_predict(data)
        assert labels.shape == (data.shape[0],)

    def test_invalid_gamma(self):
        with pytest.raises(ValidationError):
            SpectralClustering(2, gamma=-1.0)

    def test_concentric_structure(self):
        # Two rings: spectral clustering separates them, K-means-style
        # centroid methods cannot.  This validates the graph construction.
        rng = np.random.default_rng(0)
        angles = rng.uniform(0, 2 * np.pi, 120)
        radii = np.concatenate([np.full(60, 1.0), np.full(60, 6.0)])
        radii = radii + rng.normal(0, 0.05, 120)
        data = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        labels_true = np.concatenate([np.zeros(60, int), np.ones(60, int)])
        predicted = SpectralClustering(2, gamma=2.0, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels_true, predicted) > 0.95


class TestSparseSpectral:
    """The sparse k-NN affinity + Lanczos back end (perf-backlog satellite)."""

    def test_sparse_matches_dense_on_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        dense = SpectralClustering(3, affinity="dense", random_state=0).fit(data)
        sparse = SpectralClustering(
            3, affinity="sparse", n_neighbors=15, random_state=0
        ).fit(data)
        assert dense.affinity_mode_ == "dense"
        assert sparse.affinity_mode_ == "sparse"
        assert clustering_accuracy(labels, dense.labels_) > 0.95
        assert clustering_accuracy(labels, sparse.labels_) > 0.95

    def test_auto_picks_dense_for_small_inputs(self, blobs_dataset):
        data, _ = blobs_dataset
        model = SpectralClustering(3, random_state=0).fit(data)
        assert model.affinity_mode_ == "dense"

    def test_auto_switches_to_sparse_above_threshold(self, blobs_dataset):
        data, _ = blobs_dataset
        model = SpectralClustering(
            3, dense_threshold=10, random_state=0
        ).fit(data)
        assert model.affinity_mode_ == "sparse"

    def test_sparse_falls_back_to_dense_for_tiny_n(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((6, 3))
        model = SpectralClustering(
            2, affinity="sparse", n_neighbors=10, random_state=0
        ).fit(data)
        assert model.affinity_mode_ == "dense"

    def test_sparse_is_deterministic(self, blobs_dataset):
        data, _ = blobs_dataset
        kwargs = dict(affinity="sparse", n_neighbors=12, random_state=3)
        a = SpectralClustering(3, **kwargs).fit_predict(data)
        b = SpectralClustering(3, **kwargs).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_sparse_chunked_sweep_matches_unchunked(self, blobs_dataset):
        data, _ = blobs_dataset
        small = SpectralClustering(
            3, affinity="sparse", n_neighbors=12, chunk_size=7, random_state=0
        ).fit_predict(data)
        large = SpectralClustering(
            3, affinity="sparse", n_neighbors=12, chunk_size=1024, random_state=0
        ).fit_predict(data)
        np.testing.assert_array_equal(small, large)

    def test_invalid_affinity(self):
        with pytest.raises(ValidationError):
            SpectralClustering(2, affinity="rbf")

    def test_sparse_concentric_structure(self):
        rng = np.random.default_rng(5)
        n = 120
        angles = rng.uniform(0, 2 * np.pi, n)
        radii = np.concatenate([np.full(n // 2, 1.0), np.full(n // 2, 6.0)])
        radii = radii + rng.normal(scale=0.05, size=n)
        data = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        truth = np.concatenate([np.zeros(n // 2, int), np.ones(n // 2, int)])
        # Enough neighbours to keep each ring one connected component; with
        # fewer, a ring legitimately splits into disconnected arcs and the
        # two smallest eigenvectors span an arbitrary indicator subspace.
        predicted = SpectralClustering(
            2, affinity="sparse", n_neighbors=15, random_state=0
        ).fit_predict(data)
        assert clustering_accuracy(truth, predicted) > 0.95
