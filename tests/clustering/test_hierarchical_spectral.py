"""Tests for the extra ensemble clusterers (agglomerative, spectral)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.hierarchical import AgglomerativeClustering
from repro.clustering.spectral import SpectralClustering
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestAgglomerative:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = AgglomerativeClustering(3).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.95

    def test_number_of_clusters(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        model = AgglomerativeClustering(5).fit(data)
        assert model.n_clusters_found_ == 5

    @pytest.mark.parametrize("linkage", ["ward", "complete", "average", "single"])
    def test_all_linkages_run(self, blobs_dataset, linkage):
        data, _ = blobs_dataset
        labels = AgglomerativeClustering(3, linkage=linkage).fit_predict(data)
        assert labels.shape == (data.shape[0],)

    def test_invalid_linkage(self):
        with pytest.raises(ValidationError):
            AgglomerativeClustering(2, linkage="centroid")

    def test_labels_start_at_zero(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = AgglomerativeClustering(3).fit_predict(data)
        assert labels.min() == 0

    def test_more_clusters_than_samples_raises(self):
        with pytest.raises(ValidationError):
            AgglomerativeClustering(10).fit(np.zeros((3, 2)))

    def test_name_mentions_linkage(self):
        assert "ward" in AgglomerativeClustering(2).name


class TestSpectral:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = SpectralClustering(3, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.9

    def test_number_of_clusters(self, blobs_dataset):
        data, _ = blobs_dataset
        model = SpectralClustering(3, random_state=0).fit(data)
        assert model.n_clusters_found_ == 3

    def test_embedding_shape(self, blobs_dataset):
        data, _ = blobs_dataset
        model = SpectralClustering(3, random_state=0).fit(data)
        assert model.embedding_.shape == (data.shape[0], 3)

    def test_custom_gamma(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = SpectralClustering(3, gamma=0.5, random_state=0).fit_predict(data)
        assert labels.shape == (data.shape[0],)

    def test_invalid_gamma(self):
        with pytest.raises(ValidationError):
            SpectralClustering(2, gamma=-1.0)

    def test_concentric_structure(self):
        # Two rings: spectral clustering separates them, K-means-style
        # centroid methods cannot.  This validates the graph construction.
        rng = np.random.default_rng(0)
        angles = rng.uniform(0, 2 * np.pi, 120)
        radii = np.concatenate([np.full(60, 1.0), np.full(60, 6.0)])
        radii = radii + rng.normal(0, 0.05, 120)
        data = np.column_stack([radii * np.cos(angles), radii * np.sin(angles)])
        labels_true = np.concatenate([np.zeros(60, int), np.ones(60, int)])
        predicted = SpectralClustering(2, gamma=2.0, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels_true, predicted) > 0.95
