"""Tests for the K-means implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans, kmeans_plus_plus
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import clustering_accuracy


class TestKMeansPlusPlus:
    def test_returns_requested_number_of_centers(self, blobs_dataset):
        data, _ = blobs_dataset
        centers = kmeans_plus_plus(data, 3, np.random.default_rng(0))
        assert centers.shape == (3, data.shape[1])

    def test_centers_are_data_points(self, blobs_dataset):
        data, _ = blobs_dataset
        centers = kmeans_plus_plus(data, 4, np.random.default_rng(1))
        for center in centers:
            assert np.any(np.all(np.isclose(data, center), axis=1))

    def test_duplicate_data_does_not_crash(self):
        data = np.tile([[1.0, 2.0]], (20, 1))
        centers = kmeans_plus_plus(data, 3, np.random.default_rng(2))
        assert centers.shape == (3, 2)


class TestKMeans:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = KMeans(3, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.95

    def test_labels_in_range(self, blobs_dataset):
        data, _ = blobs_dataset
        model = KMeans(3, random_state=0).fit(data)
        assert set(np.unique(model.labels_)) <= {0, 1, 2}

    def test_produces_exactly_k_clusters(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        model = KMeans(5, random_state=0).fit(data)
        assert model.n_clusters_found_ == 5

    def test_inertia_decreases_with_more_clusters(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        inertia_2 = KMeans(2, random_state=0).fit(data).inertia_
        inertia_6 = KMeans(6, random_state=0).fit(data).inertia_
        assert inertia_6 < inertia_2

    def test_reproducible_with_seed(self, blobs_dataset):
        data, _ = blobs_dataset
        a = KMeans(3, random_state=7).fit_predict(data)
        b = KMeans(3, random_state=7).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_predict_assigns_nearest_center(self, blobs_dataset):
        data, _ = blobs_dataset
        model = KMeans(3, random_state=0).fit(data)
        predictions = model.predict(model.cluster_centers_)
        np.testing.assert_array_equal(predictions, np.arange(3))

    def test_centers_shape(self, blobs_dataset):
        data, _ = blobs_dataset
        model = KMeans(3, random_state=0).fit(data)
        assert model.cluster_centers_.shape == (3, data.shape[1])

    def test_single_cluster(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = KMeans(1, random_state=0).fit_predict(data)
        assert np.all(labels == 0)

    def test_more_clusters_than_samples_raises(self):
        data = np.random.default_rng(0).normal(size=(4, 2))
        with pytest.raises(ValidationError):
            KMeans(10, random_state=0).fit(data)

    def test_not_fitted_predict_raises(self):
        model = KMeans(2)
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((2, 2)))

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            KMeans(0)
        with pytest.raises(ValidationError):
            KMeans(2, n_init=0)
        with pytest.raises(ValidationError):
            KMeans(2, tol=-1.0)

    def test_constant_data(self):
        data = np.ones((10, 3))
        labels = KMeans(2, random_state=0, n_init=2).fit_predict(data)
        assert labels.shape == (10,)

    def test_fit_returns_self(self, blobs_dataset):
        data, _ = blobs_dataset
        model = KMeans(3, random_state=0)
        assert model.fit(data) is model

    def test_name(self):
        assert KMeans(2).name == "K-means"
