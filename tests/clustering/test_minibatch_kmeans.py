"""Tests for the mini-batch K-means clusterer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import KMeans, MiniBatchKMeans
from repro.exceptions import NotFittedError, ValidationError
from repro.metrics import clustering_accuracy


class TestMiniBatchKMeans:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = MiniBatchKMeans(3, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.95

    def test_close_to_exact_kmeans_inertia(self, blobs_dataset):
        data, _ = blobs_dataset
        exact = KMeans(3, random_state=0).fit(data)
        streaming = MiniBatchKMeans(3, random_state=0).fit(data)
        assert streaming.inertia_ <= 1.5 * exact.inertia_

    def test_reproducible_with_seed(self, blobs_dataset):
        data, _ = blobs_dataset
        a = MiniBatchKMeans(3, random_state=4).fit_predict(data)
        b = MiniBatchKMeans(3, random_state=4).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_batch_larger_than_data_is_clipped(self, blobs_dataset):
        data, labels = blobs_dataset
        model = MiniBatchKMeans(3, batch_size=10_000, random_state=0).fit(data)
        assert clustering_accuracy(labels, model.labels_) > 0.9

    def test_keeps_k_clusters_alive(self, blobs_dataset):
        data, _ = blobs_dataset
        model = MiniBatchKMeans(3, batch_size=16, random_state=0).fit(data)
        assert model.n_clusters_found_ == 3
        assert model.cluster_centers_.shape == (3, data.shape[1])

    def test_predict_new_samples(self, blobs_dataset):
        data, _ = blobs_dataset
        model = MiniBatchKMeans(3, random_state=0).fit(data)
        assigned = model.predict(data[:7])
        np.testing.assert_array_equal(assigned, model.labels_[:7])

    def test_unfitted_predict_raises(self):
        with pytest.raises(NotFittedError):
            MiniBatchKMeans(2).predict(np.zeros((3, 2)))

    def test_validation(self):
        with pytest.raises(ValidationError):
            MiniBatchKMeans(2, reassignment_ratio=1.5)
        with pytest.raises(ValidationError):
            MiniBatchKMeans(5).fit(np.zeros((3, 2)))
