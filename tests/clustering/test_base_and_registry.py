"""Tests for the clusterer base class and the registry factory."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering import (
    AffinityPropagation,
    AgglomerativeClustering,
    BaseClusterer,
    DensityPeaks,
    KMeans,
    SpectralClustering,
    available_clusterers,
    make_clusterer,
)
from repro.exceptions import NotFittedError, ValidationError


class _DummyClusterer(BaseClusterer):
    """Trivial clusterer assigning everything to cluster 0 (for base tests)."""

    def _fit(self, data):
        self.labels_ = np.zeros(data.shape[0], dtype=int)


class _BrokenClusterer(BaseClusterer):
    """Clusterer that forgets to set labels_ (contract violation)."""

    def _fit(self, data):
        pass


class TestBaseClusterer:
    def test_fit_sets_metadata(self, blobs_dataset):
        data, _ = blobs_dataset
        model = _DummyClusterer().fit(data)
        assert model.n_samples_ == data.shape[0]
        assert model.n_features_ == data.shape[1]
        assert model.n_clusters_found_ == 1

    def test_fit_predict_returns_labels(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = _DummyClusterer().fit_predict(data)
        assert labels.shape == (data.shape[0],)

    def test_unfitted_access_raises(self):
        with pytest.raises(NotFittedError):
            _ = _DummyClusterer().n_clusters_found_

    def test_missing_labels_contract_violation(self, blobs_dataset):
        data, _ = blobs_dataset
        with pytest.raises(RuntimeError, match="labels_"):
            _BrokenClusterer().fit(data)

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            _DummyClusterer().fit(np.zeros(5))

    def test_rejects_nan_input(self):
        with pytest.raises(ValidationError):
            _DummyClusterer().fit(np.array([[np.nan, 1.0]]))


class TestRegistry:
    def test_available_names(self):
        names = available_clusterers()
        assert {"dp", "kmeans", "ap"} <= set(names)

    @pytest.mark.parametrize(
        "name, expected_type",
        [
            ("kmeans", KMeans),
            ("K-Means", KMeans),
            ("ap", AffinityPropagation),
            ("affinity_propagation", AffinityPropagation),
            ("dp", DensityPeaks),
            ("density_peaks", DensityPeaks),
            ("agglomerative", AgglomerativeClustering),
            ("spectral", SpectralClustering),
        ],
    )
    def test_factory_types(self, name, expected_type):
        assert isinstance(make_clusterer(name, 3), expected_type)

    def test_unknown_name_raises(self):
        with pytest.raises(ValidationError, match="unknown clusterer"):
            make_clusterer("dbscan", 3)

    def test_n_clusters_forwarded(self):
        model = make_clusterer("kmeans", 5)
        assert model.n_clusters == 5

    def test_ap_receives_target(self):
        model = make_clusterer("ap", 4)
        assert model.target_n_clusters == 4

    def test_random_state_forwarded(self, blobs_dataset):
        data, _ = blobs_dataset
        a = make_clusterer("kmeans", 3, random_state=1).fit_predict(data)
        b = make_clusterer("kmeans", 3, random_state=1).fit_predict(data)
        np.testing.assert_array_equal(a, b)
