"""Tests for Density Peaks clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.density_peaks import DensityPeaks
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestDensityPeaks:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = DensityPeaks(3).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.9

    def test_number_of_clusters_respected(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        model = DensityPeaks(4).fit(data)
        assert model.n_clusters_found_ == 4

    def test_every_sample_assigned(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = DensityPeaks(3).fit_predict(data)
        assert np.all(labels >= 0)

    def test_centers_have_high_decision_values(self, blobs_dataset):
        data, _ = blobs_dataset
        model = DensityPeaks(3).fit(data)
        decision = model.rho_ * model.delta_
        center_values = decision[model.center_indices_]
        non_center = np.delete(decision, model.center_indices_)
        assert center_values.min() >= np.percentile(non_center, 90)

    def test_deterministic(self, blobs_dataset):
        data, _ = blobs_dataset
        a = DensityPeaks(3).fit_predict(data)
        b = DensityPeaks(3).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_cutoff_kernel(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = DensityPeaks(3, kernel="cutoff").fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.8

    def test_auto_cluster_selection(self, blobs_dataset):
        data, _ = blobs_dataset
        model = DensityPeaks(None).fit(data)
        assert 1 <= model.n_clusters_found_ <= 10

    def test_rho_and_delta_shapes(self, blobs_dataset):
        data, _ = blobs_dataset
        model = DensityPeaks(3).fit(data)
        assert model.rho_.shape == (data.shape[0],)
        assert model.delta_.shape == (data.shape[0],)
        assert np.all(model.delta_ >= 0)

    def test_invalid_kernel(self):
        with pytest.raises(ValidationError):
            DensityPeaks(2, kernel="tophat")

    def test_invalid_percentile(self):
        with pytest.raises(ValidationError):
            DensityPeaks(2, dc_percentile=0.0)

    def test_too_many_clusters_raises(self):
        data = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError):
            DensityPeaks(10).fit(data)

    def test_name(self):
        assert DensityPeaks(2).name == "DP"

    def test_chunk_size_does_not_change_results(self, blobs_dataset):
        data, _ = blobs_dataset
        whole = DensityPeaks(3, chunk_size=100_000).fit(data)
        chunked = DensityPeaks(3, chunk_size=7).fit(data)
        np.testing.assert_array_equal(whole.labels_, chunked.labels_)
        # BLAS gemm results differ at ulp level between block shapes, so the
        # chunked workspace is identical only up to rounding.
        np.testing.assert_allclose(whole.rho_, chunked.rho_, rtol=1e-10)
        np.testing.assert_allclose(whole.delta_, chunked.delta_, rtol=1e-10)
        assert whole.dc_ == pytest.approx(chunked.dc_, rel=1e-12)

    def test_dc_matches_off_diagonal_percentile(self, blobs_dataset):
        from repro.utils.numerics import pairwise_squared_distances

        data, _ = blobs_dataset
        model = DensityPeaks(3).fit(data)
        distances = np.sqrt(pairwise_squared_distances(data))
        off_diagonal = distances[~np.eye(distances.shape[0], dtype=bool)]
        assert model.dc_ == pytest.approx(
            np.percentile(off_diagonal, model.dc_percentile), abs=1e-12
        )

    def test_invalid_chunk_size(self):
        with pytest.raises(ValidationError):
            DensityPeaks(2, chunk_size=0)

    def test_duplicate_rows_do_not_degenerate_dc(self):
        # x.x + y.y - 2 x.y cancellation noise on coincident rows must not
        # masquerade as tiny positive distances and wreck the d_c percentile.
        rng = np.random.default_rng(3)
        data = rng.normal(size=(57, 4))
        data[10:20] = data[0]
        model = DensityPeaks(3).fit(data)
        assert model.dc_ > 1e-3
        assert np.bincount(model.labels_).max() < 50  # not one giant cluster

    def test_tied_distances_resolve_to_densest_neighbour(self):
        # Binary data with duplicated rows produces exact distance ties; the
        # nearest-higher-density neighbour must break them by density (the
        # pre-vectorisation behaviour), not by sample index.
        rng = np.random.default_rng(5)
        base = (rng.random((40, 8)) < 0.5).astype(float)
        data = np.vstack([base, base[:20]])
        labels = DensityPeaks(3).fit_predict(data)
        # Duplicated rows are distance-0 twins and must co-cluster.
        np.testing.assert_array_equal(labels[:20], labels[40:])

    def test_members_follow_higher_density_neighbour(self):
        # Two tight groups: assignment by nearest higher-density neighbour
        # must keep each group together.
        rng = np.random.default_rng(1)
        data = np.vstack(
            [rng.normal(0, 0.2, size=(20, 2)), rng.normal(6, 0.2, size=(20, 2))]
        )
        labels = DensityPeaks(2).fit_predict(data)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
