"""Tests for Density Peaks clustering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clustering.density_peaks import DensityPeaks
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestDensityPeaks:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = DensityPeaks(3).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.9

    def test_number_of_clusters_respected(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        model = DensityPeaks(4).fit(data)
        assert model.n_clusters_found_ == 4

    def test_every_sample_assigned(self, blobs_dataset):
        data, _ = blobs_dataset
        labels = DensityPeaks(3).fit_predict(data)
        assert np.all(labels >= 0)

    def test_centers_have_high_decision_values(self, blobs_dataset):
        data, _ = blobs_dataset
        model = DensityPeaks(3).fit(data)
        decision = model.rho_ * model.delta_
        center_values = decision[model.center_indices_]
        non_center = np.delete(decision, model.center_indices_)
        assert center_values.min() >= np.percentile(non_center, 90)

    def test_deterministic(self, blobs_dataset):
        data, _ = blobs_dataset
        a = DensityPeaks(3).fit_predict(data)
        b = DensityPeaks(3).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_cutoff_kernel(self, blobs_dataset):
        data, labels = blobs_dataset
        predicted = DensityPeaks(3, kernel="cutoff").fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.8

    def test_auto_cluster_selection(self, blobs_dataset):
        data, _ = blobs_dataset
        model = DensityPeaks(None).fit(data)
        assert 1 <= model.n_clusters_found_ <= 10

    def test_rho_and_delta_shapes(self, blobs_dataset):
        data, _ = blobs_dataset
        model = DensityPeaks(3).fit(data)
        assert model.rho_.shape == (data.shape[0],)
        assert model.delta_.shape == (data.shape[0],)
        assert np.all(model.delta_ >= 0)

    def test_invalid_kernel(self):
        with pytest.raises(ValidationError):
            DensityPeaks(2, kernel="tophat")

    def test_invalid_percentile(self):
        with pytest.raises(ValidationError):
            DensityPeaks(2, dc_percentile=0.0)

    def test_too_many_clusters_raises(self):
        data = np.random.default_rng(0).normal(size=(5, 2))
        with pytest.raises(ValidationError):
            DensityPeaks(10).fit(data)

    def test_name(self):
        assert DensityPeaks(2).name == "DP"

    def test_members_follow_higher_density_neighbour(self):
        # Two tight groups: assignment by nearest higher-density neighbour
        # must keep each group together.
        rng = np.random.default_rng(1)
        data = np.vstack(
            [rng.normal(0, 0.2, size=(20, 2)), rng.normal(6, 0.2, size=(20, 2))]
        )
        labels = DensityPeaks(2).fit_predict(data)
        assert len(set(labels[:20])) == 1
        assert len(set(labels[20:])) == 1
