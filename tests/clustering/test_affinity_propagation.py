"""Tests for Affinity Propagation."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.clustering.affinity_propagation import AffinityPropagation
from repro.exceptions import ValidationError
from repro.metrics import clustering_accuracy


class TestAffinityPropagation:
    def test_recovers_separated_blobs(self, blobs_dataset):
        data, labels = blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            predicted = AffinityPropagation(
                target_n_clusters=3, random_state=0
            ).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.9

    def test_exemplars_are_their_own_cluster(self, blobs_dataset):
        data, _ = blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = AffinityPropagation(random_state=0).fit(data)
        for cluster_id, exemplar in enumerate(model.cluster_centers_indices_):
            assert model.labels_[exemplar] == cluster_id

    def test_every_sample_labelled(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            labels = AffinityPropagation(random_state=0).fit_predict(data)
        assert labels.shape == (data.shape[0],)
        assert np.all(labels >= 0)

    def test_target_n_clusters_steers_cluster_count(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = AffinityPropagation(target_n_clusters=3, random_state=0).fit(data)
        # The bisection search should land close to the target.
        assert 2 <= model.n_clusters_found_ <= 5

    def test_preference_override(self, blobs_dataset):
        data, _ = blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            # A very negative preference discourages exemplars -> few clusters.
            few = AffinityPropagation(preference=-1e6, random_state=0).fit(data)
            many = AffinityPropagation(preference=-1e-3, random_state=0).fit(data)
        assert few.n_clusters_found_ <= many.n_clusters_found_

    def test_reproducible_with_seed(self, blobs_dataset):
        data, _ = blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            a = AffinityPropagation(random_state=5).fit_predict(data)
            b = AffinityPropagation(random_state=5).fit_predict(data)
        np.testing.assert_array_equal(a, b)

    def test_requires_two_samples(self):
        with pytest.raises(ValidationError):
            AffinityPropagation().fit(np.zeros((1, 3)))

    def test_invalid_damping(self):
        with pytest.raises(ValidationError):
            AffinityPropagation(damping=0.3)
        with pytest.raises(ValidationError):
            AffinityPropagation(damping=1.0)

    def test_name(self):
        assert AffinityPropagation().name == "AP"

    def test_two_obvious_groups(self):
        rng = np.random.default_rng(0)
        data = np.vstack(
            [rng.normal(0, 0.1, size=(15, 2)), rng.normal(8, 0.1, size=(15, 2))]
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            labels = AffinityPropagation(random_state=0).fit_predict(data)
        # Samples within each tight group should share a label.
        assert len(set(labels[:15])) == 1
        assert len(set(labels[15:])) == 1
        assert labels[0] != labels[-1]


class TestDampingSchedule:
    """Adaptive damping satellite: oscillation raises damping instead of
    silently burning max_iter."""

    def test_constant_schedule_keeps_damping(self, blobs_dataset):
        data, _ = blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = AffinityPropagation(damping=0.7, random_state=0).fit(data)
        assert model.final_damping_ == 0.7

    def test_invalid_schedule(self):
        with pytest.raises(ValidationError):
            AffinityPropagation(damping_schedule="linear")
        with pytest.raises(ValidationError):
            AffinityPropagation(damping_increment=0.0)
        with pytest.raises(ValidationError):
            AffinityPropagation(max_damping=1.5)

    def test_adaptive_never_exceeds_ceiling(self, hard_blobs_dataset):
        data, _ = hard_blobs_dataset
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = AffinityPropagation(
                damping=0.5,
                damping_schedule="adaptive",
                max_damping=0.9,
                max_iter=80,
                random_state=0,
            ).fit(data)
        assert 0.5 <= model.final_damping_ <= 0.9

    def test_adaptive_raises_damping_on_oscillation(self):
        # A duplicated grid of points produces heavily degenerate
        # similarities — the classic oscillation trigger for AP.
        base = np.mgrid[0:4, 0:4].reshape(2, -1).T.astype(float)
        data = np.vstack([base, base, base])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            constant = AffinityPropagation(
                damping=0.5, max_iter=120, random_state=0
            ).fit(data)
            adaptive = AffinityPropagation(
                damping=0.5,
                damping_schedule="adaptive",
                max_iter=120,
                random_state=0,
            ).fit(data)
        assert constant.final_damping_ == 0.5
        assert adaptive.final_damping_ > 0.5

    def test_nonconvergence_warning_names_max_iter(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((40, 3))
        from repro.exceptions import ConvergenceWarning

        with pytest.warns(ConvergenceWarning, match="max_iter"):
            AffinityPropagation(
                damping=0.5, max_iter=3, convergence_iter=2, random_state=0
            ).fit(data)

    def test_adaptive_warning_mentions_schedule(self):
        rng = np.random.default_rng(0)
        data = rng.standard_normal((40, 3))
        from repro.exceptions import ConvergenceWarning

        with pytest.warns(ConvergenceWarning, match="adaptive damping"):
            AffinityPropagation(
                damping=0.5,
                damping_schedule="adaptive",
                max_iter=6,
                convergence_iter=2,
                random_state=0,
            ).fit(data)
