"""End-to-end integration tests.

These exercise the full paper pipeline on reduced-size analogues of the two
dataset suites and check the *qualitative* claims of the evaluation: the
sls-model features must not be worse than the plain-model features for the
same downstream clusterer, and the whole grid must produce valid metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_msra_mm_dataset, load_uci_dataset
from repro.experiments.grids import build_algorithm
from repro.experiments.runner import ExperimentRunner
from repro.datasets.base import Dataset, DatasetSuite


@pytest.fixture(scope="module")
def small_msra() -> Dataset:
    return load_msra_mm_dataset("BO", scale=0.15, random_state=0)


@pytest.fixture(scope="module")
def small_uci() -> Dataset:
    return load_uci_dataset("IR", scale=1.0, random_state=0)


class TestDatasetsIPipeline:
    def test_grbm_family_grid_runs(self, small_msra):
        for name in ("K-means", "K-means+GRBM", "K-means+slsGRBM"):
            pipeline = build_algorithm(
                name, small_msra.n_classes, n_hidden=16, n_epochs=5, random_state=0
            )
            result = pipeline.run(small_msra)
            assert 0.0 <= result.report.accuracy <= 1.0
            assert 0.0 <= result.report.purity <= 1.0
            assert 0.0 <= result.report.fmi <= 1.0

    def test_sls_features_not_degenerate(self, small_msra):
        pipeline = build_algorithm(
            "K-means+slsGRBM", small_msra.n_classes, n_hidden=16, n_epochs=5, random_state=0
        )
        features = pipeline.framework.fit_transform(small_msra.data)
        assert features.std() > 1e-4
        assert np.all(np.isfinite(features))


class TestDatasetsIIPipeline:
    def test_rbm_family_grid_runs(self, small_uci):
        for name in ("DP", "DP+RBM", "DP+slsRBM"):
            pipeline = build_algorithm(
                name, small_uci.n_classes, n_hidden=16, n_epochs=10, random_state=0
            )
            result = pipeline.run(small_uci)
            assert 0.0 <= result.report.accuracy <= 1.0
            assert 0.0 <= result.report.rand <= 1.0

    def test_sls_rbm_beats_plain_rbm_on_average(self):
        """The paper's headline qualitative claim on datasets II.

        Averaged over datasets and base clusterers, the slsRBM features must
        give at least as good accuracy as the plain RBM features.
        """
        datasets = [
            load_uci_dataset("IR", random_state=0),
            load_uci_dataset("BCW", scale=0.4, random_state=0),
        ]
        suite = DatasetSuite("mini-uci", datasets)
        runner = ExperimentRunner(
            ("K-means+RBM", "K-means+slsRBM"),
            n_repeats=1,
            n_hidden=24,
            n_epochs=15,
            batch_size=32,
            random_state=0,
        )
        table = runner.run_suite(suite)
        averages = table.column_averages("accuracy")
        assert averages["K-means+slsRBM"] >= averages["K-means+RBM"] - 0.02


class TestFullGridSmoke:
    def test_mini_experiment_table(self):
        data_set = load_uci_dataset("IR", random_state=0)
        suite = DatasetSuite("ir-only", [data_set])
        runner = ExperimentRunner(
            ("DP", "DP+RBM", "DP+slsRBM"),
            n_repeats=1,
            n_hidden=16,
            n_epochs=8,
            random_state=0,
        )
        table = runner.run_suite(suite)
        rows = table.rows("accuracy")
        assert rows[-1]["dataset"] == "Average"
        for algorithm in ("DP", "DP+RBM", "DP+slsRBM"):
            assert 0.0 <= rows[0][algorithm] <= 1.0
