"""Tests for the preprocessing transforms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.datasets.preprocessing import (
    binarize,
    clip_unit_interval,
    median_binarize,
    minmax_scale,
    standardize,
)


class TestStandardize:
    def test_zero_mean_unit_variance(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 3.0, size=(200, 4))
        out = standardize(data)
        np.testing.assert_allclose(out.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_feature_handled(self):
        data = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        out = standardize(data)
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out[:, 0], 0.0)

    def test_shape_preserved(self):
        out = standardize(np.random.default_rng(1).normal(size=(7, 3)))
        assert out.shape == (7, 3)

    @given(arrays(np.float64, st.tuples(st.integers(2, 30), st.integers(1, 5)),
                  elements=st.floats(-1e3, 1e3)))
    @settings(max_examples=40, deadline=None)
    def test_idempotent_on_varying_features(self, data):
        out = standardize(data)
        twice = standardize(out)
        np.testing.assert_allclose(out, twice, atol=1e-6)


class TestMinMaxScale:
    def test_range(self):
        rng = np.random.default_rng(2)
        out = minmax_scale(rng.normal(size=(50, 3)))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_custom_range(self):
        out = minmax_scale(np.array([[0.0], [10.0]]), feature_range=(-1.0, 1.0))
        np.testing.assert_allclose(out.ravel(), [-1.0, 1.0])

    def test_constant_feature_maps_to_midpoint(self):
        out = minmax_scale(np.full((5, 1), 3.0))
        np.testing.assert_allclose(out, 0.5)

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            minmax_scale(np.zeros((2, 2)), feature_range=(1.0, 0.0))


class TestBinarize:
    def test_threshold(self):
        out = binarize(np.array([[0.2, 0.7], [0.5, 0.9]]), threshold=0.5)
        np.testing.assert_array_equal(out, [[0.0, 1.0], [0.0, 1.0]])

    def test_output_is_binary(self):
        rng = np.random.default_rng(3)
        out = binarize(rng.random((20, 4)))
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestMedianBinarize:
    def test_balanced_activation(self):
        rng = np.random.default_rng(4)
        data = rng.normal(size=(101, 6))
        out = median_binarize(data)
        rates = out.mean(axis=0)
        assert np.all(rates > 0.3) and np.all(rates < 0.7)

    def test_binary_output(self):
        rng = np.random.default_rng(5)
        out = median_binarize(rng.normal(size=(30, 3)))
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_already_binary_data(self):
        data = np.array([[0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        out = median_binarize(data)
        assert set(np.unique(out)) <= {0.0, 1.0}


class TestClipUnitInterval:
    def test_clipping(self):
        out = clip_unit_interval(np.array([[-0.5, 0.5, 1.5]]))
        np.testing.assert_array_equal(out, [[0.0, 0.5, 1.0]])
