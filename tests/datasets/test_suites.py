"""Tests for the MSRA-MM-like and UCI-like dataset suites."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.msra_mm import MSRA_MM_SPECS, load_msra_mm_dataset, load_msra_mm_suite
from repro.datasets.uci import UCI_SPECS, load_uci_dataset, load_uci_suite
from repro.exceptions import DatasetError


class TestMsraMmSpecs:
    def test_nine_datasets(self):
        assert len(MSRA_MM_SPECS) == 9

    def test_paper_table_ii_shapes(self):
        by_abbr = {s.abbreviation: s for s in MSRA_MM_SPECS}
        assert by_abbr["BO"].n_samples == 896 and by_abbr["BO"].n_features == 892
        assert by_abbr["WA"].n_samples == 922 and by_abbr["WA"].n_features == 899
        assert by_abbr["VI"].n_samples == 799
        assert all(s.n_classes == 3 for s in MSRA_MM_SPECS)


class TestLoadMsraMm:
    def test_scaled_load_shapes(self):
        dataset = load_msra_mm_dataset("BO", scale=0.1)
        assert dataset.n_samples == round(896 * 0.1)
        assert dataset.n_features == round(892 * 0.1)
        assert dataset.n_classes == 3

    def test_full_scale_matches_spec(self):
        dataset = load_msra_mm_dataset("VI", scale=1.0)
        assert dataset.n_samples == 799
        assert dataset.n_features == 899

    def test_reproducible(self):
        a = load_msra_mm_dataset("WA", scale=0.05, random_state=1)
        b = load_msra_mm_dataset("WA", scale=0.05, random_state=1)
        np.testing.assert_array_equal(a.data, b.data)

    def test_different_datasets_differ(self):
        a = load_msra_mm_dataset("BO", scale=0.05, random_state=0)
        b = load_msra_mm_dataset("WR", scale=0.05, random_state=0)
        assert a.data.shape != b.data.shape or not np.allclose(
            a.data[: min(len(a.data), len(b.data))],
            b.data[: min(len(a.data), len(b.data))],
        )

    def test_unknown_abbreviation(self):
        with pytest.raises(DatasetError):
            load_msra_mm_dataset("XX")

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_msra_mm_dataset("BO", scale=0.0)

    def test_metadata_marks_synthetic(self):
        dataset = load_msra_mm_dataset("BO", scale=0.05)
        assert dataset.metadata["synthetic"] is True
        assert dataset.metadata["paper_table"] == "II"

    def test_suite_contains_all_nine(self):
        suite = load_msra_mm_suite(scale=0.05)
        assert len(suite) == 9
        assert suite.abbreviations == [s.abbreviation for s in MSRA_MM_SPECS]


class TestUciSpecs:
    def test_six_datasets(self):
        assert len(UCI_SPECS) == 6

    def test_paper_table_iii_shapes(self):
        by_abbr = {s.abbreviation: s for s in UCI_SPECS}
        assert by_abbr["HS"].n_samples == 306 and by_abbr["HS"].n_features == 3
        assert by_abbr["QB"].n_samples == 1055 and by_abbr["QB"].n_features == 41
        assert by_abbr["BCW"].n_samples == 569 and by_abbr["BCW"].n_features == 32
        assert by_abbr["IR"].n_samples == 150 and by_abbr["IR"].n_classes == 3


class TestLoadUci:
    def test_full_scale_shapes(self):
        dataset = load_uci_dataset("SH")
        assert dataset.n_samples == 267
        assert dataset.n_features == 22
        assert dataset.n_classes == 2

    def test_iris_analogue_is_easy(self):
        from repro.clustering import KMeans
        from repro.metrics import clustering_accuracy

        dataset = load_uci_dataset("IR")
        predicted = KMeans(3, random_state=0).fit_predict(dataset.data)
        assert clustering_accuracy(dataset.labels, predicted) > 0.85

    def test_binary_generator_produces_binary_features(self):
        dataset = load_uci_dataset("SC")
        assert set(np.unique(dataset.data)) <= {0.0, 1.0}

    def test_class_imbalance_preserved(self):
        dataset = load_uci_dataset("SC")
        counts = np.bincount(dataset.labels)
        assert counts.max() / counts.sum() > 0.75  # SC is highly imbalanced

    def test_reproducible(self):
        a = load_uci_dataset("QB", scale=0.2, random_state=3)
        b = load_uci_dataset("QB", scale=0.2, random_state=3)
        np.testing.assert_array_equal(a.data, b.data)

    def test_unknown_abbreviation(self):
        with pytest.raises(DatasetError):
            load_uci_dataset("ABC")

    def test_suite_order(self):
        suite = load_uci_suite(scale=0.3)
        assert suite.abbreviations == ["HS", "QB", "SH", "SC", "BCW", "IR"]

    def test_summary_table(self):
        suite = load_uci_suite(scale=0.3)
        rows = suite.summary_table()
        assert len(rows) == 6
        assert rows[5]["abbreviation"] == "IR"
