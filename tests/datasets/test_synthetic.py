"""Tests for the synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.synthetic import (
    make_blobs,
    make_high_dimensional_mixture,
    make_overlapping_binary_clusters,
)
from repro.metrics import clustering_accuracy
from repro.clustering import KMeans


class TestMakeBlobs:
    def test_shapes(self):
        data, labels = make_blobs(50, 4, 3, random_state=0)
        assert data.shape == (50, 4)
        assert labels.shape == (50,)

    def test_all_classes_present(self):
        _, labels = make_blobs(60, 3, 4, random_state=0)
        assert set(np.unique(labels)) == {0, 1, 2, 3}

    def test_weights_control_class_sizes(self):
        _, labels = make_blobs(100, 2, 2, weights=[0.8, 0.2], random_state=0)
        counts = np.bincount(labels)
        assert counts[0] == 80 and counts[1] == 20

    def test_reproducible(self):
        a = make_blobs(30, 2, 2, random_state=5)
        b = make_blobs(30, 2, 2, random_state=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_separated_blobs_are_clusterable(self):
        data, labels = make_blobs(90, 5, 3, cluster_std=0.3, center_spread=8.0,
                                  random_state=1)
        predicted = KMeans(3, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.95

    @given(st.integers(5, 60), st.integers(1, 6), st.integers(1, 4))
    @settings(max_examples=25, deadline=None)
    def test_counts_always_sum_to_n(self, n, d, k):
        data, labels = make_blobs(n, d, k, random_state=0)
        assert data.shape == (n, d)
        assert labels.shape == (n,)
        assert np.bincount(labels, minlength=k).sum() == n


class TestHighDimensionalMixture:
    def test_shapes_and_nonnegativity(self):
        data, labels = make_high_dimensional_mixture(80, 200, 3, random_state=0)
        assert data.shape == (80, 200)
        assert labels.shape == (80,)
        assert data.min() >= 0.0

    def test_informative_cap(self):
        data, _ = make_high_dimensional_mixture(
            30, 10, 2, n_informative=50, random_state=0
        )
        assert data.shape == (30, 10)

    def test_difficulty_increases_with_noise(self):
        easy_data, easy_labels = make_high_dimensional_mixture(
            150, 60, 3, separation=6.0, noise_std=0.3, random_state=2
        )
        hard_data, hard_labels = make_high_dimensional_mixture(
            150, 60, 3, separation=1.0, noise_std=2.0, random_state=2
        )
        easy_acc = clustering_accuracy(
            easy_labels, KMeans(3, random_state=0).fit_predict(easy_data)
        )
        hard_acc = clustering_accuracy(
            hard_labels, KMeans(3, random_state=0).fit_predict(hard_data)
        )
        assert easy_acc > hard_acc

    def test_class_imbalance(self):
        _, labels = make_high_dimensional_mixture(
            100, 20, 3, weights=np.array([0.5, 0.3, 0.2]), random_state=0
        )
        counts = np.bincount(labels)
        assert counts[0] > counts[1] > counts[2]


class TestOverlappingBinaryClusters:
    def test_values_are_binary(self):
        data, _ = make_overlapping_binary_clusters(40, 15, 2, random_state=0)
        assert set(np.unique(data)) <= {0.0, 1.0}

    def test_shapes(self):
        data, labels = make_overlapping_binary_clusters(40, 15, 3, random_state=0)
        assert data.shape == (40, 15)
        assert labels.shape == (40,)

    def test_low_noise_is_easy(self):
        data, labels = make_overlapping_binary_clusters(
            100, 30, 2, flip_probability=0.02, random_state=1
        )
        predicted = KMeans(2, random_state=0).fit_predict(data)
        assert clustering_accuracy(labels, predicted) > 0.95

    def test_flip_probability_controls_overlap(self):
        easy = make_overlapping_binary_clusters(
            120, 30, 2, flip_probability=0.05, random_state=3
        )
        hard = make_overlapping_binary_clusters(
            120, 30, 2, flip_probability=0.45, random_state=3
        )
        easy_acc = clustering_accuracy(
            easy[1], KMeans(2, random_state=0).fit_predict(easy[0])
        )
        hard_acc = clustering_accuracy(
            hard[1], KMeans(2, random_state=0).fit_predict(hard[0])
        )
        assert easy_acc > hard_acc

    def test_invalid_sizes(self):
        with pytest.raises(Exception):
            make_overlapping_binary_clusters(0, 5, 2)
