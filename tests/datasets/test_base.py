"""Tests for the Dataset / DatasetSuite containers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.base import Dataset, DatasetSuite
from repro.exceptions import DatasetError, ValidationError


def _make_dataset(abbreviation="DS", n=10, d=3, k=2):
    rng = np.random.default_rng(0)
    return Dataset(
        name=f"dataset-{abbreviation}",
        abbreviation=abbreviation,
        data=rng.normal(size=(n, d)),
        labels=rng.integers(0, k, size=n),
        metadata={"synthetic": True},
    )


class TestDataset:
    def test_properties(self):
        dataset = _make_dataset(n=12, d=4, k=3)
        assert dataset.n_samples == 12
        assert dataset.n_features == 4
        assert dataset.n_classes <= 3

    def test_summary_matches_paper_columns(self):
        summary = _make_dataset().summary()
        assert set(summary) == {"name", "abbreviation", "classes", "instances", "features"}

    def test_label_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            Dataset("x", "X", np.zeros((5, 2)), np.zeros(4, dtype=int))

    def test_nan_data_rejected(self):
        data = np.zeros((3, 2))
        data[0, 0] = np.nan
        with pytest.raises(ValidationError):
            Dataset("x", "X", data, np.zeros(3, dtype=int))

    def test_is_frozen(self):
        dataset = _make_dataset()
        with pytest.raises(AttributeError):
            dataset.name = "other"  # type: ignore[misc]


class TestDatasetSuite:
    def test_iteration_order(self):
        suite = DatasetSuite("suite", [_make_dataset("A"), _make_dataset("B")])
        assert [d.abbreviation for d in suite] == ["A", "B"]

    def test_lookup_by_abbreviation_and_index(self):
        a, b = _make_dataset("A"), _make_dataset("B")
        suite = DatasetSuite("suite", [a, b])
        assert suite["B"] is b
        assert suite[0] is a

    def test_unknown_abbreviation_raises(self):
        suite = DatasetSuite("suite", [_make_dataset("A")])
        with pytest.raises(DatasetError):
            suite["Z"]

    def test_duplicate_abbreviations_rejected(self):
        with pytest.raises(DatasetError):
            DatasetSuite("suite", [_make_dataset("A"), _make_dataset("A")])

    def test_empty_suite_rejected(self):
        with pytest.raises(DatasetError):
            DatasetSuite("suite", [])

    def test_summary_table_has_numbering(self):
        suite = DatasetSuite("suite", [_make_dataset("A"), _make_dataset("B")])
        rows = suite.summary_table()
        assert [row["No."] for row in rows] == [1, 2]

    def test_len(self):
        suite = DatasetSuite("suite", [_make_dataset("A"), _make_dataset("B")])
        assert len(suite) == 2
