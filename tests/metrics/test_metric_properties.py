"""Hypothesis property tests on the external clustering metrics.

These invariants must hold for *any* pair of label vectors:

* all metrics stay inside their documented ranges;
* every metric is invariant to a relabelling (permutation of cluster ids) of
  the prediction;
* comparing a partition with itself gives the maximal value;
* accuracy is never smaller than for the trivial single-cluster prediction.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    clustering_accuracy,
    fowlkes_mallows_index,
    normalized_mutual_information,
    purity_score,
    rand_index,
)

label_vectors = st.integers(2, 40).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
    )
)


@given(label_vectors)
@settings(max_examples=60, deadline=None)
def test_metrics_stay_in_unit_interval(pair):
    true, pred = np.array(pair[0]), np.array(pair[1])
    for metric in (
        clustering_accuracy,
        purity_score,
        rand_index,
        fowlkes_mallows_index,
        normalized_mutual_information,
    ):
        value = metric(true, pred)
        assert 0.0 <= value <= 1.0 + 1e-12


@given(label_vectors, st.permutations(list(range(5))))
@settings(max_examples=60, deadline=None)
def test_metrics_invariant_to_prediction_relabelling(pair, permutation):
    true, pred = np.array(pair[0]), np.array(pair[1])
    relabelled = np.array([permutation[p] for p in pred])
    for metric in (
        clustering_accuracy,
        purity_score,
        rand_index,
        fowlkes_mallows_index,
        normalized_mutual_information,
    ):
        # Exact for the pair-counting metrics; tiny float differences are
        # possible for NMI because the summation order changes.
        assert abs(metric(true, pred) - metric(true, relabelled)) < 1e-9


@given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_self_comparison_is_maximal(labels):
    labels = np.array(labels)
    assert clustering_accuracy(labels, labels) == 1.0
    assert purity_score(labels, labels) == 1.0
    assert rand_index(labels, labels) == 1.0
    assert normalized_mutual_information(labels, labels) >= 1.0 - 1e-9


@given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_single_cluster_prediction_scores_majority_fraction(true):
    # Predicting one big cluster maps it to the majority class, so both
    # accuracy and purity equal the largest class fraction.
    true = np.array(true)
    single = np.zeros_like(true)
    majority_fraction = np.max(np.bincount(true)) / true.shape[0]
    assert clustering_accuracy(true, single) == majority_fraction
    assert purity_score(true, single) == majority_fraction


@given(label_vectors)
@settings(max_examples=60, deadline=None)
def test_purity_upper_bounds_accuracy(pair):
    # Purity credits every cluster with its majority class without requiring a
    # one-to-one mapping, so it can never be below the mapped accuracy.
    true, pred = np.array(pair[0]), np.array(pair[1])
    assert purity_score(true, pred) >= clustering_accuracy(true, pred) - 1e-12
