"""General hypothesis property suite for the external clustering metrics.

Extends the PR 2 relabelling-invariance regression (kept in
``test_metric_properties.py``) into a systematic suite over
``repro.metrics``:

* **range bounds** — every score stays inside its documented interval,
  including the adjusted Rand index which may be negative but never below
  -1 (or above 1);
* **permutation invariance** — relabelling the *true* labels (not just the
  prediction) never changes any score;
* **symmetry** — the pair-counting and information-theoretic metrics, and
  mapped accuracy, are symmetric in their arguments; purity deliberately is
  not, and its asymmetry direction is pinned down;
* **self/degenerate comparisons** — maximal on identical partitions,
  well-defined on single-cluster inputs.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    adjusted_rand_index,
    clustering_accuracy,
    fowlkes_mallows_index,
    normalized_mutual_information,
    purity_score,
    rand_index,
)

MAX_LABEL = 5

label_pairs = st.integers(2, 50).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, MAX_LABEL - 1), min_size=n, max_size=n),
        st.lists(st.integers(0, MAX_LABEL - 1), min_size=n, max_size=n),
    )
)

SYMMETRIC_METRICS = (
    rand_index,
    adjusted_rand_index,
    fowlkes_mallows_index,
    normalized_mutual_information,
)

UNIT_INTERVAL_METRICS = (
    clustering_accuracy,
    purity_score,
    rand_index,
    fowlkes_mallows_index,
    normalized_mutual_information,
)


@given(label_pairs)
@settings(max_examples=60, deadline=None)
def test_range_bounds(pair):
    true, pred = np.array(pair[0]), np.array(pair[1])
    for metric in UNIT_INTERVAL_METRICS:
        value = metric(true, pred)
        assert 0.0 <= value <= 1.0 + 1e-12, metric.__name__
    ari = adjusted_rand_index(true, pred)
    assert -1.0 - 1e-12 <= ari <= 1.0 + 1e-12


@given(label_pairs, st.permutations(list(range(MAX_LABEL))))
@settings(max_examples=60, deadline=None)
def test_invariance_to_true_label_permutation(pair, permutation):
    # PR 2 locked in invariance under *prediction* relabelling; the same must
    # hold when the ground-truth ids are renamed.
    true, pred = np.array(pair[0]), np.array(pair[1])
    renamed = np.array([permutation[t] for t in true])
    for metric in UNIT_INTERVAL_METRICS + (adjusted_rand_index,):
        assert abs(metric(true, pred) - metric(renamed, pred)) < 1e-9, (
            metric.__name__
        )


@given(label_pairs)
@settings(max_examples=60, deadline=None)
def test_symmetry_where_applicable(pair):
    true, pred = np.array(pair[0]), np.array(pair[1])
    for metric in SYMMETRIC_METRICS:
        assert abs(metric(true, pred) - metric(pred, true)) < 1e-9, (
            metric.__name__
        )


@given(label_pairs)
@settings(max_examples=60, deadline=None)
def test_accuracy_symmetric_for_equal_cluster_counts(pair):
    # The mapped accuracy assigns surplus clusters by majority, so it is
    # only symmetric when both partitions use the same number of clusters
    # (the mapping is then a one-to-one matching, whose optimum is
    # direction-free).  E.g. accuracy([0,0], [0,1]) == 1.0 — two predicted
    # clusters both map onto the single class — while the reverse is 0.5.
    true, pred = np.array(pair[0]), np.array(pair[1])
    if len(np.unique(true)) == len(np.unique(pred)):
        assert abs(
            clustering_accuracy(true, pred) - clustering_accuracy(pred, true)
        ) < 1e-9


@given(label_pairs)
@settings(max_examples=60, deadline=None)
def test_purity_asymmetry_direction(pair):
    # purity(true, pred) credits each predicted cluster with its majority
    # class; swapping the arguments measures the reverse containment.  Each
    # direction upper-bounds the mapped accuracy of the same direction (the
    # directions themselves need not agree — see the accuracy symmetry test).
    true, pred = np.array(pair[0]), np.array(pair[1])
    assert purity_score(true, pred) >= clustering_accuracy(true, pred) - 1e-12
    assert purity_score(pred, true) >= clustering_accuracy(pred, true) - 1e-12


@given(st.lists(st.integers(0, MAX_LABEL - 1), min_size=2, max_size=50))
@settings(max_examples=60, deadline=None)
def test_self_comparison_is_maximal(labels):
    labels = np.array(labels)
    assert clustering_accuracy(labels, labels) == 1.0
    assert purity_score(labels, labels) == 1.0
    assert rand_index(labels, labels) == 1.0
    # FMI counts co-membership pairs, so an all-singletons partition has
    # zero true-positive pairs and scores 0 even against itself.
    if np.max(np.bincount(labels)) > 1:
        assert fowlkes_mallows_index(labels, labels) >= 1.0 - 1e-9
    assert normalized_mutual_information(labels, labels) >= 1.0 - 1e-9
    if len(set(labels.tolist())) > 1:
        assert adjusted_rand_index(labels, labels) == 1.0


@given(st.lists(st.integers(0, MAX_LABEL - 1), min_size=2, max_size=50))
@settings(max_examples=60, deadline=None)
def test_label_offset_invariance(labels):
    # Cluster ids are nominal: shifting every id by a constant is a
    # relabelling and must not change any score.
    true = np.array(labels)
    pred = np.roll(true, 1)
    for metric in UNIT_INTERVAL_METRICS + (adjusted_rand_index,):
        assert abs(metric(true, pred) - metric(true + 7, pred)) < 1e-9, (
            metric.__name__
        )
        assert abs(metric(true, pred) - metric(true, pred + 3)) < 1e-9, (
            metric.__name__
        )


@given(label_pairs)
@settings(max_examples=60, deadline=None)
def test_duplicating_every_sample_preserves_pair_metrics(pair):
    # Pair-counting metrics are defined on the co-membership relation, and
    # accuracy/purity on per-sample fractions; all are invariant under
    # replicating the whole sample set (pairs scale consistently).
    true, pred = np.array(pair[0]), np.array(pair[1])
    doubled_true = np.concatenate([true, true])
    doubled_pred = np.concatenate([pred, pred])
    for metric in (clustering_accuracy, purity_score):
        assert abs(
            metric(true, pred) - metric(doubled_true, doubled_pred)
        ) < 1e-9, metric.__name__


@given(st.integers(2, 40))
@settings(max_examples=30, deadline=None)
def test_singleton_prediction_extremes(n):
    # All-singletons prediction: purity is 1 (every cluster trivially pure),
    # while FMI is defined and stays in range.
    rng = np.random.default_rng(n)
    true = rng.integers(0, 3, size=n)
    singletons = np.arange(n)
    assert purity_score(true, singletons) == 1.0
    assert 0.0 <= fowlkes_mallows_index(true, singletons) <= 1.0
