"""Tests for the aggregate clustering report."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.report import ClusteringReport, evaluate_clustering


class TestEvaluateClustering:
    def test_perfect_clustering_all_ones(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        report = evaluate_clustering(labels, labels)
        assert report.accuracy == 1.0
        assert report.purity == 1.0
        assert report.rand == 1.0
        assert report.fmi == 1.0
        assert report.nmi == pytest.approx(1.0)

    def test_metadata_fields(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 2, 2])
        report = evaluate_clustering(true, pred)
        assert report.n_samples == 4
        assert report.n_clusters == 3

    def test_as_dict_keys(self):
        labels = np.array([0, 1, 0, 1])
        report = evaluate_clustering(labels, labels)
        assert set(report.as_dict()) == {
            "accuracy",
            "purity",
            "rand",
            "adjusted_rand",
            "fmi",
            "nmi",
        }

    def test_getitem(self):
        labels = np.array([0, 1, 0, 1])
        report = evaluate_clustering(labels, labels)
        assert report["accuracy"] == report.accuracy

    def test_getitem_unknown_key_raises(self):
        labels = np.array([0, 1])
        report = evaluate_clustering(labels, labels)
        with pytest.raises(KeyError):
            report["not_a_metric"]

    def test_is_frozen(self):
        labels = np.array([0, 1])
        report = evaluate_clustering(labels, labels)
        with pytest.raises(AttributeError):
            report.accuracy = 0.0  # type: ignore[misc]

    def test_all_metrics_in_unit_interval(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 3, 60)
        pred = rng.integers(0, 4, 60)
        report = evaluate_clustering(true, pred)
        for name, value in report.as_dict().items():
            if name == "adjusted_rand":
                assert -1.0 <= value <= 1.0
            else:
                assert 0.0 <= value <= 1.0, name

    def test_report_dataclass_direct_construction(self):
        report = ClusteringReport(
            accuracy=0.5,
            purity=0.6,
            rand=0.7,
            adjusted_rand=0.2,
            fmi=0.4,
            nmi=0.3,
            n_samples=10,
            n_clusters=2,
        )
        assert report["purity"] == 0.6
