"""Tests for repro.metrics.contingency."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.metrics.contingency import (
    contingency_matrix,
    pair_confusion_matrix,
    relabel_consecutive,
)


class TestRelabelConsecutive:
    def test_arbitrary_labels(self):
        codes, uniques = relabel_consecutive(np.array([10, 5, 10, 7]))
        np.testing.assert_array_equal(uniques, [5, 7, 10])
        np.testing.assert_array_equal(codes, [2, 0, 2, 1])

    def test_already_consecutive(self):
        codes, uniques = relabel_consecutive(np.array([0, 1, 2, 0]))
        np.testing.assert_array_equal(codes, [0, 1, 2, 0])
        np.testing.assert_array_equal(uniques, [0, 1, 2])


class TestContingencyMatrix:
    def test_identity_partition(self):
        labels = np.array([0, 0, 1, 1, 2])
        table = contingency_matrix(labels, labels)
        np.testing.assert_array_equal(table, np.diag([2, 2, 1]))

    def test_counts_sum_to_n(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([1, 1, 0, 2, 2, 2])
        assert contingency_matrix(true, pred).sum() == 6

    def test_shape_follows_unique_labels(self):
        table = contingency_matrix([0, 0, 1], [5, 9, 5])
        assert table.shape == (2, 2)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValidationError):
            contingency_matrix([0, 1], [0, 1, 2])


class TestPairConfusionMatrix:
    def test_identical_partitions_have_no_disagreements(self):
        labels = np.array([0, 0, 1, 1])
        pairs = pair_confusion_matrix(labels, labels)
        # 2 same-same pairs (within each cluster), 4 diff-diff pairs.
        assert pairs[1, 1] == 2
        assert pairs[0, 0] == 4
        assert pairs[0, 1] == 0 and pairs[1, 0] == 0

    def test_total_is_number_of_pairs(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 3, size=25)
        pred = rng.integers(0, 4, size=25)
        pairs = pair_confusion_matrix(true, pred)
        assert pairs.sum() == pytest.approx(25 * 24 / 2)

    def test_opposite_partitions(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        pairs = pair_confusion_matrix(true, pred)
        assert pairs[1, 1] == 0  # no pair co-clustered in both

    def test_counts_non_negative(self):
        rng = np.random.default_rng(5)
        true = rng.integers(0, 5, size=40)
        pred = rng.integers(0, 2, size=40)
        assert np.all(pair_confusion_matrix(true, pred) >= 0)
