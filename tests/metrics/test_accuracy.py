"""Tests for clustering accuracy (Eq. 36)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.accuracy import best_label_mapping, clustering_accuracy


class TestBestLabelMapping:
    def test_permuted_labels_recovered(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([2, 2, 0, 0, 1, 1])
        mapping = best_label_mapping(true, pred)
        assert mapping == {2: 0, 0: 1, 1: 2}

    def test_extra_clusters_fall_back_to_majority(self):
        true = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 2, 1, 1, 3])
        mapping = best_label_mapping(true, pred)
        assert mapping[0] == 0 and mapping[1] == 1
        assert mapping[2] in (0, 1) and mapping[3] in (0, 1)

    def test_arbitrary_label_values(self):
        true = np.array([10, 10, 20, 20])
        pred = np.array([7, 7, 3, 3])
        mapping = best_label_mapping(true, pred)
        assert mapping == {7: 10, 3: 20}


class TestClusteringAccuracy:
    def test_perfect_clustering(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert clustering_accuracy(labels, labels) == 1.0

    def test_permutation_invariance(self):
        true = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([1, 1, 2, 2, 0, 0])
        assert clustering_accuracy(true, pred) == 1.0

    def test_partial_agreement(self):
        true = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([0, 0, 1, 1, 1, 1])
        assert clustering_accuracy(true, pred) == pytest.approx(5 / 6)

    def test_single_cluster_prediction(self):
        true = np.array([0, 0, 1, 1])
        pred = np.zeros(4, dtype=int)
        assert clustering_accuracy(true, pred) == pytest.approx(0.5)

    def test_bounds(self):
        rng = np.random.default_rng(0)
        true = rng.integers(0, 3, 50)
        pred = rng.integers(0, 3, 50)
        value = clustering_accuracy(true, pred)
        assert 0.0 <= value <= 1.0

    def test_accuracy_at_least_largest_class_fraction(self):
        # Mapping every cluster to the majority class can always achieve the
        # largest class frequency, and the optimal mapping can only do better
        # when there are at least as many clusters as classes.
        true = np.array([0] * 7 + [1] * 3)
        pred = np.array([0, 1] * 5)
        assert clustering_accuracy(true, pred) >= 0.5

    def test_symmetric_in_number_of_samples(self):
        true = [0, 1]
        pred = [1, 0]
        assert clustering_accuracy(true, pred) == 1.0
