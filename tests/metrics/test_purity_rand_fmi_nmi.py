"""Tests for purity, Rand index, ARI, FMI and NMI."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.fmi import fowlkes_mallows_index
from repro.metrics.nmi import normalized_mutual_information
from repro.metrics.purity import purity_score
from repro.metrics.rand import adjusted_rand_index, rand_index


@pytest.fixture
def perfect():
    labels = np.array([0, 0, 1, 1, 2, 2])
    return labels, labels


@pytest.fixture
def permuted():
    true = np.array([0, 0, 1, 1, 2, 2])
    pred = np.array([2, 2, 0, 0, 1, 1])
    return true, pred


class TestPurity:
    def test_perfect(self, perfect):
        assert purity_score(*perfect) == 1.0

    def test_permutation_invariant(self, permuted):
        assert purity_score(*permuted) == 1.0

    def test_single_cluster_equals_majority_fraction(self):
        true = np.array([0, 0, 0, 1])
        pred = np.zeros(4, dtype=int)
        assert purity_score(true, pred) == pytest.approx(0.75)

    def test_singleton_clusters_have_purity_one(self):
        true = np.array([0, 0, 1, 1])
        pred = np.arange(4)
        assert purity_score(true, pred) == 1.0

    def test_known_textbook_example(self):
        # 3 clusters x 6 points, classic IR example with purity 0.71...
        true = np.array([0, 0, 0, 0, 0, 1, 0, 1, 1, 1, 1, 2, 0, 0, 2, 2, 2])
        pred = np.array([0] * 6 + [1] * 6 + [2] * 5)
        assert purity_score(true, pred) == pytest.approx((5 + 4 + 3) / 17)


class TestRandIndex:
    def test_perfect(self, perfect):
        assert rand_index(*perfect) == 1.0

    def test_permutation_invariant(self, permuted):
        assert rand_index(*permuted) == 1.0

    def test_known_value(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 1, 0, 1])
        # pairs: ss=0, sd=2, ds=2, dd=2 -> rand = 2/6
        assert rand_index(true, pred) == pytest.approx(2 / 6)

    def test_bounds(self):
        rng = np.random.default_rng(1)
        true = rng.integers(0, 4, 60)
        pred = rng.integers(0, 3, 60)
        assert 0.0 <= rand_index(true, pred) <= 1.0


class TestAdjustedRandIndex:
    def test_perfect(self, perfect):
        assert adjusted_rand_index(*perfect) == 1.0

    def test_random_labels_near_zero(self):
        rng = np.random.default_rng(2)
        true = rng.integers(0, 3, 3000)
        pred = rng.integers(0, 3, 3000)
        assert abs(adjusted_rand_index(true, pred)) < 0.05

    def test_upper_bounded_by_one(self):
        rng = np.random.default_rng(3)
        true = rng.integers(0, 3, 100)
        pred = rng.integers(0, 5, 100)
        assert adjusted_rand_index(true, pred) <= 1.0


class TestFMI:
    def test_perfect(self, perfect):
        assert fowlkes_mallows_index(*perfect) == 1.0

    def test_permutation_invariant(self, permuted):
        assert fowlkes_mallows_index(*permuted) == 1.0

    def test_all_singletons_is_zero(self):
        true = np.array([0, 0, 1, 1])
        pred = np.arange(4)
        assert fowlkes_mallows_index(true, pred) == 0.0

    def test_known_value(self):
        true = np.array([0, 0, 1, 1])
        pred = np.array([0, 0, 0, 1])
        # TP=1, FP=2, FN=1 -> sqrt(1/3 * 1/2)
        assert fowlkes_mallows_index(true, pred) == pytest.approx(np.sqrt(1 / 6))

    def test_bounds(self):
        rng = np.random.default_rng(4)
        true = rng.integers(0, 3, 80)
        pred = rng.integers(0, 4, 80)
        assert 0.0 <= fowlkes_mallows_index(true, pred) <= 1.0


class TestNMI:
    def test_perfect(self, perfect):
        assert normalized_mutual_information(*perfect) == pytest.approx(1.0)

    def test_permutation_invariant(self, permuted):
        assert normalized_mutual_information(*permuted) == pytest.approx(1.0)

    def test_independent_labels_near_zero(self):
        rng = np.random.default_rng(5)
        true = rng.integers(0, 3, 5000)
        pred = rng.integers(0, 3, 5000)
        assert normalized_mutual_information(true, pred) < 0.01

    def test_single_cluster_both_sides(self):
        labels = np.zeros(10, dtype=int)
        assert normalized_mutual_information(labels, labels) == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(6)
        true = rng.integers(0, 4, 70)
        pred = rng.integers(0, 2, 70)
        assert 0.0 <= normalized_mutual_information(true, pred) <= 1.0
