"""Tests for repro.utils.numerics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import array_shapes, arrays

from repro.utils.numerics import (
    log1pexp,
    logsumexp,
    pairwise_squared_distances,
    sigmoid,
    softmax,
    squared_norm,
    stable_log,
)


class TestSigmoid:
    def test_midpoint(self):
        assert sigmoid(np.array(0.0)) == pytest.approx(0.5)

    def test_symmetry(self):
        x = np.linspace(-10, 10, 41)
        np.testing.assert_allclose(sigmoid(x) + sigmoid(-x), np.ones_like(x))

    def test_extreme_values_do_not_overflow(self):
        values = sigmoid(np.array([-1e4, -500.0, 500.0, 1e4]))
        assert np.all(np.isfinite(values))
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[-1] == pytest.approx(1.0, abs=1e-12)

    def test_matches_naive_formula_in_safe_range(self):
        x = np.linspace(-20, 20, 101)
        naive = 1.0 / (1.0 + np.exp(-x))
        np.testing.assert_allclose(sigmoid(x), naive, rtol=1e-12)

    def test_preserves_shape(self):
        x = np.zeros((3, 4, 5))
        assert sigmoid(x).shape == (3, 4, 5)

    @given(arrays(np.float64, array_shapes(max_dims=2, max_side=6),
                  elements=st.floats(-1e6, 1e6)))
    @settings(max_examples=50, deadline=None)
    def test_range_property(self, x):
        out = sigmoid(x)
        assert np.all(out >= 0.0) and np.all(out <= 1.0)


class TestLog1pExp:
    def test_matches_naive_for_small_values(self):
        x = np.linspace(-20, 20, 81)
        np.testing.assert_allclose(log1pexp(x), np.log1p(np.exp(x)), rtol=1e-10)

    def test_large_values_linear(self):
        x = np.array([50.0, 500.0, 5e5])
        np.testing.assert_allclose(log1pexp(x), x, rtol=1e-10)

    def test_monotone(self):
        x = np.linspace(-100, 100, 500)
        assert np.all(np.diff(log1pexp(x)) >= 0)


class TestLogSumExp:
    def test_scalar_reduction(self):
        x = np.log(np.array([1.0, 2.0, 3.0]))
        assert logsumexp(x) == pytest.approx(np.log(6.0))

    def test_axis_reduction(self):
        x = np.log(np.arange(1, 7, dtype=float)).reshape(2, 3)
        expected = np.log(np.exp(x).sum(axis=1))
        np.testing.assert_allclose(logsumexp(x, axis=1), expected)

    def test_handles_large_magnitudes(self):
        x = np.array([1000.0, 1000.0])
        assert logsumexp(x) == pytest.approx(1000.0 + np.log(2.0))


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = np.random.default_rng(0).normal(size=(4, 6))
        np.testing.assert_allclose(softmax(x, axis=1).sum(axis=1), np.ones(4))

    def test_shift_invariance(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(x), softmax(x + 100.0))


class TestStableLog:
    def test_zero_does_not_produce_inf(self):
        assert np.isfinite(stable_log(np.array([0.0]))).all()

    def test_positive_values_unchanged(self):
        x = np.array([0.5, 1.0, 2.0])
        np.testing.assert_allclose(stable_log(x), np.log(x))


class TestSquaredNorm:
    def test_simple(self):
        assert squared_norm(np.array([3.0, 4.0])) == pytest.approx(25.0)

    def test_matrix_is_flattened(self):
        x = np.ones((2, 3))
        assert squared_norm(x) == pytest.approx(6.0)


class TestPairwiseSquaredDistances:
    def test_self_distances_zero_diagonal(self):
        x = np.random.default_rng(1).normal(size=(10, 3))
        d = pairwise_squared_distances(x)
        np.testing.assert_allclose(np.diag(d), np.zeros(10), atol=1e-9)

    def test_symmetry(self):
        x = np.random.default_rng(2).normal(size=(8, 4))
        d = pairwise_squared_distances(x)
        np.testing.assert_allclose(d, d.T, atol=1e-9)

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        a = rng.normal(size=(6, 5))
        b = rng.normal(size=(4, 5))
        d = pairwise_squared_distances(a, b)
        expected = np.array(
            [[np.sum((ai - bj) ** 2) for bj in b] for ai in a]
        )
        np.testing.assert_allclose(d, expected, rtol=1e-9)

    def test_non_negative(self):
        x = np.full((5, 2), 3.14159)
        assert np.all(pairwise_squared_distances(x) >= 0.0)

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            pairwise_squared_distances(np.ones((3, 2)), np.ones((3, 4)))

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            pairwise_squared_distances(np.ones(3))

    @given(arrays(np.float64, st.tuples(st.integers(1, 8), st.integers(1, 5)),
                  elements=st.floats(-100, 100)))
    @settings(max_examples=50, deadline=None)
    def test_triangle_like_property(self, x):
        d = pairwise_squared_distances(x)
        assert np.all(d >= 0)
        np.testing.assert_allclose(np.diag(d), 0.0, atol=1e-6)
