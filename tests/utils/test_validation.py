"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_labels,
    check_positive_int,
    check_probability,
    check_same_length,
)


class TestCheckArray:
    def test_converts_lists(self):
        arr = check_array([[1, 2], [3, 4]])
        assert arr.dtype == float and arr.shape == (2, 2)

    def test_wrong_ndim_raises(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_array([1.0, 2.0])

    def test_custom_ndim(self):
        assert check_array([1.0, 2.0], ndim=1).shape == (2,)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([[1.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError, match="NaN or infinite"):
            check_array([[np.inf, 1.0]])

    def test_empty_rejected_by_default(self):
        with pytest.raises(ValidationError, match="empty"):
            check_array(np.empty((0, 3)))

    def test_empty_allowed_when_requested(self):
        arr = check_array(np.empty((0, 3)), allow_empty=True)
        assert arr.shape == (0, 3)


class TestCheckLabels:
    def test_accepts_integer_list(self):
        labels = check_labels([0, 1, 2, 1])
        assert labels.dtype.kind == "i"

    def test_accepts_integral_floats(self):
        labels = check_labels(np.array([0.0, 1.0, 2.0]))
        assert labels.dtype.kind == "i"

    def test_rejects_fractional_floats(self):
        with pytest.raises(ValidationError, match="integers"):
            check_labels([0.5, 1.0])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_labels([[0, 1]])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError, match="empty"):
            check_labels([])

    def test_length_check(self):
        with pytest.raises(ValidationError, match="entries"):
            check_labels([0, 1], n_samples=3)


class TestCheckSameLength:
    def test_consistent_lengths_pass(self):
        check_same_length(np.zeros(3), np.ones(3))

    def test_inconsistent_lengths_raise(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            check_same_length(np.zeros(3), np.ones(4), names=("a", "b"))


class TestScalarChecks:
    def test_positive_int_ok(self):
        assert check_positive_int(5, name="x") == 5

    @pytest.mark.parametrize("value", [0, -1, 2.5, True, "3"])
    def test_positive_int_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive_int(value, name="x")

    def test_probability_open_interval(self):
        assert check_probability(0.4, name="eta") == pytest.approx(0.4)
        with pytest.raises(ValidationError):
            check_probability(0.0, name="eta")
        with pytest.raises(ValidationError):
            check_probability(1.0, name="eta")

    def test_probability_inclusive(self):
        assert check_probability(0.0, name="p", inclusive=True) == 0.0
        assert check_probability(1.0, name="p", inclusive=True) == 1.0

    def test_in_range(self):
        assert check_in_range(0.7, name="damping", low=0.5, high=1.0) == 0.7
        with pytest.raises(ValidationError):
            check_in_range(0.4, name="damping", low=0.5, high=1.0)
