"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import check_random_state, spawn_children


class TestCheckRandomState:
    def test_none_returns_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = check_random_state(1).random(5)
        b = check_random_state(2).random(5)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert check_random_state(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(check_random_state(np.int64(7)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            check_random_state("seed")


class TestSpawnChildren:
    def test_count(self):
        children = spawn_children(0, 4)
        assert len(children) == 4
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent_streams(self):
        children = spawn_children(0, 2)
        a = children[0].random(10)
        b = children[1].random(10)
        assert not np.array_equal(a, b)

    def test_reproducible_from_seed(self):
        first = [c.random(3) for c in spawn_children(9, 3)]
        second = [c.random(3) for c in spawn_children(9, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_zero_children(self):
        assert spawn_children(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_children(0, -1)
