"""Tests for the JSON/HTTP serving front end (``repro.serving.http``)."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.serving import BatchFuser, EncodingService
from repro.serving.http import build_server


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    return framework, data


@pytest.fixture()
def server_stack(fitted):
    framework, data = fitted
    service = EncodingService()
    service.register("ir", framework)
    fuser = BatchFuser(service, max_batch_rows=64, max_wait_ms=5)
    server = build_server(service, fuser=fuser, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield service, framework, data, base
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def get_json(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as response:
        return json.load(response)


def post_json(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def post_error(url: str, body: bytes) -> tuple[int, dict]:
    request = urllib.request.Request(url, data=body)
    try:
        urllib.request.urlopen(request, timeout=10)
    except urllib.error.HTTPError as exc:
        return exc.code, json.load(exc)
    raise AssertionError("expected an HTTP error")


class TestRoutes:
    def test_healthz(self, server_stack):
        _, _, _, base = server_stack
        payload = get_json(base + "/healthz")
        assert payload == {"status": "ok", "models": ["ir"]}

    def test_models(self, server_stack):
        _, framework, _, base = server_stack
        payload = get_json(base + "/models")
        info = payload["models"]["ir"]
        assert info["estimator"] == "SelfLearningEncodingFramework"
        assert info["fast_path"] is True
        assert info["n_features"] == 6
        assert info["n_hidden"] == 4
        assert info["dtype"] == "float64"

    def test_stats_shape(self, server_stack):
        _, _, _, base = server_stack
        payload = get_json(base + "/stats")
        assert set(payload) == {"models", "cache", "fusion", "admission"}
        assert "ir" in payload["models"]
        assert payload["fusion"]["max_batch_rows"] == 64
        assert "entries" in payload["cache"]

    def test_unknown_route(self, server_stack):
        _, _, _, base = server_stack
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            get_json(base + "/nope")
        assert excinfo.value.code == 404


class TestEncodeRoute:
    def test_encode_matches_direct_service_call(self, server_stack):
        service, framework, data, base = server_stack
        matrix = data[:7].tolist()
        payload = post_json(base + "/encode", {"model": "ir", "data": matrix})
        direct = service.encode("ir", np.asarray(matrix), use_cache=False)
        assert payload["model"] == "ir"
        assert payload["shape"] == list(direct.shape)
        assert payload["dtype"] == str(direct.dtype)
        assert payload["fused"] is True
        np.testing.assert_array_equal(np.asarray(payload["features"]), direct)

    def test_concurrent_http_clients_fuse(self, server_stack):
        service, framework, data, base = server_stack
        n_clients = 4
        barrier = threading.Barrier(n_clients)
        outputs: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []

        def client(index: int) -> None:
            barrier.wait()
            try:
                chunk = data[index * 5 : (index + 1) * 5].tolist()
                response = post_json(
                    base + "/encode",
                    {"model": "ir", "data": chunk, "use_cache": False},
                )
                outputs[index] = np.asarray(response["features"])
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        for index in range(n_clients):
            expected = framework.transform(data[index * 5 : (index + 1) * 5])
            np.testing.assert_allclose(outputs[index], expected)

    def test_unknown_model_is_404(self, server_stack):
        _, _, data, base = server_stack
        code, payload = post_error(
            base + "/encode",
            json.dumps({"model": "missing", "data": data[:2].tolist()}).encode(),
        )
        assert code == 404
        assert "missing" in payload["error"]

    def test_missing_fields_are_400(self, server_stack):
        _, _, data, base = server_stack
        code, payload = post_error(
            base + "/encode", json.dumps({"data": data[:2].tolist()}).encode()
        )
        assert code == 400
        code, payload = post_error(
            base + "/encode", json.dumps({"model": "ir"}).encode()
        )
        assert code == 400
        assert "data" in payload["error"]

    def test_invalid_json_is_400(self, server_stack):
        _, _, _, base = server_stack
        code, payload = post_error(base + "/encode", b"this is not json")
        assert code == 400
        assert "JSON" in payload["error"]

    def test_wrong_width_is_400(self, server_stack):
        _, _, _, base = server_stack
        code, _ = post_error(
            base + "/encode",
            json.dumps({"model": "ir", "data": [[1.0, 2.0]]}).encode(),
        )
        assert code == 400

    def test_post_to_unknown_route_is_404(self, server_stack):
        _, _, _, base = server_stack
        code, _ = post_error(base + "/models", json.dumps({}).encode())
        assert code == 404

    def test_keep_alive_survives_unknown_route_post(self, server_stack):
        # The body of a rejected POST must be drained, or the next request
        # on the same persistent connection is parsed out of the leftover
        # body bytes.
        import http.client

        _, _, _, base = server_stack
        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.request(
                "POST", "/nope", body=json.dumps({"x": 1}),
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            connection.request("GET", "/healthz")
            followup = connection.getresponse()
            assert followup.status == 200
            assert json.loads(followup.read())["status"] == "ok"
        finally:
            connection.close()


class TestWithoutFusion:
    def test_server_without_fuser_encodes_directly(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        server = build_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            payload = post_json(
                base + "/encode", {"model": "ir", "data": data[:3].tolist()}
            )
            assert payload["fused"] is False
            stats = get_json(base + "/stats")
            assert stats["fusion"] is None
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestRequestHardening:
    """Malformed framing must get an error response, never a hung thread."""

    @staticmethod
    def raw_request(base, headers, body=b""):
        """POST /encode with hand-rolled headers (http.client would insert
        a correct Content-Length, which is exactly what these tests must
        be able to omit or corrupt)."""
        import http.client

        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/encode", skip_accept_encoding=True)
            for name, value in headers.items():
                connection.putheader(name, value)
            connection.endheaders()
            if body:
                connection.send(body)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_oversized_content_length_is_413(self, server_stack):
        from repro.serving.http import MAX_BODY_BYTES

        _, _, _, base = server_stack
        # The server must reject from the header alone — this request never
        # sends (nor could it) the advertised 64 MiB body.
        status, payload = self.raw_request(
            base, {"Content-Length": str(MAX_BODY_BYTES + 1)}
        )
        assert status == 413
        assert "exceeds" in payload["error"]

    def test_missing_content_length_is_400(self, server_stack):
        _, _, _, base = server_stack
        status, payload = self.raw_request(base, {})
        assert status == 400
        assert "Content-Length" in payload["error"]

    @pytest.mark.parametrize("value", ["not-a-number", "-5", "1e6"])
    def test_invalid_content_length_is_400(self, server_stack, value):
        _, _, _, base = server_stack
        status, payload = self.raw_request(base, {"Content-Length": value})
        assert status == 400
        assert "Content-Length" in payload["error"]

    def test_zero_content_length_is_400(self, server_stack):
        _, _, _, base = server_stack
        status, payload = self.raw_request(base, {"Content-Length": "0"})
        assert status == 400
        assert "body" in payload["error"]

    def test_oversized_post_to_unknown_route_is_404_not_hang(self, server_stack):
        from repro.serving.http import MAX_BODY_BYTES

        _, _, _, base = server_stack
        import http.client

        host, port = base.removeprefix("http://").split(":")
        connection = http.client.HTTPConnection(host, int(port), timeout=10)
        try:
            connection.putrequest("POST", "/nope", skip_accept_encoding=True)
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            # drain_body() cannot consume a body past the cap; the route
            # error wins and the connection is severed instead of read dry.
            assert response.status == 404
        finally:
            connection.close()

    def test_server_stays_responsive_after_rejections(self, server_stack):
        _, _, data, base = server_stack
        self.raw_request(base, {"Content-Length": "garbage"})
        payload = post_json(
            base + "/encode", {"model": "ir", "data": data[:2].tolist()}
        )
        assert payload["model"] == "ir"
