"""Tests for the asyncio serving front end (``repro.serving.async_http``).

The async server must be semantically indistinguishable from the threaded
one: same routes, same statuses, same headers, and *byte-identical*
``/encode`` response bodies — both front ends drive the same
:class:`~repro.serving.http.ServingGateway`.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.serving import BatchFuser, EncodingService
from repro.serving.async_http import build_async_server
from repro.serving.http import build_server
from repro.serving.wire import SECRET_HEADER

SECRET = "async-secret"


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    return framework, data


def make_service(framework) -> EncodingService:
    service = EncodingService()
    service.register("ir", framework)
    return service


@pytest.fixture()
def async_stack(fitted):
    framework, data = fitted
    service = make_service(framework)
    fuser = BatchFuser(service, max_batch_rows=64, max_wait_ms=5)
    server = build_async_server(service, fuser=fuser, port=0)
    server.start()
    yield server, framework, data, server.server_port
    server.shutdown()
    server.server_close()


def exchange(
    port: int,
    method: str,
    path: str,
    payload: dict | None = None,
    *,
    headers: dict | None = None,
    connection: http.client.HTTPConnection | None = None,
) -> tuple[int, dict, bytes, http.client.HTTPMessage]:
    """One raw exchange; returns (status, decoded, raw body, headers)."""
    own = connection is None
    if own:
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
    body = json.dumps(payload).encode("utf-8") if payload is not None else None
    request_headers = {"Content-Type": "application/json", **(headers or {})}
    connection.request(method, path, body=body, headers=request_headers)
    response = connection.getresponse()
    raw = response.read()
    if own:
        connection.close()
    return response.status, json.loads(raw), raw, response.headers


class TestRoutes:
    def test_healthz(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(port, "GET", "/healthz")
        assert status == 200
        assert body == {"status": "ok", "models": ["ir"]}

    def test_models(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(port, "GET", "/models")
        assert status == 200
        assert "ir" in body["models"]
        assert body["models"]["ir"]["fast_path"] in (True, False)

    def test_stats(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(port, "GET", "/stats")
        assert status == 200
        assert set(body) >= {"models", "cache", "fusion", "admission"}

    def test_unknown_route_404(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(port, "GET", "/nope")
        assert status == 404
        status, body, _, _ = exchange(port, "POST", "/nope", {"x": 1})
        assert status == 404

    def test_unsupported_method_501(self, async_stack):
        server, framework, data, port = async_stack
        connection = http.client.HTTPConnection(
            "127.0.0.1", port, timeout=15
        )
        connection.request("DELETE", "/encode")
        response = connection.getresponse()
        assert response.status == 501
        connection.close()


class TestEncode:
    def test_encode_matches_direct_service(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(
            port, "POST", "/encode", {"model": "ir", "data": data[:5].tolist()}
        )
        assert status == 200
        assert body["fused"] is True
        assert np.array_equal(
            np.asarray(body["features"]), framework.transform(data[:5])
        )

    def test_encode_bytes_identical_to_threaded_front_end(self, fitted):
        framework, data = fitted
        payload = {"model": "ir", "data": data[:6].tolist()}

        threaded = build_server(
            make_service(framework),
            fuser=None,
            port=0,
        )
        thread = threading.Thread(target=threaded.serve_forever, daemon=True)
        thread.start()
        try:
            _, _, threaded_raw, _ = exchange(
                threaded.server_address[1], "POST", "/encode", payload
            )
        finally:
            threaded.shutdown()
            threaded.server_close()
            thread.join(timeout=5)

        asynchronous = build_async_server(
            make_service(framework), fuser=None, port=0
        )
        asynchronous.start()
        try:
            _, _, async_raw, _ = exchange(
                asynchronous.server_port, "POST", "/encode", payload
            )
        finally:
            asynchronous.shutdown()
            asynchronous.server_close()

        assert async_raw == threaded_raw

    def test_unknown_model_404(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(
            port, "POST", "/encode", {"model": "zz", "data": data[:2].tolist()}
        )
        assert status == 404
        assert "zz" in body["error"]

    def test_invalid_json_400(self, async_stack):
        server, framework, data, port = async_stack
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
        connection.request(
            "POST", "/encode", body=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        body = json.loads(response.read())
        assert response.status == 400
        assert "not valid JSON" in body["error"]
        connection.close()

    def test_missing_body_400(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(port, "POST", "/encode", {})
        assert status == 400

    def test_missing_content_length_400(self, async_stack):
        server, framework, data, port = async_stack
        with socket.create_connection(("127.0.0.1", port), timeout=15) as sock:
            sock.sendall(b"POST /encode HTTP/1.1\r\nHost: x\r\n\r\n")
            response = sock.recv(65536)
        assert b"400" in response.split(b"\r\n", 1)[0]
        assert b"Content-Length header" in response

    def test_oversized_body_413_severs_connection(self, async_stack):
        server, framework, data, port = async_stack
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
        connection.request(
            "POST", "/encode", body=b"",
            headers={"Content-Length": str(10**12)},
        )
        response = connection.getresponse()
        assert response.status == 413
        assert response.headers.get("Connection") == "close"
        connection.close()

    def test_non_positive_deadline_is_a_validation_error(self, async_stack):
        server, framework, data, port = async_stack
        status, body, _, _ = exchange(
            port,
            "POST",
            "/encode",
            {"model": "ir", "data": data[:2].tolist(), "deadline_ms": -1},
        )
        assert status == 400
        assert "deadline_ms" in body["error"]

    def test_concurrent_clients_all_correct(self, async_stack):
        server, framework, data, port = async_stack
        n_clients = 8
        results: list = [None] * n_clients

        def client(index: int) -> None:
            rows = data[index * 5 : (index + 1) * 5]
            try:
                status, body, _, _ = exchange(
                    port, "POST", "/encode",
                    {"model": "ir", "data": rows.tolist()},
                )
                results[index] = (status, np.asarray(body["features"]))
            except Exception as exc:  # noqa: BLE001 - asserted below
                results[index] = exc

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(n_clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        for index, result in enumerate(results):
            assert not isinstance(result, Exception), result
            status, features = result
            assert status == 200
            expected = framework.transform(data[index * 5 : (index + 1) * 5])
            np.testing.assert_array_equal(features, expected)


class TestKeepAlive:
    def test_many_requests_on_one_connection(self, async_stack):
        server, framework, data, port = async_stack
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=15)
        try:
            for _ in range(5):
                status, body, _, _ = exchange(
                    port, "POST", "/encode",
                    {"model": "ir", "data": data[:3].tolist()},
                    connection=connection,
                )
                assert status == 200
            status, body, _, _ = exchange(
                port, "GET", "/healthz", connection=connection
            )
            assert status == 200
        finally:
            connection.close()

    def test_connection_close_honored(self, async_stack):
        server, framework, data, port = async_stack
        with socket.create_connection(("127.0.0.1", port), timeout=15) as sock:
            sock.sendall(
                b"GET /healthz HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
            )
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        response = b"".join(chunks)
        assert b"200" in response.split(b"\r\n", 1)[0]
        assert b"Connection: close" in response


class TestAuth:
    @pytest.fixture()
    def secured(self, fitted):
        framework, data = fitted
        server = build_async_server(
            make_service(framework), port=0, secret=SECRET
        )
        server.start()
        yield server, data, server.server_port
        server.shutdown()
        server.server_close()

    def test_healthz_stays_open(self, secured):
        server, data, port = secured
        status, _, _, _ = exchange(port, "GET", "/healthz")
        assert status == 200

    def test_missing_secret_401(self, secured):
        server, data, port = secured
        status, body, _, _ = exchange(
            port, "POST", "/encode", {"model": "ir", "data": data[:2].tolist()}
        )
        assert status == 401
        status, _, _, _ = exchange(port, "GET", "/stats")
        assert status == 401

    def test_valid_secret_accepted(self, secured):
        server, data, port = secured
        status, body, _, _ = exchange(
            port, "POST", "/encode",
            {"model": "ir", "data": data[:2].tolist()},
            headers={SECRET_HEADER: SECRET},
        )
        assert status == 200


class TestAdmission:
    def test_full_server_sheds_503_with_retry_after(self, fitted):
        framework, data = fitted
        server = build_async_server(
            make_service(framework), port=0, max_in_flight=2, retry_after=2.5
        )
        server.start()
        try:
            assert server.gateway.try_admit()
            assert server.gateway.try_admit()
            status, body, _, headers = exchange(
                server.server_port, "POST", "/encode",
                {"model": "ir", "data": data[:2].tolist()},
            )
            assert status == 503
            assert headers["Retry-After"] == "3"
            assert "capacity" in body["error"]
            server.gateway.release_request()
            server.gateway.release_request()
            status, _, _, _ = exchange(
                server.server_port, "POST", "/encode",
                {"model": "ir", "data": data[:2].tolist()},
            )
            assert status == 200
            shed = server.gateway.admission.as_dict()
            assert shed["n_shed"] == 1
        finally:
            server.shutdown()
            server.server_close()


class TestShutdown:
    def test_shutdown_drains_in_flight(self, fitted):
        framework, data = fitted
        import time

        service = make_service(framework)
        original_compute = service._compute

        def slow_compute(runtime, matrix):
            time.sleep(0.15)
            return original_compute(runtime, matrix)

        service._compute = slow_compute
        server = build_async_server(service, port=0)
        server.start()
        port = server.server_port
        results: list = [None] * 3

        def client(index: int) -> None:
            try:
                results[index] = exchange(
                    port, "POST", "/encode",
                    {"model": "ir", "data": data[:3].tolist()},
                )[0]
            except Exception as exc:  # noqa: BLE001 - asserted below
                results[index] = exc

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(3)
        ]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 10
        while server.gateway.admission.as_dict()["n_admitted"] < 3:
            assert time.monotonic() < deadline
            time.sleep(0.005)
        server.shutdown()
        for thread in threads:
            thread.join(timeout=30)
        server.server_close()
        assert results == [200, 200, 200]
        assert server.gateway.admission.as_dict()["in_flight"] == 0

    def test_shutdown_is_idempotent(self, fitted):
        framework, _ = fitted
        server = build_async_server(make_service(framework), port=0)
        server.start()
        server.shutdown()
        server.shutdown()
        server.server_close()
        server.server_close()
