"""Unit tests for :class:`repro.serving.ModelStats`.

Backfills direct coverage of the pre-existing latency counters and locks in
the new queue/compute split and fusion accounting.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.serving import ModelStats


class TestRecord:
    def test_miss_accounting(self):
        stats = ModelStats()
        stats.record(
            n_samples=10,
            seconds=0.25,
            cache_hit=False,
            n_batches=2,
            queue_seconds=0.05,
            compute_seconds=0.15,
        )
        assert stats.n_requests == 1
        assert stats.n_cache_hits == 0
        assert stats.n_samples == 10
        assert stats.n_encoded_samples == 10
        assert stats.n_batches == 2
        assert stats.total_seconds == 0.25
        assert stats.total_queue_seconds == 0.05
        assert stats.total_compute_seconds == 0.15
        assert stats.last_latency_seconds == 0.25

    def test_hit_does_not_count_encoded_samples(self):
        stats = ModelStats()
        stats.record(n_samples=10, seconds=0.1, cache_hit=True)
        assert stats.n_requests == 1
        assert stats.n_cache_hits == 1
        assert stats.n_samples == 10
        assert stats.n_encoded_samples == 0
        assert stats.n_batches == 0
        assert stats.cache_hit_rate == 1.0

    def test_derived_metrics(self):
        stats = ModelStats()
        stats.record(n_samples=30, seconds=0.5, cache_hit=False, n_batches=1)
        stats.record(n_samples=30, seconds=0.25, cache_hit=True)
        assert stats.mean_latency_seconds == 0.375
        assert stats.throughput_samples_per_second == 60 / 0.75
        assert stats.cache_hit_rate == 0.5
        assert stats.mean_queue_seconds == 0.0

    def test_idle_metrics_are_zero(self):
        stats = ModelStats()
        assert stats.cache_hit_rate == 0.0
        assert stats.mean_latency_seconds == 0.0
        assert stats.mean_queue_seconds == 0.0
        assert stats.throughput_samples_per_second == 0.0
        assert stats.fusion_ratio == 0.0


class TestFlushAccounting:
    def test_flush_equivalent_to_individual_records(self):
        fused = ModelStats()
        fused.record_flush(
            3,
            n_hits=1,
            n_samples=40,
            n_hit_samples=10,
            n_batches=2,
            total_seconds=0.9,
            queue_seconds=0.3,
            compute_seconds=0.2,
            last_latency_seconds=0.35,
        )
        assert fused.n_requests == 4
        assert fused.n_cache_hits == 1
        assert fused.n_fused_requests == 3
        assert fused.n_flushes == 1
        assert fused.n_samples == 40
        assert fused.n_encoded_samples == 30
        assert fused.n_batches == 2
        assert fused.total_seconds == 0.9
        assert fused.total_queue_seconds == 0.3
        assert fused.total_compute_seconds == 0.2
        assert fused.last_latency_seconds == 0.35

    def test_fusion_ratio(self):
        stats = ModelStats()
        stats.record_flush(4, n_samples=8, last_latency_seconds=0.1)
        stats.record_flush(2, n_samples=4, last_latency_seconds=0.1)
        assert stats.n_flushes == 2
        assert stats.n_fused_requests == 6
        assert stats.fusion_ratio == 3.0

    def test_as_dict_exposes_every_counter(self):
        stats = ModelStats()
        stats.record(n_samples=5, seconds=0.1, cache_hit=False, n_batches=1)
        snapshot = stats.as_dict()
        for key in (
            "n_requests",
            "n_cache_hits",
            "n_samples",
            "n_encoded_samples",
            "n_batches",
            "n_flushes",
            "n_fused_requests",
            "total_seconds",
            "total_queue_seconds",
            "total_compute_seconds",
            "last_latency_seconds",
            "cache_hit_rate",
            "mean_latency_seconds",
            "mean_queue_seconds",
            "throughput_samples_per_second",
            "fusion_ratio",
        ):
            assert key in snapshot, key


class TestThreadSafety:
    def test_concurrent_records_conserve_counts(self):
        stats = ModelStats()
        n_threads, per_thread = 8, 500
        barrier = threading.Barrier(n_threads)

        def hammer(seed: int) -> None:
            rng = np.random.default_rng(seed)
            barrier.wait()
            for _ in range(per_thread):
                stats.record(
                    n_samples=int(rng.integers(1, 5)),
                    seconds=0.001,
                    cache_hit=bool(rng.integers(0, 2)),
                    n_batches=1,
                )

        threads = [
            threading.Thread(target=hammer, args=(seed,)) for seed in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snapshot = stats.as_dict()
        assert snapshot["n_requests"] == n_threads * per_thread
        assert abs(snapshot["total_seconds"] - n_threads * per_thread * 0.001) < 1e-6
        assert (
            snapshot["n_samples"]
            >= snapshot["n_encoded_samples"] + snapshot["n_cache_hits"] * 1
        )
