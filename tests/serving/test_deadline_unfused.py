"""Regression tests for deadline enforcement on the *unfused* encode path.

The front end computes each request's remaining ``deadline_ms`` budget, but
it was only enforced when the request went through the fuser (whose
``max_wait_ms`` caps the coalescing wait).  A request whose ``use_cache``
mismatched the fuser's configuration fell back to a direct
``service.encode`` that ignored the budget entirely — it could queue behind
slow requests on the model's compute lock for seconds and still burn
compute on an answer its client had long abandoned.  Now the budget travels
into :meth:`EncodingService.encode` and is enforced at compute start,
answering 503 + ``Retry-After`` and counting an admission deadline shed.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.exceptions import DeadlineExceededError
from repro.serving import BatchFuser, EncodingService
from repro.serving.http import build_server


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    return framework, data


class FakeClock:
    """Deterministic monotonic clock: returns queued ticks, then repeats."""

    def __init__(self, *ticks: float) -> None:
        self.ticks = list(ticks)

    def __call__(self) -> float:
        if len(self.ticks) > 1:
            return self.ticks.pop(0)
        return self.ticks[0]


class TestServiceBudget:
    def test_spent_budget_at_compute_start_raises(self, fitted):
        framework, data = fitted
        # encode() reads the clock at arrival, then again once it holds the
        # compute lock; one second elapses in between — far past a 50ms
        # budget.
        service = EncodingService(cache_entries=0, clock=FakeClock(0.0, 1.0))
        service.register("ir", framework)
        with pytest.raises(DeadlineExceededError, match="compute lock"):
            service.encode("ir", data[:3], budget_ms=50.0)

    def test_live_budget_computes_normally(self, fitted):
        framework, data = fitted
        service = EncodingService(cache_entries=0, clock=FakeClock(0.0))
        service.register("ir", framework)
        result = service.encode("ir", data[:3], budget_ms=50.0)
        assert np.array_equal(result, framework.transform(data[:3]))

    def test_cache_hit_beats_any_budget(self, fitted):
        framework, data = fitted
        service = EncodingService(clock=FakeClock(0.0, 1.0, 1.0, 1.0))
        service.register("ir", framework)
        service.encode("ir", data[:3])  # warm the cache
        # Same spent-budget clock as the raising test — but the hit wins.
        result = service.encode("ir", data[:3], budget_ms=50.0)
        assert np.array_equal(result, framework.transform(data[:3]))

    def test_no_budget_is_unbounded(self, fitted):
        framework, data = fitted
        service = EncodingService(cache_entries=0, clock=FakeClock(0.0, 99.0))
        service.register("ir", framework)
        result = service.encode("ir", data[:3])
        assert np.array_equal(result, framework.transform(data[:3]))


class TestUnfusedHTTPPath:
    def test_deadline_is_enforced_when_use_cache_mismatches_the_fuser(
        self, fitted
    ):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        fuser = BatchFuser(service, use_cache=True)
        server = build_server(service, fuser=fuser, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            # ``use_cache: false`` mismatches the fuser's config, so the
            # request takes the direct service.encode path.  Holding the
            # model's compute lock simulates queueing behind slow requests.
            runtime = service._models["ir"]
            release = threading.Event()

            def hold_lock() -> None:
                # Hold the compute lock well past the 100ms budget (but not
                # past the client's own socket timeout).
                with runtime.lock:
                    release.wait(0.4)

            holder = threading.Thread(target=hold_lock)
            holder.start()
            time.sleep(0.05)  # let the holder acquire the lock
            payload = {
                "model": "ir",
                "data": data[:3].tolist(),
                "use_cache": False,
                "deadline_ms": 100,
            }
            request = urllib.request.Request(
                base + "/encode",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            try:
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10)
            finally:
                release.set()
                holder.join(timeout=10)
            error = excinfo.value
            assert error.code == 503
            assert error.headers["Retry-After"] is not None
            body = json.load(error)
            assert "deadline budget" in body["error"]
            assert server.admission.as_dict()["n_deadline_shed"] == 1
        finally:
            release.set()
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_unfused_request_without_deadline_still_succeeds(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        fuser = BatchFuser(service, use_cache=True)
        server = build_server(service, fuser=fuser, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            payload = {
                "model": "ir",
                "data": data[:3].tolist(),
                "use_cache": False,
            }
            request = urllib.request.Request(
                base + "/encode",
                data=json.dumps(payload).encode("utf-8"),
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                body = json.load(response)
            assert body["fused"] is False
            assert np.array_equal(
                np.asarray(body["features"]), framework.transform(data[:3])
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
