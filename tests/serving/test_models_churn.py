"""Regression tests for ``/models`` under register/unregister churn.

``describe_models`` used to read ``EncodingService._models`` without the
registry lock, pairing a stale name list with a mutating dict.  The
snapshot now comes from :meth:`EncodingService.describe_models`, which
captures the registry under its lock; every returned entry is complete and
internally consistent no matter how hard another thread churns the
registry.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.exceptions import ServingError
from repro.serving import EncodingService
from repro.serving.http import build_server

FIELDS = {"estimator", "fast_path", "n_features", "n_hidden", "dtype"}


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    return framework, data


class TestDescribeModels:
    def test_snapshot_shape(self, fitted):
        framework, _ = fitted
        service = EncodingService()
        service.register("ir", framework)
        described = service.describe_models()
        assert set(described) == {"ir"}
        assert set(described["ir"]) == FIELDS
        assert described["ir"]["estimator"]
        assert described["ir"]["fast_path"] in (True, False)

    def test_server_delegates_to_the_service_snapshot(self, fitted):
        framework, _ = fitted
        service = EncodingService()
        service.register("ir", framework)
        server = build_server(service, port=0)
        try:
            assert server.describe_models() == service.describe_models()
        finally:
            server.server_close()

    def test_snapshot_survives_register_unregister_churn(self, fitted):
        framework, _ = fitted
        service = EncodingService()
        service.register("stable", framework)
        stop = threading.Event()
        churn_error: list = []

        def churn() -> None:
            try:
                while not stop.is_set():
                    service.register("churn", framework)
                    try:
                        service.unregister("churn")
                    except ServingError:
                        pass  # lost a race with ourselves; fine
            except Exception as exc:  # noqa: BLE001 - asserted below
                churn_error.append(exc)

        churner = threading.Thread(target=churn)
        churner.start()
        try:
            for _ in range(300):
                described = service.describe_models()
                # The stable model is always present and complete; the
                # churning one, when caught registered, is complete too.
                assert set(described["stable"]) == FIELDS
                for entry in described.values():
                    assert set(entry) == FIELDS
        finally:
            stop.set()
            churner.join(timeout=10)
        assert not churn_error
