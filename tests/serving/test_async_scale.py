"""Serving-scale smoke: 100+ concurrent connections against the CLI stack.

Drives a real ``repro serve --async --shard-workers 2`` subprocess — the
exact deployment shape — with an asyncio load generator holding 120
concurrent keep-alive connections on a single selector loop, then stops it
with SIGTERM and requires a clean exit.  Every response is checked
bit-identical against an unfused sequential encode of the same rows.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.persistence.artifacts import save_framework
from repro.serving import EncodingService

pytestmark = pytest.mark.slow

N_CONNECTIONS = 120
REQUESTS_PER_CONNECTION = 2
MODELS = ["m0", "m1", "m2", "m3"]


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    bundle = save_framework(
        framework, tmp_path_factory.mktemp("scale") / "artifact"
    )
    return str(bundle), data


async def _http_post(reader, writer, path: str, payload: dict) -> tuple[int, dict]:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\nHost: l\r\nContent-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            length = int(value)
    raw = await reader.readexactly(length)
    return status, json.loads(raw)


async def _connection_worker(port: int, index: int, rows: list) -> list:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    results = []
    try:
        for request_index in range(REQUESTS_PER_CONNECTION):
            model = MODELS[(index + request_index) % len(MODELS)]
            status, body = await _http_post(
                reader, writer, "/encode", {"model": model, "data": rows}
            )
            results.append((status, body))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    return results


async def _drive_load(port: int, rows: list) -> list:
    tasks = [
        asyncio.create_task(_connection_worker(port, index, rows))
        for index in range(N_CONNECTIONS)
    ]
    return await asyncio.gather(*tasks)


class TestAsyncShardedScale:
    def test_120_concurrent_connections_bit_identical_and_clean_sigterm(
        self, artifact
    ):
        bundle, data = artifact
        rows = data[:4].tolist()

        reference = EncodingService()
        reference.load("ref", bundle)
        expected = reference.encode("ref", np.asarray(rows), use_cache=False)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [path for path in sys.path if path]
            + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
        )
        command = [sys.executable, "-m", "repro", "serve", "--port", "0",
                   "--async", "--shard-workers", "2"]
        for name in MODELS:
            command.extend(["--artifact", f"{name}={bundle}"])
        process = subprocess.Popen(
            command, env=env, stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT, text=True,
        )
        try:
            port = None
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line and process.poll() is not None:
                    break
                match = re.search(r"on http://[\d.]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "server never announced its port"

            per_connection = asyncio.run(_drive_load(port, rows))

            n_responses = 0
            for results in per_connection:
                assert len(results) == REQUESTS_PER_CONNECTION
                for status, body in results:
                    assert status == 200, body
                    assert np.array_equal(
                        np.asarray(body["features"]), expected
                    ), "sharded fused encode diverged from sequential encode"
                    n_responses += 1
            assert n_responses == N_CONNECTIONS * REQUESTS_PER_CONNECTION

            process.send_signal(signal.SIGTERM)
            assert process.wait(timeout=60) == 0
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
