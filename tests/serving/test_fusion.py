"""Tests for the batch-fusion serving layer.

Two layers of coverage, mirroring the design of
:class:`repro.serving.BatchFuser`:

* **deterministic scheduler tests** — the submit/flush API is driven
  synchronously with an injected fake clock (no sleeps, no threads), so
  every coalescing rule (row bound, explicit flush, per-model lanes,
  immediate mode, error isolation, queue-wait accounting) is checked
  exactly;
* **threaded integration tests** — many client threads encode concurrently
  and every client must get exactly its own rows back, byte-identical to a
  direct ``EncodingService.encode`` of the same input, in float64 and
  float32.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.exceptions import ServingError, ValidationError
from repro.serving import BatchFuser, EncodingService


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        60, 8, 3, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=5,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=3)
    framework.fit(data)
    return framework, data


class FakeClock:
    """Deterministic clock: every reading advances by ``step`` seconds."""

    def __init__(self, step: float = 0.5) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def make_service(framework, **kwargs) -> EncodingService:
    service = EncodingService(**kwargs)
    service.register("ir", framework)
    return service


# --------------------------------------------------------------- encode_many
class TestEncodeMany:
    def test_fused_bit_identical_to_unfused(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0)
        parts = [data[:17], data[17:40], data[40:]]
        fused = service.encode_many("ir", parts)
        for part, result in zip(parts, fused):
            direct = service.encode("ir", part, use_cache=False)
            assert result.dtype == direct.dtype
            assert np.array_equal(result, direct)

    def test_fused_crossing_micro_batch_boundaries(self, fitted):
        # The stacked matrix spans several micro-batches whose boundaries
        # fall inside individual requests; results must not change.
        framework, data = fitted
        service = make_service(framework, cache_entries=0, max_batch_size=7)
        parts = [data[:20], data[20:25], data[25:]]
        fused = service.encode_many("ir", parts)
        for part, result in zip(parts, fused):
            assert np.array_equal(result, framework.transform(part))

    def test_single_row_requests_are_allclose_not_necessarily_bitwise(self, fitted):
        # BLAS dispatches GEMV for 1-row matmuls, so a single-row request
        # fused into a GEMM may differ from its unfused result in the last
        # bits.  It must still be allclose at float64 epsilon scale; the
        # bitwise guarantee holds from 2 rows up (previous test).
        framework, data = fitted
        service = make_service(framework, cache_entries=0)
        model = framework.model_
        bare = EncodingService(cache_entries=0)
        bare.register("raw", model)
        preprocessed = framework.preprocess(data)
        singles = [preprocessed[i : i + 1] for i in range(6)]
        fused = bare.encode_many("raw", singles)
        for single, result in zip(singles, fused):
            direct = bare.encode("raw", single, use_cache=False)
            np.testing.assert_allclose(result, direct, rtol=1e-12, atol=1e-15)

    def test_cache_hits_are_excluded_from_the_fused_pass(self, fitted):
        framework, data = fitted
        service = make_service(framework)
        warm = service.encode("ir", data[:10])
        results = service.encode_many("ir", [data[:10], data[10:30]])
        assert np.array_equal(results[0], warm)
        assert np.array_equal(results[1], framework.transform(data[10:30]))
        stats = service.stats("ir")
        assert stats["n_cache_hits"] == 1
        assert stats["n_fused_requests"] == 1

    def test_flush_counters(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0)
        service.encode_many("ir", [data[:10], data[10:20], data[20:30]])
        service.encode_many("ir", [data[:5]])
        stats = service.stats("ir")
        assert stats["n_flushes"] == 2
        assert stats["n_fused_requests"] == 4
        assert stats["fusion_ratio"] == 2.0

    def test_queue_seconds_length_mismatch(self, fitted):
        framework, data = fitted
        service = make_service(framework)
        with pytest.raises(ValidationError):
            service.encode_many("ir", [data[:5]], queue_seconds=[0.1, 0.2])

    def test_non_finite_request_rejected(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0)
        bad = data[:5].copy()
        bad[0, 0] = np.nan
        with pytest.raises(ValidationError):
            service.encode_many("ir", [data[:5], bad])

    def test_generic_estimator_falls_back_to_per_request(self, fitted):
        from repro.core.pipeline import Pipeline
        from repro.core.transformers import Standardize

        _, data = fitted
        pipeline = Pipeline([("scale", Standardize())])
        pipeline.fit(data)
        service = EncodingService(cache_entries=0)
        service.register("scaled", pipeline)
        results = service.encode_many("scaled", [data[:10], data[10:30]])
        assert np.array_equal(results[0], pipeline.transform(data[:10]))
        assert np.array_equal(results[1], pipeline.transform(data[10:30]))
        # no fused flush happened — the pipeline cannot be stacked safely
        assert service.stats("scaled")["n_flushes"] == 0


# ------------------------------------------------- deterministic scheduling
class TestSchedulerDeterministic:
    def test_submit_parks_until_flush(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        first = fuser.submit("ir", data[:10])
        second = fuser.submit("ir", data[10:25])
        assert not first.done and not second.done
        assert fuser.pending("ir") == (2, 25)
        assert fuser.flush("ir") == 2
        assert fuser.pending("ir") == (0, 0)
        assert np.array_equal(first.result(), framework.transform(data[:10]))
        assert np.array_equal(second.result(), framework.transform(data[10:25]))

    def test_row_bound_triggers_inline_flush(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=30, max_wait_ms=50)
        first = fuser.submit("ir", data[:20])
        assert not first.done  # 20 < 30 rows: still parked
        second = fuser.submit("ir", data[20:40])
        assert first.done and second.done  # 40 >= 30: submitter flushed
        assert np.array_equal(second.result(), framework.transform(data[20:40]))

    def test_oversized_request_flushes_alone(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=10, max_wait_ms=50)
        ticket = fuser.submit("ir", data)  # 60 rows > bound
        assert ticket.done
        assert np.array_equal(ticket.result(), framework.transform(data))

    def test_immediate_mode(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=0)
        ticket = fuser.submit("ir", data[:10])
        assert ticket.done  # max_wait_ms=0: every submission flushes

    def test_per_model_lanes_are_independent(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        service.register("ir2", framework)
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        one = fuser.submit("ir", data[:10])
        two = fuser.submit("ir2", data[:10])
        assert fuser.pending("ir") == (1, 10)
        assert fuser.pending("ir2") == (1, 10)
        fuser.flush("ir")
        assert one.done and not two.done
        assert fuser.flush() == 1  # flush-all resolves the remaining lane
        assert two.done

    def test_queue_wait_recorded_from_injected_clock(self, fitted):
        framework, data = fitted
        clock = FakeClock(step=0.5)
        service = make_service(framework, cache_entries=0, clock=clock)
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        fuser.submit("ir", data[:10])
        fuser.submit("ir", data[10:20])
        fuser.flush("ir")
        stats = service.stats("ir")
        # submits at t=0.5 and t=1.0, flush timestamp t=1.5: waits 1.0 + 0.5
        assert stats["total_queue_seconds"] == pytest.approx(1.5)
        assert stats["n_flushes"] == 1
        assert stats["fusion_ratio"] == 2.0
        assert stats["total_compute_seconds"] > 0.0

    def test_unknown_model_raises_at_submit(self, fitted):
        framework, data = fitted
        service = make_service(framework, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=100, max_wait_ms=50)
        with pytest.raises(ServingError):
            fuser.submit("missing", data[:5])

    def test_malformed_request_raises_at_submit(self, fitted):
        framework, data = fitted
        service = make_service(framework, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=100, max_wait_ms=50)
        with pytest.raises(ValidationError):
            fuser.submit("ir", data[0])  # 1-D
        with pytest.raises(ValidationError):
            fuser.submit("ir", np.empty((0, 8)))

    def test_bad_request_is_isolated_from_its_batch_mates(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        good = fuser.submit("ir", data[:10])
        bad_data = data[10:15].copy()
        bad_data[0, 0] = np.inf  # passes the light submit checks
        bad = fuser.submit("ir", bad_data)
        fuser.flush("ir")
        assert np.array_equal(good.result(), framework.transform(data[:10]))
        with pytest.raises(ValidationError):
            bad.result()

    def test_non_finite_rejected_for_generic_models_too(self, fitted):
        # Non-fast-path models bypass the stacked finiteness check, so the
        # fallback path must validate fully — a NaN through the fuser has to
        # raise exactly as service.encode would, not return NaN features.
        from repro.core.pipeline import Pipeline
        from repro.core.transformers import Standardize

        _, data = fitted
        pipeline = Pipeline([("scale", Standardize())])
        pipeline.fit(data)
        service = EncodingService(cache_entries=0, clock=FakeClock())
        service.register("scaled", pipeline)
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        bad = data[:5].copy()
        bad[0, 0] = np.nan
        good = fuser.submit("scaled", data[:10])
        ticket = fuser.submit("scaled", bad)
        fuser.flush("scaled")
        assert np.array_equal(good.result(), pipeline.transform(data[:10]))
        with pytest.raises(ValidationError):
            ticket.result()

    def test_wrong_width_fails_at_submit_for_bare_models(self, fitted):
        # Without preprocessing the feature width is checkable immediately,
        # so a malformed client fails fast and never joins (and demotes) a
        # batch.
        framework, data = fitted
        model = framework.model_
        service = EncodingService(cache_entries=0, clock=FakeClock())
        service.register("raw", model)
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        with pytest.raises(ValidationError):
            fuser.submit("raw", np.zeros((4, 3)))
        assert fuser.pending("raw") == (0, 0)

    def test_wrong_width_is_isolated_from_its_batch_mates(self, fitted):
        # Framework preprocessing may change the width, so the check is
        # deferred to the flush; the per-request fallback must then isolate
        # the offender from its batch-mates.
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        good = fuser.submit("ir", data[:10])
        bad = fuser.submit("ir", np.zeros((4, 3)))  # wrong feature width
        fuser.flush("ir")
        assert np.array_equal(good.result(), framework.transform(data[:10]))
        with pytest.raises(ValidationError):
            bad.result()

    def test_unresolved_ticket_result_raises(self, fitted):
        framework, data = fitted
        service = make_service(framework, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        ticket = fuser.submit("ir", data[:5])
        with pytest.raises(RuntimeError):
            ticket.result()
        fuser.flush("ir")
        ticket.result()

    def test_invalid_parameters(self, fitted):
        framework, _ = fitted
        service = make_service(framework)
        with pytest.raises(ValidationError):
            BatchFuser(service, max_batch_rows=0)
        with pytest.raises(ValidationError):
            BatchFuser(service, max_wait_ms=-1)
        with pytest.raises(ValidationError):
            BatchFuser(object())

    def test_context_manager_flushes_on_exit(self, fitted):
        framework, data = fitted
        service = make_service(framework, cache_entries=0, clock=FakeClock())
        with BatchFuser(service, max_batch_rows=1000, max_wait_ms=50) as fuser:
            ticket = fuser.submit("ir", data[:10])
        assert ticket.done

    def test_fused_results_use_the_service_cache(self, fitted):
        framework, data = fitted
        service = make_service(framework, clock=FakeClock())
        fuser = BatchFuser(service, max_batch_rows=1000, max_wait_ms=50)
        fuser.submit("ir", data[:10])
        fuser.flush("ir")
        before = service.stats("ir")["n_cache_hits"]
        ticket = fuser.submit("ir", data[:10])
        fuser.flush("ir")
        assert service.stats("ir")["n_cache_hits"] == before + 1
        assert np.array_equal(ticket.result(), framework.transform(data[:10]))


# ------------------------------------------------------ threaded integration
def _run_clients(n_clients, worker):
    barrier = threading.Barrier(n_clients)
    errors: list[BaseException] = []

    def body(index):
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


class TestThreadedIntegration:
    @pytest.mark.slow
    @pytest.mark.parametrize("dtype", [None, "float32"])
    def test_every_client_gets_its_own_rows_byte_identical(self, fitted, dtype):
        # 8 clients, several rounds each; every client embeds its identity in
        # its data, and every fused result must be byte-identical to a direct
        # EncodingService.encode of the same input.
        framework, _ = fitted
        n_clients, n_rounds, rows = 8, 12, 5
        rng = np.random.default_rng(42)
        payloads = [
            [
                (rng.random((rows, 8)) + index).astype(float)
                for _ in range(n_rounds)
            ]
            for index in range(n_clients)
        ]
        service = EncodingService(cache_entries=0, dtype=dtype)
        service.register("ir", framework)
        reference = EncodingService(cache_entries=0, dtype=dtype)
        reference.register("ir", framework)
        fuser = BatchFuser(
            service, max_batch_rows=n_clients * rows, max_wait_ms=30
        )
        results: list[list[np.ndarray]] = [[] for _ in range(n_clients)]

        def worker(index):
            for matrix in payloads[index]:
                results[index].append(fuser.encode("ir", matrix))

        _run_clients(n_clients, worker)

        for index in range(n_clients):
            for matrix, fused in zip(payloads[index], results[index]):
                direct = reference.encode("ir", matrix, use_cache=False)
                assert fused.dtype == direct.dtype
                assert fused.shape == direct.shape
                assert fused.tobytes() == direct.tobytes()

    @pytest.mark.slow
    def test_concurrent_stress_fuses_and_conserves_counters(self, fitted):
        framework, _ = fitted
        n_clients, n_rounds, rows = 8, 20, 4
        rng = np.random.default_rng(3)
        payloads = [
            [rng.random((rows, 8)) for _ in range(n_rounds)]
            for _ in range(n_clients)
        ]
        service = EncodingService(cache_entries=0)
        service.register("ir", framework)
        fuser = BatchFuser(
            service, max_batch_rows=n_clients * rows, max_wait_ms=200
        )
        rounds_barrier = threading.Barrier(n_clients)

        def worker(index):
            for matrix in payloads[index]:
                rounds_barrier.wait()
                fuser.encode("ir", matrix)

        _run_clients(n_clients, worker)
        stats = service.stats("ir")
        total = n_clients * n_rounds
        assert stats["n_requests"] == total
        assert stats["n_fused_requests"] == total
        assert stats["n_samples"] == total * rows
        # barrier-aligned rounds must actually coalesce
        assert stats["n_flushes"] < total
        assert stats["fusion_ratio"] > 1.5
        assert stats["total_queue_seconds"] >= 0.0

    @pytest.mark.slow
    def test_mixed_fused_and_direct_traffic(self, fitted):
        # Fused and plain encode calls interleave on the same service; the
        # runtime lock must keep the shared scratch buffer consistent.
        framework, data = fitted
        expected = framework.transform(data[:10])
        service = EncodingService(cache_entries=0)
        service.register("ir", framework)
        fuser = BatchFuser(service, max_batch_rows=40, max_wait_ms=5)

        def worker(index):
            for _ in range(15):
                if index % 2 == 0:
                    out = fuser.encode("ir", data[:10])
                else:
                    out = service.encode("ir", data[:10], use_cache=False)
                assert np.array_equal(out, expected)

        _run_clients(6, worker)
