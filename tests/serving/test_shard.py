"""Tests for the multi-process shard pool (``repro.serving.shard``).

The hash ring is exercised exhaustively in-process (it must be a pure,
process-independent function of the key).  The pool tests spawn real worker
subprocesses, so they share one module-scoped pool; the kill/respawn test
runs last and is marked ``slow``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.exceptions import ServingError, ValidationError
from repro.persistence.artifacts import save_framework
from repro.serving import EncodingService
from repro.serving.shard import HashRing, ShardPool

MODELS = ["alpha", "beta", "gamma", "delta"]


class TestHashRing:
    def test_assignment_is_deterministic_across_instances(self):
        first = HashRing(list(range(4)))
        second = HashRing(list(range(4)))
        for key in ("a", "b", "model-x", "ir", ""):
            assert first.assign(key) == second.assign(key)

    def test_partition_is_disjoint_and_complete(self):
        ring = HashRing(list(range(3)))
        keys = [f"model-{i}" for i in range(50)]
        partition = ring.partition(keys)
        assert set(partition) == {0, 1, 2}
        flattened = [key for subset in partition.values() for key in subset]
        assert sorted(flattened) == sorted(keys)

    def test_virtual_nodes_spread_keys(self):
        ring = HashRing(list(range(4)), replicas=64)
        keys = [f"model-{i}" for i in range(200)]
        partition = ring.partition(keys)
        # With 64 virtual nodes per worker no worker should be starved or
        # hogging: every worker owns something, nobody owns > 60%.
        sizes = [len(subset) for subset in partition.values()]
        assert min(sizes) > 0
        assert max(sizes) < 120

    def test_single_node_owns_everything(self):
        ring = HashRing([0])
        assert ring.assign("anything") == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            HashRing([])
        with pytest.raises(ValidationError):
            HashRing([1, 1])


@pytest.fixture(scope="module")
def artifact(tmp_path_factory):
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    bundle = save_framework(
        framework, tmp_path_factory.mktemp("shard") / "artifact"
    )
    return str(bundle), framework, data


@pytest.fixture(scope="module")
def pool(artifact):
    bundle, framework, data = artifact
    pool = ShardPool(
        {name: bundle for name in MODELS},
        2,
        monitor_interval=0.1,
    )
    yield pool
    pool.close()


class TestShardPool:
    def test_models_are_partitioned_disjointly(self, pool):
        assert pool.model_names == sorted(MODELS)
        owned: list[str] = []
        for worker in pool._workers.values():
            owned.extend(worker.artifacts)
        assert sorted(owned) == sorted(MODELS)

    def test_encode_matches_local_service(self, artifact, pool):
        bundle, framework, data = artifact
        reference = EncodingService()
        reference.load("ref", bundle)
        expected = reference.encode("ref", data[:5])
        for name in MODELS:
            body = pool.encode_request(
                name, {"model": name, "data": data[:5].tolist()}, None
            )
            assert body["worker"] == pool.assignment[name]
            assert np.array_equal(np.asarray(body["features"]), expected)

    def test_unknown_model_raises_serving_error(self, pool, artifact):
        _, _, data = artifact
        with pytest.raises(ServingError, match="unknown model"):
            pool.encode_request(
                "nope", {"model": "nope", "data": data[:2].tolist()}, None
            )

    def test_missing_data_raises_validation_error(self, pool):
        with pytest.raises(ValidationError, match="'data'"):
            pool.encode_request("alpha", {"model": "alpha"}, None)

    def test_describe_models_merges_all_workers(self, pool):
        described = pool.describe_models()
        assert set(described) == set(MODELS)
        for entry in described.values():
            assert entry["fast_path"] in (True, False)

    def test_describe_stats_reports_shards(self, pool):
        stats = pool.describe_stats()
        shards = stats["shards"]
        assert shards["n_workers"] == 2
        assert set(shards["assignment"]) == set(MODELS)
        assert set(stats["models"]) <= set(MODELS)

    @pytest.mark.slow
    def test_killed_worker_is_respawned_and_serves_again(self, artifact, pool):
        bundle, framework, data = artifact
        reference = EncodingService()
        reference.load("ref", bundle)
        expected = reference.encode("ref", data[:4])

        victim = MODELS[0]
        respawns_before = pool.n_respawns
        pool.kill_worker(victim)

        # Either the monitor or the next request heals the worker; the
        # request path is what we exercise here.
        deadline = time.monotonic() + 60
        body = None
        while time.monotonic() < deadline:
            try:
                body = pool.encode_request(
                    victim, {"model": victim, "data": data[:4].tolist()}, None
                )
                break
            except Exception:  # noqa: BLE001 - worker mid-respawn
                time.sleep(0.05)
        assert body is not None, "worker never recovered"
        assert np.array_equal(np.asarray(body["features"]), expected)
        assert pool.n_respawns > respawns_before

        # Every model (killed worker's and the survivor's) serves afterward.
        for name in MODELS:
            body = pool.encode_request(
                name, {"model": name, "data": data[:4].tolist()}, None
            )
            assert np.array_equal(np.asarray(body["features"]), expected)
