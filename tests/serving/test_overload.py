"""Overload protection of the serving front end: admission control,
deadline budgets and shared-secret auth.

The admission gate is driven deterministically by claiming slots through
``try_admit`` directly — no racing threads needed to observe a full server.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.exceptions import ValidationError
from repro.serving import BatchFuser, EncodingService
from repro.serving.http import DeadlineExceededError, build_server
from repro.serving.stats import AdmissionStats
from repro.serving.wire import SECRET_HEADER

SECRET = "serving-secret"


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    return framework, data


def serve(service, **kwargs):
    server = build_server(service, port=0, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread, f"http://127.0.0.1:{server.server_address[1]}"


@pytest.fixture()
def gated_stack(fitted):
    framework, data = fitted
    service = EncodingService()
    service.register("ir", framework)
    fuser = BatchFuser(service, max_batch_rows=64, max_wait_ms=5)
    server, thread, base = serve(
        service, fuser=fuser, max_in_flight=2, retry_after=2.5
    )
    yield server, framework, data, base
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def post(base, payload, headers=None):
    request = urllib.request.Request(
        base + "/encode",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.load(response)


def post_error(base, payload, headers=None):
    try:
        post(base, payload, headers)
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.load(exc)
    raise AssertionError("expected an HTTP error")


class TestAdmissionGate:
    def test_full_server_sheds_with_retry_after(self, gated_stack):
        server, _, data, base = gated_stack
        payload = {"model": "ir", "data": data[:3].tolist()}
        assert server.try_admit() and server.try_admit()  # occupy both slots
        try:
            code, headers, body = post_error(base, payload)
            assert code == 503
            assert headers["Retry-After"] == "3"  # ceil(2.5)
            assert "capacity" in body["error"]
        finally:
            server.release_request()
            server.release_request()
        # With the slots free again the same request succeeds.
        assert post(base, payload)["model"] == "ir"

    def test_stats_expose_the_admission_counters(self, gated_stack):
        server, _, data, base = gated_stack
        server.try_admit()
        server.try_admit()
        try:
            post_error(base, {"model": "ir", "data": data[:3].tolist()})
        finally:
            server.release_request()
            server.release_request()
        post(base, {"model": "ir", "data": data[:3].tolist()})
        with urllib.request.urlopen(base + "/stats", timeout=10) as response:
            stats = json.load(response)
        admission = stats["admission"]
        assert admission["max_in_flight"] == 2
        assert admission["retry_after"] == 2.5
        assert admission["n_shed"] >= 1
        assert admission["n_admitted"] >= 1
        assert admission["in_flight"] == 0  # everything released

    def test_ungated_server_always_admits(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        server, thread, base = serve(service)
        try:
            for _ in range(4):
                assert post(base, {"model": "ir", "data": data[:2].tolist()})
            assert server.admission.as_dict()["n_shed"] == 0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_invalid_max_in_flight_rejected(self, fitted):
        framework, _ = fitted
        service = EncodingService()
        service.register("ir", framework)
        with pytest.raises(ValidationError):
            build_server(service, port=0, max_in_flight=0)
        with pytest.raises(ValidationError, match="retry_after"):
            build_server(service, port=0, retry_after=0.0)


class TestDeadlineBudget:
    def test_spent_budget_is_shed_with_503(self, gated_stack):
        server, _, data, base = gated_stack
        # A microscopic budget is always spent by the time the body has
        # been read and parsed: deterministic deadline shedding.
        code, headers, body = post_error(
            base,
            {"model": "ir", "data": data[:3].tolist(), "deadline_ms": 1e-6},
        )
        assert code == 503
        assert "Retry-After" in headers
        assert "deadline" in body["error"]
        assert server.admission.as_dict()["n_deadline_shed"] >= 1
        assert server.admission.as_dict()["in_flight"] == 0

    def test_generous_budget_computes_normally(self, gated_stack):
        _, framework, data, base = gated_stack
        payload = post(
            base,
            {"model": "ir", "data": data[:4].tolist(), "use_cache": False,
             "deadline_ms": 60_000},
        )
        expected = framework.transform(data[:4])
        np.testing.assert_allclose(np.asarray(payload["features"]), expected)

    @pytest.mark.parametrize("deadline", [0, -5, "soon"])
    def test_invalid_deadline_is_400(self, gated_stack, deadline):
        _, _, data, base = gated_stack
        code, _, body = post_error(
            base,
            {"model": "ir", "data": data[:2].tolist(), "deadline_ms": deadline},
        )
        assert code == 400
        assert "deadline_ms" in body["error"]

    def test_remaining_budget_shrinks_with_elapsed_time(self, gated_stack):
        server, _, _, _ = gated_stack
        arrival = time.monotonic() - 0.05  # the request is 50ms old
        remaining = server._remaining_budget_ms(
            {"deadline_ms": 100.0}, arrival
        )
        assert 20.0 < remaining < 60.0

    def test_spent_budget_raises_and_counts(self, gated_stack):
        server, _, _, _ = gated_stack
        before = server.admission.as_dict()["n_deadline_shed"]
        with pytest.raises(DeadlineExceededError, match="budget"):
            server._remaining_budget_ms(
                {"deadline_ms": 10.0}, time.monotonic() - 1.0
            )
        assert server.admission.as_dict()["n_deadline_shed"] == before + 1


class TestAdmissionStatsUnit:
    def test_counters_and_peak(self):
        stats = AdmissionStats()
        stats.admitted()
        stats.admitted()
        stats.released()
        stats.shed()
        stats.deadline_shed()
        snapshot = stats.as_dict()
        assert snapshot == {
            "n_admitted": 2, "n_shed": 1, "n_deadline_shed": 1,
            "in_flight": 1, "peak_in_flight": 2,
        }


class TestServingAuth:
    @pytest.fixture()
    def secured(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        server, thread, base = serve(service, secret=SECRET)
        yield data, base
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_healthz_stays_open(self, secured):
        _, base = secured
        with urllib.request.urlopen(base + "/healthz", timeout=10) as response:
            assert json.load(response)["status"] == "ok"

    def test_encode_requires_the_secret(self, secured):
        data, base = secured
        payload = {"model": "ir", "data": data[:2].tolist()}
        code, _, body = post_error(base, payload)
        assert code == 401
        assert "secret" in body["error"]
        response = post(base, payload, headers={SECRET_HEADER: SECRET})
        assert response["model"] == "ir"

    def test_wrong_secret_is_401(self, secured):
        data, base = secured
        code, _, _ = post_error(
            base,
            {"model": "ir", "data": data[:2].tolist()},
            headers={SECRET_HEADER: "wrong"},
        )
        assert code == 401

    def test_stats_requires_the_secret(self, secured):
        _, base = secured
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(base + "/stats", timeout=10)
        assert excinfo.value.code == 401
        request = urllib.request.Request(
            base + "/stats", headers={SECRET_HEADER: SECRET}
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert "admission" in json.load(response)
