"""Thread-safety stress tests for the LRU feature cache.

The counters and eviction used to run unsynchronised; these tests assert the
single-mutex invariants documented in :mod:`repro.serving.cache`:

* counter conservation — ``hits + misses == lookups`` exactly, even with
  many threads hammering overlapping keys;
* no lost entries — concurrent puts of distinct keys within capacity all
  land and survive;
* the capacity bound holds at every quiescent point.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serving import LRUFeatureCache


def _hammer(n_threads: int, worker) -> None:
    barrier = threading.Barrier(n_threads)
    errors: list[BaseException] = []

    def run(index: int) -> None:
        barrier.wait()
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced after join
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors[0]


def test_lookup_counter_single_thread():
    cache = LRUFeatureCache(max_entries=2)
    cache.put("a", np.zeros(1))
    cache.get("a")
    cache.get("missing")
    counters = cache.counters()
    assert counters == {"hits": 1, "misses": 1, "lookups": 2, "entries": 1}


@pytest.mark.slow
def test_counter_conservation_under_contention():
    cache = LRUFeatureCache(max_entries=8)
    n_threads, per_thread = 8, 2000
    keys = [f"k{i}" for i in range(16)]  # twice the capacity: constant churn

    def worker(index: int) -> None:
        rng = np.random.default_rng(index)
        for _ in range(per_thread):
            key = keys[int(rng.integers(0, len(keys)))]
            if cache.get(key) is None:
                cache.put(key, np.full(4, float(index)))

    _hammer(n_threads, worker)
    counters = cache.counters()
    assert counters["lookups"] == n_threads * per_thread
    assert counters["hits"] + counters["misses"] == counters["lookups"]
    assert counters["entries"] <= cache.max_entries
    assert len(cache) <= cache.max_entries


@pytest.mark.slow
def test_no_lost_entries_with_distinct_concurrent_puts():
    n_threads, per_thread = 8, 64
    cache = LRUFeatureCache(max_entries=n_threads * per_thread)

    def worker(index: int) -> None:
        for item in range(per_thread):
            cache.put((index, item), np.array([index, item], dtype=float))

    _hammer(n_threads, worker)
    assert len(cache) == n_threads * per_thread
    for index in range(n_threads):
        for item in range(per_thread):
            value = cache.get((index, item))
            assert value is not None
            assert value.tolist() == [float(index), float(item)]


@pytest.mark.slow
def test_eviction_never_exceeds_capacity_under_put_storm():
    cache = LRUFeatureCache(max_entries=4)
    observed_over_capacity = []

    def worker(index: int) -> None:
        for item in range(1500):
            cache.put((index, item % 32), np.zeros(2))
            if len(cache) > cache.max_entries:
                observed_over_capacity.append(len(cache))

    _hammer(8, worker)
    assert not observed_over_capacity
    assert len(cache) <= cache.max_entries


def test_predicate_eviction_is_atomic_with_puts():
    cache = LRUFeatureCache(max_entries=64)

    def writer(index: int) -> None:
        if index % 2 == 0:
            for item in range(300):
                cache.put(("evictme", index, item % 8), np.zeros(1))
        else:
            for _ in range(300):
                cache.evict(lambda key: key[0] == "evictme")

    _hammer(4, writer)
    cache.evict(lambda key: key[0] == "evictme")
    assert all(key[0] != "evictme" for key in list(cache._entries))
