"""Regression tests for graceful shutdown ordering.

``EncodingHTTPServer.shutdown()`` once closed the fuser *before* stopping
the accept loop, so requests in flight during shutdown were answered with
spurious errors from a dead fusion queue.  The contract under test: stop
accepting first, drain the admitted requests (they finish with real
responses), and only then close the fuser.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.serving import BatchFuser, EncodingService
from repro.serving.fusion import FuserClosedError
from repro.serving.http import build_server


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        50, 6, 2, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=4,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=2)
    framework.fit(data)
    return framework, data


def post(base, payload):
    request = urllib.request.Request(
        base + "/encode",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return response.status, json.load(response)


class TestShutdownUnderLoad:
    def test_in_flight_requests_drain_before_the_fuser_closes(self, fitted):
        framework, data = fitted
        service = EncodingService(cache_entries=0)
        service.register("ir", framework)

        # Slow every compute so the requests are reliably still in flight
        # when shutdown starts.
        original_compute = service._compute

        def slow_compute(runtime, matrix):
            time.sleep(0.15)
            return original_compute(runtime, matrix)

        service._compute = slow_compute

        fuser = BatchFuser(service, max_batch_rows=4096, max_wait_ms=20)
        server = build_server(service, fuser=fuser, port=0)
        serve_thread = threading.Thread(target=server.serve_forever, daemon=True)
        serve_thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"

        n_clients = 4
        results: list = [None] * n_clients

        def client(index: int) -> None:
            payload = {"model": "ir", "data": data[: 2 + index].tolist()}
            try:
                results[index] = post(base, payload)
            except Exception as exc:  # noqa: BLE001 - asserted below
                results[index] = exc

        clients = [
            threading.Thread(target=client, args=(i,)) for i in range(n_clients)
        ]
        for thread in clients:
            thread.start()

        # Wait until every client's request is admitted (inside the server).
        deadline = time.monotonic() + 10
        while server.admission.as_dict()["n_admitted"] < n_clients:
            assert time.monotonic() < deadline, "clients were never admitted"
            time.sleep(0.005)

        # Shut down while all of them are still computing.  The graceful
        # ordering must let every one of them finish with a real response.
        server.shutdown()

        for thread in clients:
            thread.join(timeout=30)
        server.server_close()
        serve_thread.join(timeout=5)

        for result in results:
            assert not isinstance(result, Exception), f"client failed: {result}"
            status, body = result
            assert status == 200
            expected = framework.transform(body_rows(body, data))
            assert np.array_equal(np.asarray(body["features"]), expected)

        # Only after the drain is the fuser closed.
        assert fuser.closed
        assert server.admission.as_dict()["in_flight"] == 0

    def test_shutdown_is_idempotent(self, fitted):
        framework, _ = fitted
        service = EncodingService()
        service.register("ir", framework)
        fuser = BatchFuser(service)
        server = build_server(service, fuser=fuser, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        server.shutdown()
        server.shutdown()  # second call returns immediately
        server.server_close()
        thread.join(timeout=5)
        assert fuser.closed


def body_rows(body: dict, data: np.ndarray) -> np.ndarray:
    """The input rows a response was computed from (clients send prefixes)."""
    n_rows = body["shape"][0]
    return data[:n_rows]


class TestFuserClosed:
    def test_submit_after_close_raises(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        fuser = BatchFuser(service)
        fuser.close()
        with pytest.raises(FuserClosedError):
            fuser.submit("ir", data[:3])

    def test_close_is_idempotent_and_flushes(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        fuser = BatchFuser(service, max_batch_rows=4096, max_wait_ms=1000)
        ticket = fuser.submit("ir", data[:3])
        fuser.close()
        fuser.close()
        assert ticket.done
        assert np.array_equal(ticket.result(), framework.transform(data[:3]))
