"""Tests for the EncodingService registry, cache, batching and counters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import FrameworkConfig
from repro.core.framework import SelfLearningEncodingFramework
from repro.datasets.synthetic import make_overlapping_binary_clusters
from repro.exceptions import ServingError, ValidationError
from repro.persistence import save_framework
from repro.serving import EncodingService, LRUFeatureCache, input_digest


@pytest.fixture(scope="module")
def fitted():
    data, _ = make_overlapping_binary_clusters(
        60, 8, 3, flip_probability=0.1, random_state=0
    )
    config = FrameworkConfig(
        model="sls_rbm",
        preprocessing="median_binarize",
        supervision_preprocessing="standardize",
        n_hidden=5,
        n_epochs=2,
        random_state=0,
    )
    framework = SelfLearningEncodingFramework(config, n_clusters=3)
    framework.fit(data)
    return framework, data


class TestRegistry:
    def test_register_and_encode(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        assert "ir" in service
        assert service.model_names == ["ir"]
        features = service.encode("ir", data)
        assert np.array_equal(features, framework.transform(data))

    def test_unknown_name(self, fitted):
        service = EncodingService()
        with pytest.raises(ServingError):
            service.encode("missing", np.zeros((2, 2)))

    def test_unfitted_rejected(self):
        framework = SelfLearningEncodingFramework(FrameworkConfig(), n_clusters=3)
        with pytest.raises(ServingError):
            EncodingService().register("x", framework)

    def test_load_from_artifact(self, fitted, tmp_path):
        framework, data = fitted
        bundle = save_framework(framework, tmp_path / "bundle")
        service = EncodingService()
        service.load("ir", bundle)
        assert np.array_equal(service.encode("ir", data), framework.transform(data))

    def test_unregister(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        service.encode("ir", data)
        service.unregister("ir")
        assert len(service) == 0
        assert service.cache_info["entries"] == 0
        with pytest.raises(ServingError):
            service.unregister("ir")


class TestMicroBatching:
    def test_batched_encode_matches_transform(self, fitted):
        framework, data = fitted
        service = EncodingService(max_batch_size=7, cache_entries=0)
        service.register("ir", framework)
        features = service.encode("ir", data)
        assert np.array_equal(features, framework.transform(data))
        assert service.stats("ir")["n_batches"] == int(np.ceil(data.shape[0] / 7))

    def test_single_batch_for_small_input(self, fitted):
        framework, data = fitted
        service = EncodingService(max_batch_size=10_000)
        service.register("ir", framework)
        service.encode("ir", data)
        assert service.stats("ir")["n_batches"] == 1


class TestCache:
    def test_second_request_hits_cache(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        first = service.encode("ir", data)
        second = service.encode("ir", data)
        assert np.array_equal(first, second)
        stats = service.stats("ir")
        assert stats["n_requests"] == 2
        assert stats["n_cache_hits"] == 1
        assert stats["cache_hit_rate"] == 0.5
        # a cache miss hands back a private, writable array...
        assert first.flags.writeable
        first[0, 0] += 1.0  # ...and mutating it must not poison later hits
        assert not second.flags.writeable
        assert np.array_equal(service.encode("ir", data), framework.transform(data))

    def test_use_cache_false_bypasses(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        service.encode("ir", data)
        service.encode("ir", data, use_cache=False)
        assert service.stats("ir")["n_cache_hits"] == 0

    def test_different_input_misses(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        service.encode("ir", data)
        service.encode("ir", data[:30])
        assert service.stats("ir")["n_cache_hits"] == 0
        assert service.cache_info["entries"] == 2

    def test_cache_disabled(self, fitted):
        framework, data = fitted
        service = EncodingService(cache_entries=0)
        service.register("ir", framework)
        service.encode("ir", data)
        service.encode("ir", data)
        assert service.stats("ir")["n_cache_hits"] == 0
        assert service.cache_info == {
            "entries": 0, "max_entries": 0, "hits": 0, "misses": 0, "lookups": 0,
        }

    def test_reregistering_invalidates_cache(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        service.encode("ir", data)
        service.register("ir", framework)
        service.encode("ir", data)
        assert service.stats("ir")["n_cache_hits"] == 0

    def test_cache_keys_carry_the_registration_generation(self, fitted):
        # A put that lands after a re-registration (slow encode racing
        # register) must not be servable as a hit of the new model: the
        # generation tag in the key, not just eviction timing, guarantees it.
        framework, data = fitted
        service = EncodingService()
        service.register("ir", framework)
        first_tag = service._models["ir"].cache_tag
        service.encode("ir", data)
        service.register("ir", framework)
        assert service._models["ir"].cache_tag != first_tag
        # simulate the race: re-insert an old-generation entry post-evict
        from repro.serving.cache import input_digest

        service._cache.put(("ir", first_tag, input_digest(data)), data)
        service.encode("ir", data)
        assert service.stats("ir")["n_cache_hits"] == 0


class TestLRUFeatureCache:
    def test_eviction_order(self):
        cache = LRUFeatureCache(max_entries=2)
        cache.put("a", np.zeros(1))
        cache.put("b", np.ones(1))
        cache.get("a")  # refresh a; b becomes LRU
        cache.put("c", np.full(1, 2.0))
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_invalid_capacity(self):
        with pytest.raises(ValidationError):
            LRUFeatureCache(max_entries=0)

    def test_evict_by_predicate(self):
        cache = LRUFeatureCache(max_entries=4)
        cache.put(("a", 1), np.zeros(1))
        cache.put(("a", 2), np.zeros(1))
        cache.put(("b", 1), np.zeros(1))
        assert cache.evict(lambda key: key[0] == "a") == 2
        assert len(cache) == 1 and ("b", 1) in cache

    def test_digest_sensitivity(self):
        data = np.arange(6, dtype=float).reshape(2, 3)
        assert input_digest(data) == input_digest(data.copy())
        assert input_digest(data) != input_digest(data.reshape(3, 2))
        assert input_digest(data) != input_digest(data.astype(np.float32))
        bumped = data.copy()
        bumped[0, 0] += 1e-12
        assert input_digest(data) != input_digest(bumped)


class TestStats:
    def test_latency_accounting_with_injected_clock(self, fitted):
        # A cache miss reads the clock four times: request start, compute
        # start, compute end, request end.  With ticks every 0.5 s the
        # request spans 1.5 s of which exactly 0.5 s is compute.
        framework, data = fitted
        ticks = iter(np.arange(0.0, 100.0, 0.5))
        service = EncodingService(clock=lambda: float(next(ticks)))
        service.register("ir", framework)
        service.encode("ir", data)
        stats = service.stats("ir")
        assert stats["last_latency_seconds"] == 1.5
        assert stats["total_seconds"] == 1.5
        assert stats["mean_latency_seconds"] == 1.5
        assert stats["total_compute_seconds"] == 0.5
        assert stats["total_queue_seconds"] == 0.0
        assert stats["throughput_samples_per_second"] == data.shape[0] / 1.5
        assert stats["n_samples"] == data.shape[0]
        assert stats["n_encoded_samples"] == data.shape[0]

    def test_cache_hit_records_no_compute_time(self, fitted):
        # A hit reads the clock twice (start, end): 0.5 s latency, and the
        # compute/queue counters must not move.
        framework, data = fitted
        ticks = iter(np.arange(0.0, 100.0, 0.5))
        service = EncodingService(clock=lambda: float(next(ticks)))
        service.register("ir", framework)
        service.encode("ir", data)  # miss: 4 ticks
        service.encode("ir", data)  # hit: 2 ticks
        stats = service.stats("ir")
        assert stats["n_cache_hits"] == 1
        assert stats["last_latency_seconds"] == 0.5
        assert stats["total_seconds"] == 2.0
        assert stats["total_compute_seconds"] == 0.5
        assert stats["total_queue_seconds"] == 0.0

    def test_all_models_view(self, fitted):
        framework, data = fitted
        service = EncodingService()
        service.register("a", framework).register("b", framework)
        service.encode("a", data)
        stats = service.stats()
        assert set(stats) == {"a", "b"}
        assert stats["a"]["n_requests"] == 1
        assert stats["b"]["n_requests"] == 0


class TestServingDtypeAndFastPath:
    """float32 opt-in serving and the scratch-buffer fast path."""

    def test_default_dtype_bit_identical(self, fitted):
        framework, data = fitted
        service = EncodingService(max_batch_size=16)
        service.register("ir", framework)
        assert np.array_equal(service.encode("ir", data), framework.transform(data))

    def test_float32_opt_in(self, fitted):
        framework, data = fitted
        service = EncodingService(dtype="float32")
        service.register("ir", framework)
        features = service.encode("ir", data)
        assert features.dtype == np.float32
        reference = framework.transform(data)
        np.testing.assert_allclose(features, reference, rtol=1e-4, atol=1e-5)

    def test_invalid_dtype(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            EncodingService(dtype="float16")

    def test_scratch_buffer_reused_across_requests(self, fitted):
        framework, data = fitted
        service = EncodingService(cache_entries=0, max_batch_size=1024)
        service.register("ir", framework)
        service.encode("ir", data)
        runtime = service._models["ir"]
        first = runtime._scratch
        assert first is not None
        service.encode("ir", data)
        assert runtime._scratch is first  # no reallocation on the second call

    def test_bare_rbm_registration(self, fitted):
        framework, data = fitted
        model = framework.model_
        service = EncodingService()
        service.register("raw", model)
        preprocessed = framework.preprocess(data)
        assert np.array_equal(
            service.encode("raw", preprocessed), model.transform(preprocessed)
        )

    def test_encoder_pipeline_registration(self, fitted):
        from repro.core.pipeline import Pipeline
        from repro.core.transformers import Standardize

        framework, data = fitted
        pipeline = Pipeline([("scale", Standardize())])
        pipeline.fit(data)
        service = EncodingService()
        service.register("scaled", pipeline)
        assert np.array_equal(
            service.encode("scaled", data), pipeline.transform(data)
        )

    def test_non_encoder_rejected(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            EncodingService().register("bad", object())


    def test_framework_pipeline_encode_independent_of_batch_size(self, fitted):
        # A pipeline embedding a framework step must not be micro-batched:
        # the framework preprocessing recomputes statistics from its input.
        from repro.core.pipeline import Pipeline

        framework, data = fitted
        pipeline = Pipeline([("encode", framework)])
        pipeline.fit(data)
        reference = pipeline.transform(data)
        for batch in (7, 16, 4096):
            service = EncodingService(max_batch_size=batch, cache_entries=0)
            service.register("p", pipeline)
            assert np.array_equal(service.encode("p", data), reference)
