"""Shared fixtures for the test suite.

All fixtures are deliberately small (tens to a few hundred samples) so that
the whole suite stays fast; the full-size paper experiments live in
``benchmarks/``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.synthetic import make_blobs, make_overlapping_binary_clusters
from repro.supervision.local_supervision import LocalSupervision


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by randomised tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def blobs_dataset() -> tuple[np.ndarray, np.ndarray]:
    """Well-separated 3-class Gaussian blobs (90 x 5)."""
    return make_blobs(
        90, 5, 3, cluster_std=0.5, center_spread=6.0, random_state=7
    )


@pytest.fixture
def hard_blobs_dataset() -> tuple[np.ndarray, np.ndarray]:
    """Overlapping 3-class Gaussian blobs (120 x 8)."""
    return make_blobs(
        120, 8, 3, cluster_std=2.0, center_spread=3.0, random_state=11
    )


@pytest.fixture
def binary_dataset() -> tuple[np.ndarray, np.ndarray]:
    """Binary 2-class dataset (80 x 12) suitable for BernoulliRBM tests."""
    return make_overlapping_binary_clusters(
        80, 12, 2, flip_probability=0.1, random_state=3
    )


@pytest.fixture
def simple_supervision() -> LocalSupervision:
    """Supervision over 10 samples: clusters {0,1,2}, {5,6,7}, rest uncovered."""
    labels = np.array([0, 0, 0, -1, -1, 1, 1, 1, -1, -1])
    return LocalSupervision.from_labels(labels, metadata={"source": "fixture"})


@pytest.fixture
def three_cluster_labels() -> np.ndarray:
    """Ground-truth labels for 12 samples in 3 balanced classes."""
    return np.repeat([0, 1, 2], 4)
