"""End-to-end tests for the ``python -m repro`` command line."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import load_uci_dataset
from repro.persistence import load_framework

TRAIN_ARGS = [
    "train",
    "--suite", "uci",
    "--dataset", "IR",
    "--scale", "0.5",
    "--model", "sls_rbm",
    "--n-hidden", "6",
    "--epochs", "2",
    "--out",
]


@pytest.fixture
def artifact(tmp_path):
    bundle = tmp_path / "artifact"
    assert main(TRAIN_ARGS + [str(bundle)]) == 0
    return bundle


class TestTrain:
    def test_creates_loadable_bundle(self, artifact, capsys):
        framework = load_framework(artifact)
        assert framework.config.model == "sls_rbm"
        assert framework.is_fitted

    def test_output_summary(self, tmp_path, capsys):
        main(TRAIN_ARGS + [str(tmp_path / "b")])
        out = capsys.readouterr().out
        assert "trained sls_rbm on uci:IR" in out
        assert "final reconstruction error" in out
        assert "artifact written to" in out

    def test_train_from_inline_spec(self, tmp_path, capsys):
        import json

        spec = {
            "type": "framework",
            "params": {
                "config": {
                    "model": "rbm",
                    "n_hidden": 6,
                    "n_epochs": 2,
                    "preprocessing": "median_binarize",
                },
                "n_clusters": 3,
            },
        }
        code = main([
            "train", "--suite", "uci", "--dataset", "IR", "--scale", "0.5",
            "--spec", json.dumps(spec), "--out", str(tmp_path / "s"),
        ])
        assert code == 0
        framework = load_framework(tmp_path / "s")
        assert framework.config.model == "rbm"
        assert framework.config.n_hidden == 6

    def test_train_from_spec_file(self, tmp_path):
        import json

        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "type": "framework",
            "params": {"config": {"model": "grbm", "n_hidden": 4,
                                  "n_epochs": 2},
                       "n_clusters": 3},
        }))
        code = main([
            "train", "--suite", "uci", "--dataset", "IR", "--scale", "0.5",
            "--spec", f"@{spec_path}", "--out", str(tmp_path / "s"),
        ])
        assert code == 0
        assert load_framework(tmp_path / "s").config.model == "grbm"

    def test_missing_spec_file_fails_cleanly(self, tmp_path, capsys):
        code = main([
            "train", "--suite", "uci", "--dataset", "IR", "--scale", "0.5",
            "--spec", f"@{tmp_path / 'nope.json'}", "--out", str(tmp_path / "s"),
        ])
        assert code == 1
        assert "cannot read --spec file" in capsys.readouterr().err

    def test_invalid_spec_json_fails(self, tmp_path, capsys):
        code = main([
            "train", "--suite", "uci", "--dataset", "IR", "--scale", "0.5",
            "--spec", "{not json", "--out", str(tmp_path / "s"),
        ])
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err


class TestEncode:
    def test_dataset_end_to_end(self, artifact, tmp_path, capsys):
        out_file = tmp_path / "features.npy"
        code = main([
            "encode", "--artifact", str(artifact),
            "--suite", "uci", "--dataset", "IR", "--scale", "0.5",
            "--output", str(out_file),
        ])
        assert code == 0
        features = np.load(out_file)
        dataset = load_uci_dataset("IR", scale=0.5)
        expected = load_framework(artifact).transform(dataset.data)
        assert np.array_equal(features, expected)

    def test_input_file(self, artifact, tmp_path):
        dataset = load_uci_dataset("IR", scale=0.5)
        in_file = tmp_path / "input.npy"
        np.save(in_file, dataset.data)
        out_file = tmp_path / "features.csv"
        code = main([
            "encode", "--artifact", str(artifact),
            "--input", str(in_file), "--output", str(out_file),
        ])
        assert code == 0
        features = np.loadtxt(out_file, delimiter=",")
        expected = load_framework(artifact).transform(dataset.data)
        assert np.allclose(features, expected)

    def test_input_and_dataset_is_an_error(self, artifact, tmp_path, capsys):
        code = main([
            "encode", "--artifact", str(artifact),
            "--input", str(tmp_path / "x.npy"), "--dataset", "IR",
        ])
        assert code == 1
        assert "exactly one of" in capsys.readouterr().err

    def test_missing_artifact_is_an_error(self, tmp_path, capsys):
        code = main([
            "encode", "--artifact", str(tmp_path / "nope"),
            "--suite", "uci", "--dataset", "IR",
        ])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestEvaluate:
    def test_prints_all_metrics(self, artifact, capsys):
        code = main([
            "evaluate", "--artifact", str(artifact),
            "--suite", "uci", "--dataset", "IR", "--scale", "0.5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        for metric in ("accuracy", "purity", "rand", "fmi", "nmi"):
            assert metric in out


class TestEvaluateGrid:
    def test_grid_mode_prints_table(self, capsys):
        code = main([
            "evaluate", "--grid",
            "--suite", "uci", "--dataset", "IR", "--scale", "0.4",
            "--algorithms", "DP,K-means", "--repeats", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "DP" in out and "K-means" in out
        assert "n_jobs=1" in out

    def test_grid_mode_parallel_multiple_datasets(self, capsys):
        code = main([
            "evaluate", "--grid",
            "--suite", "uci", "--dataset", "IR,SH", "--scale", "0.3",
            "--algorithms", "DP,K-means", "--n-jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "n_jobs=2" in out

    def test_missing_artifact_without_grid_is_an_error(self, capsys):
        code = main(["evaluate", "--suite", "uci", "--dataset", "IR"])
        assert code == 1
        assert "--artifact" in capsys.readouterr().err


class TestBench:
    def test_smoke_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_training.json"
        code = main(["bench", "--smoke", "--out", str(out), "--n-jobs", "2"])
        assert code == 0
        import json

        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "training"
        assert payload["smoke"] is True
        results = payload["results"]
        for section in ("gradient_kernel", "sls_epoch", "density_peaks",
                        "runner_scaling"):
            assert section in results
        assert results["gradient_kernel"]["speedup"] > 0
        assert results["density_peaks"]["labels_identical"] is True
        assert "benchmark report written" in capsys.readouterr().out


class TestServe:
    def test_serve_announces_and_runs(self, artifact, capsys, monkeypatch):
        # serve_forever is stubbed out so the command builds the full stack,
        # prints the banner and exits without blocking the test run.
        from repro.serving.http import EncodingHTTPServer

        monkeypatch.setattr(EncodingHTTPServer, "serve_forever", lambda self: None)
        code = main([
            "serve", "--artifact", f"ir={artifact}", "--port", "0",
            "--max-batch-rows", "128", "--max-wait-ms", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 1 model(s) ['ir']" in out
        assert "max_batch_rows=128" in out
        assert "POST /encode" in out

    def test_serve_without_fusion(self, artifact, capsys, monkeypatch):
        from repro.serving.http import EncodingHTTPServer

        monkeypatch.setattr(EncodingHTTPServer, "serve_forever", lambda self: None)
        code = main([
            "serve", "--artifact", f"ir={artifact}", "--port", "0", "--no-fusion",
        ])
        assert code == 0
        assert "fusion: disabled" in capsys.readouterr().out

    def test_serve_end_to_end_over_http(self, artifact):
        import json as json_module
        import threading
        import urllib.request

        from repro.cli import _build_serving_stack, build_parser

        args = build_parser().parse_args(
            ["serve", "--artifact", f"ir={artifact}", "--port", "0"]
        )
        service, fuser, server = _build_serving_stack(args)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            health = json_module.load(
                urllib.request.urlopen(base + "/healthz", timeout=10)
            )
            assert health == {"status": "ok", "models": ["ir"]}
            dataset = load_uci_dataset("IR", scale=0.5, random_state=0)
            body = json_module.dumps(
                {"model": "ir", "data": dataset.data[:4].tolist()}
            ).encode()
            response = json_module.load(
                urllib.request.urlopen(
                    urllib.request.Request(base + "/encode", data=body), timeout=10
                )
            )
            expected = service.encode("ir", dataset.data[:4], use_cache=False)
            np.testing.assert_array_equal(
                np.asarray(response["features"]), expected
            )
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_malformed_artifact_mapping_fails_cleanly(self, capsys):
        assert main(["serve", "--artifact", "no-equals-sign"]) == 1
        assert "NAME=PATH" in capsys.readouterr().err


class TestServeScaleOut:
    def test_serve_async_announces_and_runs(self, artifact, capsys, monkeypatch):
        from repro.serving.async_http import AsyncEncodingServer

        monkeypatch.setattr(
            AsyncEncodingServer, "serve_forever", lambda self: None
        )
        code = main([
            "serve", "--artifact", f"ir={artifact}", "--port", "0", "--async",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "serving 1 model(s) ['ir']" in out
        assert "front end: async selector loop" in out
        assert "POST /encode" in out

    def test_build_serving_stack_async_end_to_end(self, artifact):
        import json as json_module
        import urllib.request

        from repro.cli import _build_serving_stack, build_parser
        from repro.serving.async_http import AsyncEncodingServer

        args = build_parser().parse_args(
            ["serve", "--artifact", f"ir={artifact}", "--port", "0", "--async"]
        )
        service, fuser, server = _build_serving_stack(args)
        assert isinstance(server, AsyncEncodingServer)
        server.start()
        base = f"http://127.0.0.1:{server.server_port}"
        try:
            health = json_module.load(
                urllib.request.urlopen(base + "/healthz", timeout=10)
            )
            assert health == {"status": "ok", "models": ["ir"]}
            dataset = load_uci_dataset("IR", scale=0.5, random_state=0)
            body = json_module.dumps(
                {"model": "ir", "data": dataset.data[:4].tolist()}
            ).encode()
            response = json_module.load(
                urllib.request.urlopen(
                    urllib.request.Request(base + "/encode", data=body),
                    timeout=10,
                )
            )
            expected = service.encode("ir", dataset.data[:4], use_cache=False)
            np.testing.assert_array_equal(
                np.asarray(response["features"]), expected
            )
        finally:
            server.shutdown()
            server.server_close()

    def test_build_serving_stack_sharded(self, artifact):
        import json as json_module
        import threading
        import urllib.request

        from repro.cli import _build_serving_stack, build_parser
        from repro.serving.shard import ShardPool

        args = build_parser().parse_args([
            "serve", "--artifact", f"ir={artifact}", "--port", "0",
            "--shard-workers", "2",
        ])
        service, fuser, server = _build_serving_stack(args)
        assert service is None and fuser is None
        assert isinstance(server.gateway.backend, ShardPool)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            health = json_module.load(
                urllib.request.urlopen(base + "/healthz", timeout=10)
            )
            assert health == {"status": "ok", "models": ["ir"]}
            dataset = load_uci_dataset("IR", scale=0.5, random_state=0)
            body = json_module.dumps(
                {"model": "ir", "data": dataset.data[:4].tolist()}
            ).encode()
            response = json_module.load(
                urllib.request.urlopen(
                    urllib.request.Request(base + "/encode", data=body),
                    timeout=30,
                )
            )
            assert response["shape"][0] == 4
            assert "worker" in response
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_duplicate_model_name_fails_cleanly(self, artifact, capsys):
        code = main([
            "serve", "--artifact", f"ir={artifact}", "--artifact", f"ir={artifact}",
        ])
        assert code == 1
        assert "twice" in capsys.readouterr().err


class TestInfo:
    def test_summary(self, artifact, capsys):
        assert main(["info", "--artifact", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "kind:           framework" in out
        assert "SlsRBM" in out

    def test_json(self, artifact, capsys):
        import json

        from repro.persistence import SCHEMA_VERSION

        assert main(["info", "--artifact", str(artifact), "--json"]) == 0
        manifest = json.loads(capsys.readouterr().out)
        assert manifest["kind"] == "framework"
        assert manifest["schema_version"] == SCHEMA_VERSION
        assert manifest["spec"]["type"] == "framework"


class TestServeSigterm:
    def test_sigterm_drains_and_exits_zero(self, artifact):
        """``repro serve`` under an orchestrator: SIGTERM must shut the
        server down exactly like Ctrl-C — flush, say goodbye, exit 0."""
        import os
        import re
        import signal
        import subprocess
        import sys
        import time
        import urllib.request
        from pathlib import Path

        env = dict(os.environ)
        src = str((Path(__file__).resolve().parents[1] / "src"))
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--artifact", f"ir={artifact}", "--port", "0"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            port = None
            deadline = time.monotonic() + 30
            lines = []
            while time.monotonic() < deadline:
                line = process.stdout.readline()
                if not line:
                    time.sleep(0.05)
                    continue
                lines.append(line)
                match = re.search(r"on http://[\d.]+:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "server never announced: " + "".join(lines)

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/healthz", timeout=10
            ) as response:
                assert response.status == 200

            process.send_signal(signal.SIGTERM)
            remaining = process.communicate(timeout=30)[0]
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
        assert process.returncode == 0
        assert "shutting down" in remaining


class TestWorkersFlag:
    def test_parse_count_and_addresses(self):
        from repro.cli import _parse_workers

        assert _parse_workers(None) is None
        assert _parse_workers("4") == 4
        assert _parse_workers("a:1, b:2") == ["a:1", "b:2"]

    def test_parse_empty_list_is_an_error(self):
        from repro.cli import _parse_workers
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            _parse_workers(" , ")

    def test_worker_subcommand_requires_a_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker"])
        err = capsys.readouterr().err
        assert "--connect" in err or "--listen" in err

    def test_worker_connect_and_listen_are_exclusive(self, capsys):
        with pytest.raises(SystemExit):
            main(["worker", "--connect", "h:1", "--listen", "0"])
