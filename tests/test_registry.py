"""Tests for the declarative component registry."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import registry
from repro.clustering import AffinityPropagation, DensityPeaks, KMeans
from repro.core.framework import SelfLearningEncodingFramework
from repro.core.pipeline import ClusteringPipeline, Pipeline
from repro.exceptions import ValidationError
from repro.registry import ComponentRegistry


class TestLookup:
    def test_bare_name(self):
        assert isinstance(registry.build("dp"), DensityPeaks)

    def test_aliases(self):
        assert registry.get_class("k-means", kind="clusterer") is KMeans
        assert registry.get_class("density_peaks") is DensityPeaks
        assert registry.get_class("slsgrbm") is registry.get_class("sls_grbm")

    def test_kind_qualified_name(self):
        assert registry.get_class("clusterer/kmeans") is KMeans

    def test_unknown_name(self):
        with pytest.raises(ValidationError, match="unknown component"):
            registry.build("dbscan")

    def test_unknown_name_with_kind(self):
        with pytest.raises(ValidationError, match="unknown clusterer"):
            registry.build("dbscan", kind="clusterer")

    def test_kinds(self):
        assert set(registry.kinds()) == {
            "clusterer", "model", "preprocessor", "framework", "pipeline"
        }

    def test_kind_of(self):
        assert registry.kind_of(KMeans) == ("clusterer", "kmeans")
        assert registry.kind_of(KMeans(2)) == ("clusterer", "kmeans")
        with pytest.raises(ValidationError):
            registry.kind_of(object())


class TestBuild:
    def test_params_forwarded(self):
        clusterer = registry.build(
            {"type": "kmeans", "params": {"n_clusters": 4, "n_init": 2}}
        )
        assert clusterer.n_clusters == 4
        assert clusterer.n_init == 2

    def test_overrides_win(self):
        clusterer = registry.build(
            {"type": "kmeans", "params": {"n_clusters": 4}}, n_clusters=7
        )
        assert clusterer.n_clusters == 7

    def test_invalid_spec_entries(self):
        with pytest.raises(ValidationError, match="unknown spec entries"):
            registry.build({"type": "kmeans", "junk": 1})
        with pytest.raises(ValidationError, match="no 'type'"):
            registry.build({"params": {}})
        with pytest.raises(ValidationError, match="name or a dict"):
            registry.build(42)

    def test_invalid_params_raise_like_constructor(self):
        with pytest.raises(ValidationError):
            registry.build({"type": "kmeans", "params": {"n_clusters": -1}})

    def test_nested_framework_spec(self):
        pipeline = registry.build({
            "type": "clustering_pipeline",
            "params": {
                "clusterer": "kmeans",
                "n_clusters": 3,
                "framework": {
                    "type": "framework",
                    "params": {"config": {"model": "rbm", "n_hidden": 4},
                               "n_clusters": 3},
                },
            },
        })
        assert isinstance(pipeline, ClusteringPipeline)
        assert isinstance(pipeline.framework, SelfLearningEncodingFramework)
        assert pipeline.framework.config.n_hidden == 4

    def test_named_steps_in_lists(self):
        pipeline = registry.build({
            "type": "pipeline",
            "params": {"steps": [
                ["scale", {"type": "standardize"}],
                ["cluster", {"type": "kmeans", "params": {"n_clusters": 2}}],
            ]},
        })
        assert isinstance(pipeline, Pipeline)
        assert list(pipeline.named_steps) == ["scale", "cluster"]

    def test_build_clusterer_adapter(self):
        ap = registry.build_clusterer("ap", 4, random_state=1)
        assert isinstance(ap, AffinityPropagation)
        assert ap.target_n_clusters == 4
        dp = registry.build_clusterer("dp", 3, random_state=1)
        assert dp.n_clusters == 3  # no random_state parameter: silently dropped


class TestSpecOf:
    def test_json_round_trip_through_text(self):
        spec = registry.spec_of(KMeans(3, random_state=5))
        rebuilt = registry.build(json.loads(json.dumps(spec)))
        assert isinstance(rebuilt, KMeans)
        assert rebuilt.n_clusters == 3
        assert rebuilt.random_state == 5

    def test_generator_random_state_dropped_to_none(self):
        spec = registry.spec_of(KMeans(3, random_state=np.random.default_rng(0)))
        json.dumps(spec)  # a live Generator must not leak into the spec
        assert spec["params"]["random_state"] is None

    def test_model_dtype_serialised_by_name(self):
        from repro.rbm import GaussianRBM

        spec = registry.spec_of(GaussianRBM(4, dtype="float32"))
        assert spec["params"]["dtype"] == "float32"
        assert registry.build(spec).dtype == np.dtype(np.float32)

    def test_framework_config_serialised_as_dict(self):
        framework = SelfLearningEncodingFramework(
            {"model": "rbm", "n_hidden": 6}, n_clusters=3
        )
        spec = registry.spec_of(framework)
        json.dumps(spec)
        rebuilt = registry.build(spec)
        assert rebuilt.config == framework.config
        assert rebuilt.n_clusters == 3

    def test_pipeline_steps_serialised(self):
        pipeline = Pipeline([
            ("scale", registry.build("standardize")),
            ("cluster", KMeans(3, random_state=0)),
        ])
        spec = registry.spec_of(pipeline)
        json.dumps(spec)
        rebuilt = registry.build(spec)
        assert list(rebuilt.named_steps) == ["scale", "cluster"]
        assert rebuilt["cluster"].n_clusters == 3


class TestCustomRegistration:
    def test_decorator_and_duplicate_guard(self):
        local = ComponentRegistry()

        @local.register("clusterer", "always_zero")
        class AlwaysZero(KMeans):
            pass

        assert local.get_class("always_zero") is AlwaysZero
        with pytest.raises(ValidationError, match="already registered"):
            local.register("clusterer", "always_zero", AlwaysZero)
        local.register("clusterer", "always_zero", AlwaysZero, overwrite=True)

    def test_lazy_path_registration(self):
        local = ComponentRegistry()
        local.register("clusterer", "km", "repro.clustering.kmeans:KMeans")
        assert local.get_class("km") is KMeans

    def test_bad_path_rejected(self):
        local = ComponentRegistry()
        with pytest.raises(ValidationError, match="module:Class"):
            local.register("clusterer", "bad", "not-a-path")
